//! An **ALCHI tableau reasoner** — the workspace's stand-in for the
//! tableau systems of Figure 1 (FaCT++, HermiT, Pellet) and the oracle
//! behind semantic approximation (Section 7).
//!
//! Supported logic: ALC class constructors (`¬ ⊓ ⊔ ∃ ∀`, `⊤ ⊥`) plus role
//! hierarchies (H), inverse roles (I) and role disjointness. The decision
//! procedure is the standard completion-graph tableau:
//!
//! * class expressions are interned in NNF;
//! * axioms `A ⊑ D` with named left side are **absorbed** into a lazy
//!   unfolding table; all remaining GCIs `C ⊑ D` are internalized as
//!   `¬C ⊔ D` and added to every node;
//! * the role hierarchy is pre-closed (reflexive-transitive,
//!   inverse-closed);
//! * `⊓` and `∀` fire deterministically, `⊔` branches (the search clones
//!   the completion graph per disjunct), `∃` generates fresh children;
//! * termination under inverse roles uses **ancestor pairwise (double)
//!   blocking**: a node is blocked by an ancestor with an identical label
//!   whose predecessor label and incoming role also match.
//!
//! Satisfiability is checked w.r.t. the ontology's class and
//! object-property axioms; data-property axioms do not interact with the
//! ALCHI part and are ignored here (the approximation pipeline treats
//! them structurally).

use std::collections::{HashMap, HashSet};

use obda_dllite::{BasicRole, ConceptId};
use obda_owl::{nnf, ClassExpr, Ontology, OwlAxiom};

/// Interned, preprocessed knowledge base for the tableau.
#[derive(Debug, Clone)]
pub struct TableauKb {
    exprs: Vec<ClassExpr>,
    ids: HashMap<ClassExpr, u32>,
    /// Lazy unfolding: per atomic concept, expression ids to add when the
    /// concept enters a node label.
    unfold: HashMap<ConceptId, Vec<u32>>,
    /// Internalized GCIs added to every node.
    gcis: Vec<u32>,
    /// Role absorption: `∃R.⊤ ⊑ C` fires `C` at the source of every edge
    /// whose role is subsumed by `R` (and at the target when the edge's
    /// inverse is). This keeps QL-shaped ontologies GCI-free — without it
    /// every domain/range axiom becomes a disjunction on every node and
    /// the search degenerates (the same reason FaCT++-class reasoners
    /// absorb these axioms).
    domain_absorb: Vec<(BasicRole, u32)>,
    /// Reflexive-transitive, inverse-closed role hierarchy.
    role_supers: HashMap<BasicRole, Vec<BasicRole>>,
    /// Asserted disjoint role pairs (inverse-expanded).
    disjoint_roles: Vec<(BasicRole, BasicRole)>,
    num_roles: u32,
}

impl TableauKb {
    /// Preprocesses an ontology: normalization, absorption,
    /// internalization and role-hierarchy closure.
    pub fn new(onto: &Ontology) -> Self {
        let mut kb = TableauKb {
            exprs: Vec::new(),
            ids: HashMap::new(),
            unfold: HashMap::new(),
            gcis: Vec::new(),
            domain_absorb: Vec::new(),
            role_supers: HashMap::new(),
            disjoint_roles: Vec::new(),
            num_roles: onto.sig.num_roles() as u32,
        };
        let mut role_edges: HashMap<BasicRole, Vec<BasicRole>> = HashMap::new();
        for ax in onto.normalized_axioms() {
            match ax {
                OwlAxiom::SubClassOf(c, d) => match c {
                    ClassExpr::Class(a) => {
                        let id = kb.intern(nnf(&d));
                        kb.unfold.entry(a).or_default().push(id);
                    }
                    ClassExpr::Thing => {
                        let id = kb.intern(nnf(&d));
                        kb.gcis.push(id);
                    }
                    ClassExpr::Nothing => {}
                    // Role absorption: ∃R.⊤ ⊑ D.
                    ClassExpr::Some(r, filler) if *filler == ClassExpr::Thing => {
                        let id = kb.intern(nnf(&d));
                        kb.domain_absorb.push((r, id));
                    }
                    other => {
                        let gci = ClassExpr::or(ClassExpr::not(other), d);
                        let id = kb.intern(nnf(&gci));
                        kb.gcis.push(id);
                    }
                },
                OwlAxiom::SubObjectPropertyOf(r, s) => {
                    role_edges.entry(r).or_default().push(s);
                    role_edges.entry(r.inverse()).or_default().push(s.inverse());
                }
                OwlAxiom::DisjointObjectProperties(r, s) => {
                    kb.disjoint_roles.push((r, s));
                    kb.disjoint_roles.push((r.inverse(), s.inverse()));
                }
                // Data-property axioms are outside ALCHI.
                OwlAxiom::SubDataPropertyOf(_, _)
                | OwlAxiom::DisjointDataProperties(_, _)
                | OwlAxiom::DataPropertyDomain(_, _) => {}
                other => unreachable!("normalize() left {other:?}"),
            }
        }
        // Reflexive-transitive closure of the role hierarchy, per role.
        let all_roles: Vec<BasicRole> = (0..kb.num_roles)
            .flat_map(|p| {
                [
                    BasicRole::Direct(obda_dllite::RoleId(p)),
                    BasicRole::Inverse(obda_dllite::RoleId(p)),
                ]
            })
            .collect();
        for &r in &all_roles {
            let mut seen: HashSet<BasicRole> = HashSet::new();
            let mut stack = vec![r];
            while let Some(q) = stack.pop() {
                if !seen.insert(q) {
                    continue;
                }
                if let Some(next) = role_edges.get(&q) {
                    stack.extend(next.iter().copied());
                }
            }
            let mut supers: Vec<BasicRole> = seen.into_iter().collect();
            supers.sort_unstable();
            kb.role_supers.insert(r, supers);
        }
        kb
    }

    fn intern(&mut self, c: ClassExpr) -> u32 {
        if let Some(&id) = self.ids.get(&c) {
            return id;
        }
        let id = self.exprs.len() as u32;
        self.exprs.push(c.clone());
        self.ids.insert(c, id);
        id
    }

    /// Whether `sub ⊑* sup` in the closed role hierarchy.
    pub fn role_subsumed(&self, sub: BasicRole, sup: BasicRole) -> bool {
        sub == sup
            || self
                .role_supers
                .get(&sub)
                .is_some_and(|s| s.binary_search(&sup).is_ok())
    }

    /// All super-roles of `r` (reflexive).
    pub fn role_supers(&self, r: BasicRole) -> &[BasicRole] {
        self.role_supers.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether creating an edge labelled `q` clashes with role
    /// disjointness.
    fn edge_clashes(&self, q: BasicRole) -> bool {
        self.disjoint_roles
            .iter()
            .any(|&(r, s)| self.role_subsumed(q, r) && self.role_subsumed(q, s))
    }
}

/// One node of the completion graph.
#[derive(Debug, Clone)]
struct Node {
    label: HashSet<u32>,
    parent: Option<(u32, BasicRole)>,
    children: Vec<(u32, BasicRole)>,
    /// ∃-expression ids already expanded at this node.
    expanded: HashSet<u32>,
}

/// The (cloneable) completion graph, with worklists so rules fire
/// incrementally instead of rescanning every node per step.
#[derive(Debug, Clone)]
struct Graph {
    nodes: Vec<Node>,
    clash: bool,
    /// Pending disjunctions `(node, Or-expression id)`.
    todo_or: std::collections::VecDeque<(u32, u32)>,
    /// Pending existential expansions `(node, Some-expression id)`.
    todo_some: std::collections::VecDeque<(u32, u32)>,
    /// Existential expansions deferred because their node was blocked;
    /// retried when the graph quiesces (labels may have changed the
    /// blocking relation by then).
    parked: Vec<(u32, u32)>,
}

/// Deadline-based work budget shared across a classification run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute deadline; `None` means unlimited.
    pub deadline: Option<std::time::Instant>,
}

impl Budget {
    /// Budget that expires `secs` seconds from now.
    pub fn seconds(secs: u64) -> Self {
        Budget {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(secs)),
        }
    }

    /// Whether the deadline has passed.
    pub fn exhausted(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// Error signalling that the [`Budget`] ran out mid-reasoning (the
/// "timeout" rows of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("reasoning budget exhausted")
    }
}

impl std::error::Error for Timeout {}

/// The tableau reasoner: satisfiability and subsumption over a
/// preprocessed [`TableauKb`].
#[derive(Debug, Clone)]
pub struct Tableau<'kb> {
    kb: &'kb TableauKb,
    /// Scratch interner extension for query concepts (subsumption tests
    /// intern `¬B` shapes not present in the ontology).
    extra: HashMap<ClassExpr, u32>,
    extra_exprs: Vec<ClassExpr>,
}

impl<'kb> Tableau<'kb> {
    /// Creates a reasoner over a preprocessed KB.
    pub fn new(kb: &'kb TableauKb) -> Self {
        Tableau {
            kb,
            extra: HashMap::new(),
            extra_exprs: Vec::new(),
        }
    }

    fn expr(&self, id: u32) -> &ClassExpr {
        let n = self.kb.exprs.len() as u32;
        if id < n {
            &self.kb.exprs[id as usize]
        } else {
            &self.extra_exprs[(id - n) as usize]
        }
    }

    fn intern(&mut self, c: ClassExpr) -> u32 {
        if let Some(&id) = self.kb.ids.get(&c) {
            return id;
        }
        if let Some(&id) = self.extra.get(&c) {
            return id;
        }
        let id = self.kb.exprs.len() as u32 + self.extra_exprs.len() as u32;
        self.extra_exprs.push(c.clone());
        self.extra.insert(c, id);
        id
    }

    /// Whether the conjunction of `roots` is satisfiable w.r.t. the KB.
    pub fn satisfiable(&mut self, roots: &[ClassExpr], budget: Budget) -> Result<bool, Timeout> {
        let root_ids: Vec<u32> = roots.iter().map(|c| self.intern(nnf(c))).collect();
        let mut g = Graph {
            nodes: Vec::new(),
            clash: false,
            todo_or: std::collections::VecDeque::new(),
            todo_some: std::collections::VecDeque::new(),
            parked: Vec::new(),
        };
        let root = self.new_node(&mut g, None);
        for id in root_ids {
            self.add_concept(&mut g, root, id);
        }
        self.expand(&mut g, budget)
    }

    /// Whether `T ⊨ sub ⊑ sup` (tested as unsatisfiability of
    /// `sub ⊓ ¬sup`).
    pub fn subsumed(
        &mut self,
        sub: &ClassExpr,
        sup: &ClassExpr,
        budget: Budget,
    ) -> Result<bool, Timeout> {
        let probe = [sub.clone(), ClassExpr::not(sup.clone())];
        Ok(!self.satisfiable(&probe, budget)?)
    }

    /// Whether the ontology entails the OWL axiom (class and
    /// object-property axioms only).
    pub fn entails(&mut self, ax: &OwlAxiom, budget: Budget) -> Result<bool, Timeout> {
        for n in ax.normalize() {
            let holds = match n {
                OwlAxiom::SubClassOf(c, d) => self.subsumed(&c, &d, budget)?,
                OwlAxiom::SubObjectPropertyOf(r, s) => {
                    // ALCHI cannot derive new role inclusions beyond the
                    // declared hierarchy (no role composition), except
                    // vacuously when the subrole is globally empty, which
                    // we detect by testing satisfiability of ∃r.⊤.
                    self.kb.role_subsumed(r, s)
                        || !self.satisfiable(&[ClassExpr::some_thing(r)], budget)?
                }
                OwlAxiom::DisjointObjectProperties(r, s) => {
                    self.kb.disjoint_roles.iter().any(|&(x, y)| {
                        (self.kb.role_subsumed(r, x) && self.kb.role_subsumed(s, y))
                            || (self.kb.role_subsumed(r, y) && self.kb.role_subsumed(s, x))
                    }) || !self.satisfiable(&[ClassExpr::some_thing(r)], budget)?
                        || !self.satisfiable(&[ClassExpr::some_thing(s)], budget)?
                }
                // Data-property axioms are not decided by the tableau.
                OwlAxiom::SubDataPropertyOf(_, _)
                | OwlAxiom::DisjointDataProperties(_, _)
                | OwlAxiom::DataPropertyDomain(_, _) => false,
                other => unreachable!("normalize() left {other:?}"),
            };
            if !holds {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn new_node(&mut self, g: &mut Graph, parent: Option<(u32, BasicRole)>) -> u32 {
        let id = g.nodes.len() as u32;
        g.nodes.push(Node {
            label: HashSet::new(),
            parent,
            children: Vec::new(),
            expanded: HashSet::new(),
        });
        let gcis = self.kb.gcis.clone();
        for gci in gcis {
            self.add_concept(g, id, gci);
        }
        id
    }

    /// Adds a concept id to a node label, firing the incremental rules:
    /// clash detection, lazy unfolding, eager domain absorption, `⊓`
    /// decomposition, `∀` propagation to current neighbours, and queueing
    /// of `⊔`/`∃` todos. Iterative (explicit worklist) to survive deep
    /// unfold chains.
    fn add_concept(&mut self, g: &mut Graph, node: u32, id: u32) {
        let mut work: Vec<(u32, u32)> = vec![(node, id)];
        while let Some((n, id)) = work.pop() {
            if !g.nodes[n as usize].label.insert(id) {
                continue;
            }
            // Cheap arms match by reference; And/All clone their payload
            // because interning may grow the expression arena.
            enum Payload {
                None,
                Unfold(ConceptId),
                Absorb(BasicRole),
                And(Vec<ClassExpr>),
                All(BasicRole, ClassExpr),
            }
            let mut payload = Payload::None;
            match self.expr(id) {
                ClassExpr::Nothing => g.clash = true,
                ClassExpr::Thing => {}
                ClassExpr::Class(a) => {
                    let a = *a;
                    let neg = ClassExpr::not(ClassExpr::Class(a));
                    if let Some(nid) = self.lookup(&neg) {
                        if g.nodes[n as usize].label.contains(&nid) {
                            g.clash = true;
                        }
                    }
                    payload = Payload::Unfold(a);
                }
                ClassExpr::Not(inner) => {
                    if let ClassExpr::Class(_) = inner.as_ref() {
                        if let Some(pid) = self.lookup(inner) {
                            if g.nodes[n as usize].label.contains(&pid) {
                                g.clash = true;
                            }
                        }
                    }
                }
                // Eager domain absorption: a node carrying ∃q.C will have
                // a q-successor in every completion, so absorbed domain
                // axioms ∃R.⊤ ⊑ D with q ⊑* R fire immediately. Firing
                // here (not at edge creation) keeps the label stable
                // before the node's first expansion — otherwise pairwise
                // blocking never matches and chains descend forever.
                ClassExpr::Some(q, _) => {
                    g.todo_some.push_back((n, id));
                    payload = Payload::Absorb(*q);
                }
                ClassExpr::Or(_) => {
                    g.todo_or.push_back((n, id));
                }
                ClassExpr::And(cs) => payload = Payload::And(cs.clone()),
                ClassExpr::All(r, inner) => payload = Payload::All(*r, (**inner).clone()),
            }
            match payload {
                Payload::None => {}
                Payload::Unfold(a) => {
                    if let Some(unfold) = self.kb.unfold.get(&a) {
                        work.extend(unfold.iter().map(|&u| (n, u)));
                    }
                }
                Payload::Absorb(q) => {
                    for &(abs_role, did) in &self.kb.domain_absorb {
                        if self.kb.role_subsumed(q, abs_role) {
                            work.push((n, did));
                        }
                    }
                }
                Payload::And(cs) => {
                    for c in cs {
                        let cid = self.intern(c);
                        work.push((n, cid));
                    }
                }
                Payload::All(r, inner) => {
                    let cid = self.intern(inner);
                    for nb in self.neighbours(g, n, r) {
                        work.push((nb, cid));
                    }
                }
            }
        }
    }

    fn lookup(&self, c: &ClassExpr) -> Option<u32> {
        self.kb
            .ids
            .get(c)
            .copied()
            .or_else(|| self.extra.get(c).copied())
    }

    /// Neighbours of `node` reachable through a role subsumed by `r`:
    /// children via `q ⊑* r` and the parent via `q⁻ ⊑* r`.
    fn neighbours(&self, g: &Graph, node: u32, r: BasicRole) -> Vec<u32> {
        let mut out = Vec::new();
        let n = &g.nodes[node as usize];
        for &(child, q) in &n.children {
            if self.kb.role_subsumed(q, r) {
                out.push(child);
            }
        }
        if let Some((parent, q)) = n.parent {
            if self.kb.role_subsumed(q.inverse(), r) {
                out.push(parent);
            }
        }
        out
    }

    /// Whether `node` is blocked: it or some ancestor is directly blocked.
    fn is_blocked(&self, g: &Graph, node: u32) -> bool {
        let mut cur = node;
        loop {
            if self.directly_blocked(g, cur) {
                return true;
            }
            match g.nodes[cur as usize].parent {
                Some((parent, _)) => cur = parent,
                None => return false,
            }
        }
    }

    fn directly_blocked(&self, g: &Graph, y: u32) -> bool {
        let Some((yp, yrole)) = g.nodes[y as usize].parent else {
            return false;
        };
        // Anywhere pairwise blocking: any *older* node x (with a parent)
        // whose label, parent label and incoming role all match blocks y.
        // Equality blocking is transitive, so a blocked blocker is
        // harmless: unraveling eventually lands on an unblocked witness
        // with the same label.
        for x in 0..y {
            let Some((xp, xrole)) = g.nodes[x as usize].parent else {
                continue;
            };
            if xrole == yrole
                && g.nodes[x as usize].label == g.nodes[y as usize].label
                && g.nodes[xp as usize].label == g.nodes[yp as usize].label
            {
                return true;
            }
        }
        false
    }

    /// Expands an existential `(node, ∃r.C id)` by creating the child
    /// node, registering the edge first so `∀`-propagation sees it.
    fn expand_some(&mut self, g: &mut Graph, node: u32, id: u32) {
        let ClassExpr::Some(r, inner) = self.expr(id).clone() else {
            unreachable!("todo_some held a non-existential");
        };
        g.nodes[node as usize].expanded.insert(id);
        if self.kb.edge_clashes(r) {
            g.clash = true;
            return;
        }
        let child = g.nodes.len() as u32;
        g.nodes.push(Node {
            label: HashSet::new(),
            parent: Some((node, r)),
            children: Vec::new(),
            expanded: HashSet::new(),
        });
        g.nodes[node as usize].children.push((child, r));
        // Seed the child: GCIs, the filler, absorbed range axioms, and
        // the parent's applicable universals.
        let gcis = self.kb.gcis.clone();
        for gci in gcis {
            self.add_concept(g, child, gci);
        }
        let cid = self.intern((*inner).clone());
        self.add_concept(g, child, cid);
        for &(abs_role, did) in &self.kb.domain_absorb {
            if self.kb.role_subsumed(r.inverse(), abs_role) {
                self.add_concept(g, child, did);
            }
        }
        let plabel: Vec<u32> = g.nodes[node as usize].label.iter().copied().collect();
        for pid in plabel {
            if let ClassExpr::All(r2, inner2) = self.expr(pid).clone() {
                if self.kb.role_subsumed(r, r2) {
                    let iid = self.intern((*inner2).clone());
                    self.add_concept(g, child, iid);
                }
            }
        }
    }

    /// Expands the graph to completion. Returns `Ok(true)` iff a clash-free
    /// complete graph exists (satisfiable).
    fn expand(&mut self, g: &mut Graph, budget: Budget) -> Result<bool, Timeout> {
        loop {
            if g.clash {
                return Ok(false);
            }
            if budget.exhausted() {
                return Err(Timeout);
            }
            // Disjunctions first (they branch; resolving them early keeps
            // trials small).
            if let Some((n, id)) = g.todo_or.pop_front() {
                let ClassExpr::Or(cs) = self.expr(id).clone() else {
                    unreachable!("todo_or held a non-disjunction");
                };
                let satisfied = cs.iter().any(|c| {
                    self.lookup(c)
                        .is_some_and(|cid| g.nodes[n as usize].label.contains(&cid))
                });
                if satisfied {
                    continue;
                }
                for c in cs {
                    let mut trial = g.clone();
                    let cid = self.intern(c);
                    self.add_concept(&mut trial, n, cid);
                    if self.expand(&mut trial, budget)? {
                        *g = trial;
                        return Ok(true);
                    }
                }
                return Ok(false);
            }
            // Existential expansions.
            if let Some((n, id)) = g.todo_some.pop_front() {
                if g.nodes[n as usize].expanded.contains(&id) {
                    continue;
                }
                if self.is_blocked(g, n) {
                    g.parked.push((n, id));
                    continue;
                }
                self.expand_some(g, n, id);
                continue;
            }
            // Quiescent: retry parked expansions whose blocks dissolved.
            if !g.parked.is_empty() {
                let parked = std::mem::take(&mut g.parked);
                let mut moved = false;
                for (n, id) in parked {
                    if g.nodes[n as usize].expanded.contains(&id) {
                        continue;
                    }
                    if self.is_blocked(g, n) {
                        g.parked.push((n, id));
                    } else {
                        g.todo_some.push_back((n, id));
                        moved = true;
                    }
                }
                if moved {
                    continue;
                }
            }
            return Ok(!g.clash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owl::parse_owl;

    fn kb(src: &str) -> (Ontology, TableauKb) {
        let o = parse_owl(src).unwrap();
        let kb = TableauKb::new(&o);
        (o, kb)
    }

    fn sub(src: &str, a: &str, b: &str) -> bool {
        let (o, kb) = kb(src);
        let mut t = Tableau::new(&kb);
        let ca = ClassExpr::Class(o.sig.find_concept(a).unwrap());
        let cb = ClassExpr::Class(o.sig.find_concept(b).unwrap());
        t.subsumed(&ca, &cb, Budget::default()).unwrap()
    }

    fn sat(src: &str, c: &str) -> bool {
        let (o, kb) = kb(src);
        let mut t = Tableau::new(&kb);
        let ca = ClassExpr::Class(o.sig.find_concept(c).unwrap());
        t.satisfiable(&[ca], Budget::default()).unwrap()
    }

    #[test]
    fn told_subsumption_chain() {
        let src = "SubClassOf(A B)\nSubClassOf(B C)";
        assert!(sub(src, "A", "C"));
        assert!(!sub(src, "C", "A"));
    }

    #[test]
    fn disjunction_reasoning() {
        // A ⊑ B ⊔ C, B ⊑ D, C ⊑ D ⟹ A ⊑ D.
        let src = "SubClassOf(A ObjectUnionOf(B C))\nSubClassOf(B D)\nSubClassOf(C D)";
        assert!(sub(src, "A", "D"));
        assert!(!sub(src, "A", "B"));
    }

    #[test]
    fn unsatisfiable_concept() {
        let src = "SubClassOf(A B)\nSubClassOf(A ObjectComplementOf(B))";
        assert!(!sat(src, "A"));
        assert!(sub(src, "A", "B")); // ⊥ subsumed by everything
    }

    #[test]
    fn existential_universal_interplay() {
        // A ⊑ ∃p.B, ∃p range forced: A ⊑ ∀p.C ⟹ A ⊑ ∃p.(B ⊓ C).
        let src = "SubClassOf(A ObjectSomeValuesFrom(p B))\nSubClassOf(A ObjectAllValuesFrom(p C))\nSubClassOf(B ObjectComplementOf(C))";
        assert!(!sat(src, "A"));
    }

    #[test]
    fn inverse_role_propagation() {
        // A ⊑ ∃p.B, B... child's ∀p⁻.C pushes C back to the parent.
        let src = "SubClassOf(A ObjectSomeValuesFrom(p B))\n\
                   SubClassOf(B ObjectAllValuesFrom(ObjectInverseOf(p) C))\n\
                   SubClassOf(A ObjectComplementOf(C))";
        assert!(!sat(src, "A"));
    }

    #[test]
    fn role_hierarchy_universal() {
        // p ⊑ r; A ⊑ ∃p.B ⊓ ∀r.¬B is inconsistent.
        let src = "SubObjectPropertyOf(p r)\n\
                   SubClassOf(A ObjectSomeValuesFrom(p B))\n\
                   SubClassOf(A ObjectAllValuesFrom(r ObjectComplementOf(B)))";
        assert!(!sat(src, "A"));
    }

    #[test]
    fn cyclic_tbox_terminates_via_blocking() {
        // A ⊑ ∃p.A: infinite canonical model; blocking must terminate.
        let src = "SubClassOf(A ObjectSomeValuesFrom(p A))";
        assert!(sat(src, "A"));
    }

    #[test]
    fn cyclic_tbox_with_inverses_terminates() {
        let src = "SubClassOf(A ObjectSomeValuesFrom(p A))\n\
                   SubClassOf(A ObjectAllValuesFrom(ObjectInverseOf(p) A))";
        assert!(sat(src, "A"));
    }

    #[test]
    fn disjoint_roles_clash() {
        let src = "DisjointObjectProperties(p r)\nSubObjectPropertyOf(q p)\nSubObjectPropertyOf(q r)\nSubClassOf(A ObjectSomeValuesFrom(q B))";
        assert!(!sat(src, "A"));
    }

    #[test]
    fn gci_with_complex_lhs() {
        // ∃p.⊤ ⊑ C as a non-absorbable GCI.
        let src = "SubClassOf(ObjectSomeValuesFrom(p owl:Thing) C)\nSubClassOf(A ObjectSomeValuesFrom(p B))\nSubClassOf(A ObjectComplementOf(C))";
        assert!(!sat(src, "A"));
    }

    #[test]
    fn entails_checks_axioms() {
        let (o, kbv) = kb("SubClassOf(A B)\nSubObjectPropertyOf(p r)");
        let mut t = Tableau::new(&kbv);
        let a = o.sig.find_concept("A").unwrap();
        let b = o.sig.find_concept("B").unwrap();
        let p = o.sig.find_role("p").unwrap();
        let r = o.sig.find_role("r").unwrap();
        assert!(t
            .entails(
                &OwlAxiom::SubClassOf(ClassExpr::Class(a), ClassExpr::Class(b)),
                Budget::default()
            )
            .unwrap());
        assert!(t
            .entails(
                &OwlAxiom::SubObjectPropertyOf(BasicRole::Direct(p), BasicRole::Direct(r)),
                Budget::default()
            )
            .unwrap());
        assert!(!t
            .entails(
                &OwlAxiom::SubClassOf(ClassExpr::Class(b), ClassExpr::Class(a)),
                Budget::default()
            )
            .unwrap());
    }

    #[test]
    fn equivalence_via_union_split() {
        // A ≡ B ⊔ C does not entail B ⊑ C, but entails B ⊑ A.
        let src = "EquivalentClasses(A ObjectUnionOf(B C))";
        assert!(sub(src, "B", "A"));
        assert!(!sub(src, "B", "C"));
        assert!(!sub(src, "A", "B"));
    }

    #[test]
    fn budget_timeout_fires() {
        // An already-expired budget should time out on a non-trivial test.
        let (o, kbv) = kb("SubClassOf(A ObjectSomeValuesFrom(p A))");
        let mut t = Tableau::new(&kbv);
        let a = ClassExpr::Class(o.sig.find_concept("A").unwrap());
        let expired = Budget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
        };
        assert_eq!(t.satisfiable(&[a], expired), Err(Timeout));
    }
}
