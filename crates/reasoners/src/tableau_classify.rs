//! Classification by repeated tableau subsumption tests — the strategy of
//! the expressive-DL reasoners in Figure 1 — in three optimization
//! profiles that stand in for the three systems:
//!
//! * [`TableauProfile::Naive`] ("Pellet-like" in our benchmark tables):
//!   a satisfiability test per concept plus a subsumption test for every
//!   ordered pair — `O(n²)` tableau runs;
//! * [`TableauProfile::Told`] ("HermiT-like"): told subsumers (syntactic
//!   reachability over axioms with named left sides) answer positives for
//!   free; everything else still gets tested — `O(n²)` candidate pairs but
//!   far fewer hard tests on told-rich ontologies;
//! * [`TableauProfile::Enhanced`] ("FaCT++-like"): classic enhanced
//!   traversal — each concept is inserted into the growing hierarchy with
//!   a top search (find parents) and a bottom search (find children), so
//!   tree-like hierarchies need `O(n·depth·branching)` tests.
//!
//! All three produce identical [`NamedClassification`]s (property-tested
//! against each other and against `quonto` in the workspace integration
//! suites); they differ only in how many tableau calls they burn, which is
//! exactly the effect Figure 1 measures.

use std::collections::{BTreeSet, HashMap, HashSet};

use obda_dllite::{ConceptId, RoleId};
use obda_owl::{ClassExpr, Ontology, OwlAxiom};

use crate::classification::NamedClassification;
use crate::tableau::{Budget, Tableau, TableauKb, Timeout};

/// Optimization profile for tableau classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableauProfile {
    /// All-pairs subsumption testing.
    Naive,
    /// All pairs, told subsumptions answered without tests.
    Told,
    /// Enhanced traversal (top + bottom search insertion).
    Enhanced,
}

impl TableauProfile {
    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            TableauProfile::Naive => "tableau-naive",
            TableauProfile::Told => "tableau-told",
            TableauProfile::Enhanced => "tableau-enhanced",
        }
    }
}

/// Told subsumers: reflexive-transitive closure of the syntactic
/// `A ⊑ … B …` relation (named LHS, named conjuncts of the RHS).
fn told_supers(onto: &Ontology) -> HashMap<ConceptId, HashSet<ConceptId>> {
    let mut direct: HashMap<ConceptId, Vec<ConceptId>> = HashMap::new();
    let add = |a: ConceptId, d: &ClassExpr, direct: &mut HashMap<ConceptId, Vec<ConceptId>>| {
        // Named conjuncts of the superclass are told supers.
        fn conjuncts(c: &ClassExpr, out: &mut Vec<ConceptId>) {
            match c {
                ClassExpr::Class(b) => out.push(*b),
                ClassExpr::And(cs) => {
                    for c in cs {
                        conjuncts(c, out);
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        conjuncts(d, &mut out);
        direct.entry(a).or_default().extend(out);
    };
    for ax in onto.normalized_axioms() {
        if let OwlAxiom::SubClassOf(ClassExpr::Class(a), d) = ax {
            add(a, &d, &mut direct);
        }
    }
    // Transitive closure per concept (told graphs are small and shallow).
    let mut out: HashMap<ConceptId, HashSet<ConceptId>> = HashMap::new();
    for &a in direct.keys() {
        let mut seen: HashSet<ConceptId> = HashSet::new();
        let mut stack = direct.get(&a).cloned().unwrap_or_default();
        while let Some(b) = stack.pop() {
            if seen.insert(b) {
                if let Some(next) = direct.get(&b) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        out.insert(a, seen);
    }
    out
}

/// Classifies all named concepts and roles of `onto` with the given
/// profile and budget. Returns [`Timeout`] if the budget expires — the
/// "timeout" entries of Figure 1.
pub fn classify_tableau(
    onto: &Ontology,
    profile: TableauProfile,
    budget: Budget,
) -> Result<NamedClassification, Timeout> {
    classify_tableau_threaded(onto, profile, budget, 1)
}

/// Splits `len` items into at most `parts` contiguous near-equal chunks.
fn shard_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `work` over every item, sharded across `threads` scoped workers.
/// Each worker owns a private [`Tableau`] over the shared KB; per-item
/// results come back in item order (chunks are contiguous and joined in
/// spawn order), so the output is identical to a sequential run.
fn run_sharded<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    kb: &TableauKb,
    work: impl Fn(&mut Tableau<'_>, &T) -> Result<R, Timeout> + Sync,
) -> Result<Vec<R>, Timeout> {
    if threads <= 1 || items.len() < 2 {
        let mut tab = Tableau::new(kb);
        return items.iter().map(|it| work(&mut tab, it)).collect();
    }
    let ranges = shard_ranges(items.len(), threads);
    let mut parts: Vec<Result<Vec<R>, Timeout>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let slice = &items[r.clone()];
                s.spawn(move || {
                    let mut tab = Tableau::new(kb);
                    slice.iter().map(|it| work(&mut tab, it)).collect()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("tableau worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// [`classify_tableau`] with a worker-thread knob: the per-concept
/// satisfiability pre-pass and the Naive/Told subsumption pair loops are
/// sharded across `threads` scoped workers (each with its own tableau
/// over the shared preprocessed KB). The Enhanced profile's traversal is
/// inherently sequential (every insertion depends on the hierarchy built
/// so far), so it parallelizes the pre-pass only.
///
/// The result is *identical* to `classify_tableau` for every `threads`
/// value: workers cover disjoint concept ranges, per-test outcomes do
/// not depend on scheduling, and merges land in ordered sets (checked by
/// `tests/parallel_determinism.rs`).
pub fn classify_tableau_threaded(
    onto: &Ontology,
    profile: TableauProfile,
    budget: Budget,
    threads: usize,
) -> Result<NamedClassification, Timeout> {
    let threads = threads.max(1);
    let kb = TableauKb::new(onto);
    let concepts: Vec<ConceptId> = onto.sig.concepts().collect();

    // Phase 1: concept satisfiability, sharded.
    let sat_flags = run_sharded(&concepts, threads, &kb, |tab, &a| {
        if budget.exhausted() {
            return Err(Timeout);
        }
        tab.satisfiable(&[ClassExpr::Class(a)], budget)
    })?;
    let unsat: BTreeSet<ConceptId> = concepts
        .iter()
        .zip(&sat_flags)
        .filter(|&(_, &sat)| !sat)
        .map(|(&a, _)| a)
        .collect();
    let sat_concepts: Vec<ConceptId> = concepts
        .iter()
        .copied()
        .filter(|a| !unsat.contains(a))
        .collect();

    // Phase 2: concept subsumption pairs, sharded over the outer concept.
    let told = match profile {
        TableauProfile::Told => Some(told_supers(onto)),
        _ => None,
    };
    let pairs: BTreeSet<(ConceptId, ConceptId)> = match profile {
        TableauProfile::Naive | TableauProfile::Told => {
            let rows = run_sharded(&sat_concepts, threads, &kb, |tab, &a| {
                let told_a = told.as_ref().and_then(|t| t.get(&a));
                let mut row: Vec<(ConceptId, ConceptId)> = Vec::new();
                for &b in &sat_concepts {
                    if a == b {
                        continue;
                    }
                    let told_hit = told_a.is_some_and(|s| s.contains(&b));
                    if told_hit
                        || tab.subsumed(&ClassExpr::Class(a), &ClassExpr::Class(b), budget)?
                    {
                        row.push((a, b));
                    }
                }
                Ok(row)
            })?;
            rows.into_iter().flatten().collect()
        }
        TableauProfile::Enhanced => {
            let mut tab = Tableau::new(&kb);
            enhanced_traversal(&mut tab, &sat_concepts, budget)?
        }
    };

    // Phase 3: property hierarchy. ALCHI derives no role inclusions
    // beyond the declared hierarchy (modulo empty roles), so this is the
    // closed told hierarchy — what the real tableau systems report too.
    let mut tab = Tableau::new(&kb);
    let mut role_pairs: BTreeSet<(RoleId, RoleId)> = BTreeSet::new();
    let mut unsat_roles: BTreeSet<RoleId> = BTreeSet::new();
    for p in onto.sig.roles() {
        if budget.exhausted() {
            return Err(Timeout);
        }
        let dp = obda_dllite::BasicRole::Direct(p);
        if !tab.satisfiable(&[ClassExpr::some_thing(dp)], budget)? {
            unsat_roles.insert(p);
            continue;
        }
        for sup in kb.role_supers(dp) {
            if let obda_dllite::BasicRole::Direct(r) = sup {
                if *r != p {
                    role_pairs.insert((p, *r));
                }
            }
        }
    }

    Ok(NamedClassification {
        concept_pairs: pairs,
        role_pairs: Some(role_pairs),
        unsat_concepts: unsat,
        unsat_roles,
    })
}

/// Enhanced traversal over satisfiable concepts. Maintains the hierarchy
/// as `parents: concept → direct parents` among already-inserted
/// concepts, plus equivalence-class merging.
fn enhanced_traversal(
    tab: &mut Tableau<'_>,
    concepts: &[ConceptId],
    budget: Budget,
) -> Result<BTreeSet<(ConceptId, ConceptId)>, Timeout> {
    // canonical[i] = representative of i's equivalence class.
    let mut canonical: HashMap<ConceptId, ConceptId> = HashMap::new();
    let mut equivs: HashMap<ConceptId, Vec<ConceptId>> = HashMap::new();
    // DAG over representatives.
    let mut parents: HashMap<ConceptId, BTreeSet<ConceptId>> = HashMap::new();
    let mut children: HashMap<ConceptId, BTreeSet<ConceptId>> = HashMap::new();
    let mut roots: BTreeSet<ConceptId> = BTreeSet::new(); // reps with no parents
    let mut leaves: BTreeSet<ConceptId> = BTreeSet::new(); // reps with no children
    let mut inserted: Vec<ConceptId> = Vec::new();

    let test = |tab: &mut Tableau<'_>, a: ConceptId, b: ConceptId| -> Result<bool, Timeout> {
        tab.subsumed(&ClassExpr::Class(a), &ClassExpr::Class(b), budget)
    };

    for &a in concepts {
        if budget.exhausted() {
            return Err(Timeout);
        }
        // Top search: find the deepest inserted reps that subsume `a`.
        let mut found_parents: BTreeSet<ConceptId> = BTreeSet::new();
        {
            // BFS from roots, descending only into subsumers.
            let mut frontier: Vec<ConceptId> = Vec::new();
            let mut positive: HashSet<ConceptId> = HashSet::new();
            for &r in &roots {
                if test(tab, a, r)? {
                    positive.insert(r);
                    frontier.push(r);
                }
            }
            while let Some(x) = frontier.pop() {
                let mut deeper = false;
                if let Some(cs) = children.get(&x) {
                    for &c in cs.clone().iter() {
                        if positive.contains(&c) {
                            deeper = true;
                            continue;
                        }
                        if test(tab, a, c)? {
                            positive.insert(c);
                            frontier.push(c);
                            deeper = true;
                        }
                    }
                }
                if !deeper {
                    found_parents.insert(x);
                }
            }
        }
        // Equivalence check: a parent that is also subsumed by `a` merges.
        let mut merged: Option<ConceptId> = None;
        for &p in &found_parents {
            if test(tab, p, a)? {
                merged = Some(p);
                break;
            }
        }
        if let Some(rep) = merged {
            canonical.insert(a, rep);
            equivs.entry(rep).or_default().push(a);
            inserted.push(a);
            continue;
        }
        // Bottom search: among inserted reps, find the shallowest ones
        // subsumed by `a` (children of `a`). Search upward from leaves.
        let mut found_children: BTreeSet<ConceptId> = BTreeSet::new();
        {
            let mut frontier: Vec<ConceptId> = Vec::new();
            let mut positive: HashSet<ConceptId> = HashSet::new();
            for &l in &leaves {
                if test(tab, l, a)? {
                    positive.insert(l);
                    frontier.push(l);
                }
            }
            while let Some(x) = frontier.pop() {
                let mut higher = false;
                if let Some(ps) = parents.get(&x) {
                    for &p in ps.clone().iter() {
                        if positive.contains(&p) {
                            higher = true;
                            continue;
                        }
                        if test(tab, p, a)? {
                            positive.insert(p);
                            frontier.push(p);
                            higher = true;
                        }
                    }
                }
                if !higher {
                    found_children.insert(x);
                }
            }
        }
        // Link `a` into the DAG.
        canonical.insert(a, a);
        parents.insert(a, found_parents.clone());
        children.insert(a, found_children.clone());
        for &p in &found_parents {
            children.entry(p).or_default().insert(a);
            leaves.remove(&p);
        }
        for &c in &found_children {
            parents.entry(c).or_default().insert(a);
            roots.remove(&c);
        }
        if found_parents.is_empty() {
            roots.insert(a);
        }
        if found_children.is_empty() {
            leaves.insert(a);
        }
        inserted.push(a);
    }

    // Materialize pairs: reachability over the DAG, expanded through
    // equivalence classes.
    let mut pairs: BTreeSet<(ConceptId, ConceptId)> = BTreeSet::new();
    let members = |rep: ConceptId| -> Vec<ConceptId> {
        let mut m = vec![rep];
        if let Some(eq) = equivs.get(&rep) {
            m.extend(eq.iter().copied());
        }
        m
    };
    let reps: Vec<ConceptId> = inserted
        .iter()
        .copied()
        .filter(|c| canonical.get(c) == Some(c))
        .collect();
    for &rep in &reps {
        // Ancestors of rep by DFS over parents.
        let mut ancestors: HashSet<ConceptId> = HashSet::new();
        let mut stack: Vec<ConceptId> = parents
            .get(&rep)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(p) = stack.pop() {
            if ancestors.insert(p) {
                if let Some(ps) = parents.get(&p) {
                    stack.extend(ps.iter().copied());
                }
            }
        }
        let subs = members(rep);
        // Equivalence members subsume each other.
        for &x in &subs {
            for &y in &subs {
                if x != y {
                    pairs.insert((x, y));
                }
            }
        }
        for &anc in &ancestors {
            for &x in &subs {
                for &y in members(anc).iter() {
                    pairs.insert((x, y));
                }
            }
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owl::parse_owl;

    fn classify(src: &str, profile: TableauProfile) -> (Ontology, NamedClassification) {
        let o = parse_owl(src).unwrap();
        let c = classify_tableau(&o, profile, Budget::default()).unwrap();
        (o, c)
    }

    const SRC: &str = "SubClassOf(A B)\nSubClassOf(B C)\nSubClassOf(D ObjectUnionOf(A B))\nEquivalentClasses(E C)\nSubClassOf(F A)\nSubClassOf(F ObjectComplementOf(A))\nSubObjectPropertyOf(p r)";

    #[test]
    fn all_profiles_agree() {
        let (_, naive) = classify(SRC, TableauProfile::Naive);
        let (_, told) = classify(SRC, TableauProfile::Told);
        let (_, enhanced) = classify(SRC, TableauProfile::Enhanced);
        assert_eq!(naive, told);
        assert_eq!(naive, enhanced);
    }

    #[test]
    fn expected_subsumptions_present() {
        let (o, c) = classify(SRC, TableauProfile::Naive);
        let id = |n: &str| o.sig.find_concept(n).unwrap();
        assert!(c.concept_pairs.contains(&(id("A"), id("C"))));
        assert!(c.concept_pairs.contains(&(id("D"), id("B")))); // D ⊑ A⊔B ⊑ B
        assert!(c.concept_pairs.contains(&(id("E"), id("C"))));
        assert!(c.concept_pairs.contains(&(id("C"), id("E"))));
        assert!(c.unsat_concepts.contains(&id("F")));
        // Unsat concepts are excluded from pairs.
        assert!(!c.concept_pairs.iter().any(|&(x, _)| x == id("F")));
        let roles = c.role_pairs.as_ref().unwrap();
        let p = o.sig.find_role("p").unwrap();
        let r = o.sig.find_role("r").unwrap();
        assert!(roles.contains(&(p, r)));
    }

    #[test]
    fn union_subsumption_needs_real_reasoning() {
        // D ⊑ A ⊔ B does not give D ⊑ A; but with A ⊑ B it gives D ⊑ B.
        let (o, c) = classify(
            "SubClassOf(D ObjectUnionOf(A B))\nSubClassOf(A B)",
            TableauProfile::Enhanced,
        );
        let id = |n: &str| o.sig.find_concept(n).unwrap();
        assert!(c.concept_pairs.contains(&(id("D"), id("B"))));
        assert!(!c.concept_pairs.contains(&(id("D"), id("A"))));
    }

    #[test]
    fn enhanced_handles_equivalence_cycles() {
        let (o, c) = classify(
            "EquivalentClasses(A B)\nEquivalentClasses(B C)\nSubClassOf(C D)",
            TableauProfile::Enhanced,
        );
        let id = |n: &str| o.sig.find_concept(n).unwrap();
        for x in ["A", "B", "C"] {
            for y in ["A", "B", "C", "D"] {
                if x != y {
                    assert!(
                        c.concept_pairs.contains(&(id(x), id(y))),
                        "{x} ⊑ {y} missing"
                    );
                }
            }
        }
        assert!(!c.concept_pairs.contains(&(id("D"), id("A"))));
    }

    #[test]
    fn disjointness_makes_roles_unsat() {
        let (o, c) = classify(
            "DisjointObjectProperties(p p)\nSubObjectPropertyOf(p r)",
            TableauProfile::Naive,
        );
        let p = o.sig.find_role("p").unwrap();
        assert!(c.unsat_roles.contains(&p));
    }
}
