//! Property-based equivalence of the parallel closure engines: on random
//! generated ontologies, [`ParSccEngine`] and [`ChunkedBitsetEngine`] at
//! every thread count must produce successor lists identical to the
//! sequential [`SccEngine`] reference.

use obda_genont::OntologySpec;
use proptest::prelude::*;
use quonto::{ChunkedBitsetEngine, ClosureEngine, NodeId, ParSccEngine, SccEngine, TboxGraph};

prop_compose! {
    fn arb_spec()(
        concepts in 1usize..120,
        roles in 0usize..12,
        roots in 1usize..4,
        existentials in 0usize..40,
        qualified in 0usize..20,
        disjointness in 0usize..10,
        seed in 0u64..u64::MAX,
    ) -> OntologySpec {
        OntologySpec {
            name: "par-prop".into(),
            concepts,
            roles,
            roots,
            existentials,
            qualified_existentials: qualified,
            disjointness,
            seed,
            ..OntologySpec::default()
        }
    }
}

proptest! {
    #[test]
    fn parallel_engines_match_scc(spec in arb_spec(), threads in 1usize..5) {
        let tbox = spec.generate();
        let g = TboxGraph::build(&tbox);
        let reference = SccEngine.compute(&g);
        let engines: [Box<dyn ClosureEngine>; 2] = [
            Box::new(ParSccEngine::with_threads(threads)),
            Box::new(ChunkedBitsetEngine::with_threads(threads)),
        ];
        for engine in engines {
            let closure = engine.compute(&g);
            prop_assert_eq!(closure.num_nodes(), reference.num_nodes());
            for v in 0..g.num_nodes() {
                prop_assert_eq!(
                    closure.successors(NodeId(v as u32)),
                    reference.successors(NodeId(v as u32)),
                    "engine {} with {} threads diverges at node {}",
                    engine.name(),
                    threads,
                    v
                );
            }
        }
    }
}
