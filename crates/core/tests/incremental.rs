//! Incremental classification must agree exactly with from-scratch
//! classification after every axiom addition, on random evolutions.

use obda_dllite::Tbox;
use obda_genont::random_tbox;
use quonto::{Classification, NodeId};

fn closures_equal(a: &Classification, b: &Classification) -> Result<(), String> {
    let n = a.closure().num_nodes();
    if n != b.closure().num_nodes() {
        return Err("node counts differ".into());
    }
    for v in 0..n as u32 {
        if a.closure().successors(NodeId(v)) != b.closure().successors(NodeId(v)) {
            return Err(format!(
                "node {v}: {:?} vs {:?}",
                a.closure().successors(NodeId(v)),
                b.closure().successors(NodeId(v))
            ));
        }
    }
    if a.unsat().members() != b.unsat().members() {
        return Err(format!(
            "unsat sets differ: {:?} vs {:?}",
            a.unsat().members(),
            b.unsat().members()
        ));
    }
    Ok(())
}

#[test]
fn incremental_matches_from_scratch_on_random_evolutions() {
    for seed in 0u64..60 {
        // The "full" TBox defines the signature and the axiom stream.
        let full = random_tbox(seed, 5, 3, 2, 24);
        let axioms: Vec<_> = full.axioms().to_vec();
        if axioms.len() < 4 {
            continue;
        }
        // Start from a prefix, then add the rest one at a time.
        let split = axioms.len() / 3;
        let mut base = Tbox::with_signature(full.sig.clone());
        for ax in &axioms[..split] {
            base.add(*ax);
        }
        let mut incremental = Classification::classify(&base);
        for (k, ax) in axioms[split..].iter().enumerate() {
            incremental.add_axioms(&[*ax]);
            base.add(*ax);
            let scratch = Classification::classify(&base);
            closures_equal(&incremental, &scratch).unwrap_or_else(|e| {
                panic!("seed {seed}, after adding axiom {k}: {e}");
            });
        }
    }
}

#[test]
fn batch_addition_matches_too() {
    for seed in 0u64..40 {
        let full = random_tbox(seed.wrapping_add(7777), 6, 2, 1, 20);
        let axioms: Vec<_> = full.axioms().to_vec();
        if axioms.len() < 2 {
            continue;
        }
        let split = axioms.len() / 2;
        let mut base = Tbox::with_signature(full.sig.clone());
        for ax in &axioms[..split] {
            base.add(*ax);
        }
        let mut incremental = Classification::classify(&base);
        incremental.add_axioms(&axioms[split..]);
        let scratch = Classification::classify(&full);
        closures_equal(&incremental, &scratch).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn incremental_update_after_large_base() {
    // A larger smoke case: extend a preset analog with a handful of new
    // subsumptions and check a few spot queries against recompute.
    let spec = obda_genont::presets::transportation();
    let tbox = spec.generate();
    let mut incremental = Classification::classify(&tbox);
    let a = obda_dllite::ConceptId(3);
    let b = obda_dllite::ConceptId(400);
    let ax = obda_dllite::Axiom::concept(b, a);
    incremental.add_axioms(&[ax]);
    let mut full = tbox.clone();
    full.add(ax);
    let scratch = Classification::classify(&full);
    closures_equal(&incremental, &scratch).unwrap();
    assert!(incremental.subsumed_concept(b.into(), a.into()));
}
