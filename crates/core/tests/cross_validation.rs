//! Cross-validation of the graph-based classifier against independent
//! implementations:
//!
//! * the rule-based saturation oracle (`obda-reasoners::saturation`),
//!   which shares no code with the graph pipeline;
//! * the consequence-based classifier (`obda-reasoners::consequence`);
//! * explicit finite models (soundness: every derived axiom must hold in
//!   every model of the TBox).
//!
//! All comparisons run over seeded dense random TBoxes from
//! `obda-genont::random`, which exercise cycles, unsatisfiability
//! cascades, inverse roles and qualified existentials.

use obda_dllite::{Axiom, BasicConcept, BasicRole, ConceptId, GeneralConcept, GeneralRole, Tbox};
use obda_genont::{random_interpretation, random_tbox, repair_into_model};
use obda_reasoners::{classify_consequence, Saturation};
use quonto::{deductive_closure, Classification, ClosureOptions, Implication};

/// All basic concepts over a signature (test enumeration helper).
fn all_basics(t: &Tbox) -> Vec<BasicConcept> {
    let mut out: Vec<BasicConcept> = t.sig.concepts().map(BasicConcept::Atomic).collect();
    for p in t.sig.roles() {
        out.push(BasicConcept::exists(p));
        out.push(BasicConcept::exists_inv(p));
    }
    for u in t.sig.attributes() {
        out.push(BasicConcept::AttrDomain(u));
    }
    out
}

fn all_roles(t: &Tbox) -> Vec<BasicRole> {
    t.sig
        .roles()
        .flat_map(|p| [BasicRole::Direct(p), BasicRole::Inverse(p)])
        .collect()
}

#[test]
fn positive_subsumptions_match_saturation() {
    for seed in 0u64..60 {
        let t = random_tbox(seed, 5, 3, 2, 18);
        let cls = Classification::classify(&t);
        let sat = Saturation::saturate(&t);
        for &b1 in &all_basics(&t) {
            for &b2 in &all_basics(&t) {
                let graph = cls.subsumed_concept(b1, b2);
                let oracle = sat.entails(&Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)));
                assert_eq!(
                    graph, oracle,
                    "seed {seed}: {b1:?} ⊑ {b2:?} graph={graph} saturation={oracle}"
                );
            }
        }
        for &q1 in &all_roles(&t) {
            for &q2 in &all_roles(&t) {
                let graph = cls.subsumed_role(q1, q2);
                let oracle = sat.entails(&Axiom::RoleIncl(q1, GeneralRole::Basic(q2)));
                assert_eq!(graph, oracle, "seed {seed}: {q1:?} ⊑ {q2:?}");
            }
        }
    }
}

#[test]
fn unsat_sets_match_saturation() {
    for seed in 0u64..80 {
        // Denser negative axioms to hit unsat cascades often.
        let t = random_tbox(seed.wrapping_mul(31).wrapping_add(7), 4, 2, 1, 22);
        let cls = Classification::classify(&t);
        let sat = Saturation::saturate(&t);
        for &b in &all_basics(&t) {
            let node = cls.graph().concept_node(b);
            assert_eq!(
                cls.unsat().contains(node),
                sat.unsat_c.contains(&b),
                "seed {seed}: unsat({b:?})"
            );
        }
        for &q in &all_roles(&t) {
            let node = cls.graph().role_node(q);
            assert_eq!(
                cls.unsat().contains(node),
                sat.unsat_r.contains(&q),
                "seed {seed}: unsat({q:?})"
            );
        }
    }
}

#[test]
fn implication_matches_saturation_on_all_axiom_shapes() {
    for seed in 0u64..40 {
        let t = random_tbox(seed.wrapping_add(1000), 4, 2, 2, 16);
        let cls = Classification::classify(&t);
        let imp = Implication::new(&cls);
        let sat = Saturation::saturate(&t);
        let basics = all_basics(&t);
        let roles = all_roles(&t);
        // Basic and negative concept inclusions.
        for &b1 in &basics {
            for &b2 in &basics {
                for ax in [
                    Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)),
                    Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)),
                ] {
                    assert_eq!(imp.entails(&ax), sat.entails(&ax), "seed {seed}: {ax:?}");
                }
            }
        }
        // Qualified existentials.
        for &b in &basics {
            for &q in &roles {
                for a in t.sig.concepts() {
                    let ax = Axiom::ConceptIncl(b, GeneralConcept::QualExists(q, a));
                    assert_eq!(imp.entails(&ax), sat.entails(&ax), "seed {seed}: {ax:?}");
                }
            }
        }
        // Role axioms.
        for &q1 in &roles {
            for &q2 in &roles {
                for ax in [Axiom::role(q1, q2), Axiom::role_neg(q1, q2)] {
                    assert_eq!(imp.entails(&ax), sat.entails(&ax), "seed {seed}: {ax:?}");
                }
            }
        }
        // Attribute axioms.
        for u in t.sig.attributes() {
            for w in t.sig.attributes() {
                for ax in [Axiom::AttrIncl(u, w), Axiom::AttrNegIncl(u, w)] {
                    assert_eq!(imp.entails(&ax), sat.entails(&ax), "seed {seed}: {ax:?}");
                }
            }
        }
    }
}

#[test]
fn concept_classification_matches_consequence_reasoner() {
    for seed in 0u64..60 {
        let t = random_tbox(seed.wrapping_add(2000), 6, 3, 0, 20);
        let cls = Classification::classify(&t);
        let cb = classify_consequence(&t);
        // Unsat concepts agree.
        let quonto_unsat: std::collections::BTreeSet<ConceptId> =
            cls.unsat_concepts().into_iter().collect();
        assert_eq!(quonto_unsat, cb.unsat_concepts, "seed {seed}: unsat sets");
        // Pairs among satisfiable concepts agree.
        let mut quonto_pairs = std::collections::BTreeSet::new();
        for a in t.sig.concepts() {
            if cls.concept_unsat(a) {
                continue;
            }
            for b in cls.concept_subsumers(a) {
                if !cls.concept_unsat(b) {
                    quonto_pairs.insert((a, b));
                }
            }
        }
        assert_eq!(quonto_pairs, cb.concept_pairs, "seed {seed}: pairs");
    }
}

#[test]
fn derived_axioms_hold_in_every_random_model() {
    let mut models_checked = 0;
    for seed in 0u64..200 {
        let t = random_tbox(seed, 4, 2, 1, 10);
        let interp = random_interpretation(seed, &t, 4, 0.25);
        let Some(model) = repair_into_model(&t, interp) else {
            continue;
        };
        models_checked += 1;
        let cls = Classification::classify(&t);
        for ax in deductive_closure(&cls, ClosureOptions::default()) {
            assert!(
                model.satisfies(&ax),
                "seed {seed}: derived {ax:?} fails in a model of the TBox"
            );
        }
    }
    assert!(
        models_checked >= 30,
        "only {models_checked} repairable models; generator drifted"
    );
}

#[test]
fn closure_engines_agree_on_random_tboxes() {
    for seed in 0u64..40 {
        let t = random_tbox(seed.wrapping_add(3000), 8, 4, 2, 30);
        let g = quonto::TboxGraph::build(&t);
        let engines = quonto::all_engines();
        let reference = engines[0].compute(&g);
        for e in &engines[1..] {
            let c = e.compute(&g);
            for n in 0..reference.num_nodes() as u32 {
                assert_eq!(
                    reference.successors(quonto::NodeId(n)),
                    c.successors(quonto::NodeId(n)),
                    "seed {seed} engine {} node {n}",
                    e.name()
                );
            }
        }
    }
}

#[test]
fn deductive_closure_is_exactly_the_entailed_fragment() {
    // Completeness of the materialized closure: every restricted-shape
    // axiom entailed per saturation must be present (modulo axioms that
    // hold only through unsatisfiable LHS, which are opt-in).
    for seed in 0u64..25 {
        let t = random_tbox(seed.wrapping_add(4000), 4, 2, 0, 12);
        let cls = Classification::classify(&t);
        let sat = Saturation::saturate(&t);
        let closed: std::collections::HashSet<Axiom> = deductive_closure(
            &cls,
            ClosureOptions {
                include_unsat_subsumptions: true,
            },
        )
        .into_iter()
        .collect();
        let basics = all_basics(&t);
        for &b1 in &basics {
            for &b2 in &basics {
                let ax = Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2));
                if b1 != b2 && sat.entails(&ax) {
                    assert!(closed.contains(&ax), "seed {seed}: missing {ax:?}");
                }
                let nax = Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2));
                if sat.entails(&nax) {
                    assert!(closed.contains(&nax), "seed {seed}: missing {nax:?}");
                }
            }
        }
        for &b in &basics {
            // Qualified consequences of an unsatisfiable LHS are trivial
            // and deliberately not materialized (see ClosureOptions docs).
            if sat.unsat_c.contains(&b) {
                continue;
            }
            for &q in &all_roles(&t) {
                for a in t.sig.concepts() {
                    let ax = Axiom::ConceptIncl(b, GeneralConcept::QualExists(q, a));
                    if sat.entails(&ax) {
                        assert!(closed.contains(&ax), "seed {seed}: missing {ax:?}");
                    }
                }
            }
        }
        // Role and role-disjointness shapes.
        for &q1 in &all_roles(&t) {
            for &q2 in &all_roles(&t) {
                let pos = Axiom::role(q1, q2);
                if q1 != q2 && sat.entails(&pos) {
                    assert!(closed.contains(&pos), "seed {seed}: missing {pos:?}");
                }
                let neg = Axiom::role_neg(q1, q2);
                if sat.entails(&neg) {
                    assert!(closed.contains(&neg), "seed {seed}: missing {neg:?}");
                }
            }
        }
    }
}
