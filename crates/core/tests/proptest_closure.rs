//! Property-based tests for the closure/classification layer: order
//! axioms of the reachability relation, monotonicity under axiom
//! addition, and agreement between Φ_T materialization and the query API.

use obda_dllite::{Axiom, BasicConcept, GeneralConcept, Tbox};
use proptest::prelude::*;
use quonto::{compute_phi, Classification, NodeId, TboxGraph};

const N: u32 = 6;

fn tbox_from_edges(edges: &[(u32, u32)]) -> Tbox {
    let mut t = Tbox::new();
    let cs: Vec<_> = (0..N).map(|i| t.sig.concept(&format!("C{i}"))).collect();
    for &(a, b) in edges {
        if a != b {
            t.add(Axiom::concept(cs[a as usize], cs[b as usize]));
        }
    }
    t
}

prop_compose! {
    fn arb_edges()(edges in proptest::collection::vec((0..N, 0..N), 0..18)) -> Vec<(u32, u32)> {
        edges
    }
}

proptest! {
    #[test]
    fn closure_is_a_preorder(edges in arb_edges()) {
        let t = tbox_from_edges(&edges);
        let g = TboxGraph::build(&t);
        let closure = quonto::recommended().compute(&g);
        // Reflexive by definition of reaches; transitive:
        for a in 0..N {
            prop_assert!(closure.reaches(NodeId(a), NodeId(a)));
            for b in 0..N {
                for c in 0..N {
                    if closure.reaches(NodeId(a), NodeId(b))
                        && closure.reaches(NodeId(b), NodeId(c))
                    {
                        prop_assert!(closure.reaches(NodeId(a), NodeId(c)));
                    }
                }
            }
        }
        // Contains the base edges.
        for &(a, b) in &edges {
            if a != b {
                prop_assert!(closure.reaches(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn adding_axioms_is_monotone(
        edges in arb_edges(),
        extra in (0..N, 0..N),
    ) {
        let t1 = tbox_from_edges(&edges);
        let mut with_extra = edges.clone();
        with_extra.push(extra);
        let t2 = tbox_from_edges(&with_extra);
        let c1 = Classification::classify(&t1);
        let c2 = Classification::classify(&t2);
        for a in 0..N {
            for b in 0..N {
                let (ca, cb) = (obda_dllite::ConceptId(a), obda_dllite::ConceptId(b));
                if c1.subsumed_concept(ca.into(), cb.into()) {
                    prop_assert!(
                        c2.subsumed_concept(ca.into(), cb.into()),
                        "adding an axiom lost C{a} ⊑ C{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn phi_matches_query_api(edges in arb_edges()) {
        let t = tbox_from_edges(&edges);
        let g = TboxGraph::build(&t);
        let closure = quonto::recommended().compute(&g);
        let phi: std::collections::HashSet<Axiom> =
            compute_phi(&g, &closure).into_iter().collect();
        for a in 0..N {
            for b in 0..N {
                if a == b {
                    continue;
                }
                let ax = Axiom::ConceptIncl(
                    BasicConcept::Atomic(obda_dllite::ConceptId(a)),
                    GeneralConcept::Basic(BasicConcept::Atomic(obda_dllite::ConceptId(b))),
                );
                prop_assert_eq!(
                    phi.contains(&ax),
                    closure.reaches(NodeId(a), NodeId(b)),
                    "Φ_T and reachability disagree on C{} ⊑ C{}", a, b
                );
            }
        }
    }

    #[test]
    fn equivalence_classes_partition_cycles(edges in arb_edges()) {
        let t = tbox_from_edges(&edges);
        let cls = Classification::classify(&t);
        let classes = cls.concept_equivalence_classes();
        // Members of a class subsume each other; distinct classes don't
        // mutually subsume.
        for class in &classes {
            for &x in class {
                for &y in class {
                    prop_assert!(cls.subsumed_concept(x.into(), y.into()));
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            for &x in class {
                prop_assert!(seen.insert(x), "concept in two equivalence classes");
            }
        }
    }
}
