//! The **taxonomy** view of a classification: equivalence classes of
//! atomic concepts arranged in a Hasse diagram (direct-subsumption
//! edges only), the structure ontology navigation and visualization
//! tools consume (Section 5: classification "can be exploited for various
//! tasks … ranging from ontology navigation and visualization to query
//! answering").

use std::collections::{HashMap, HashSet};

use obda_dllite::ConceptId;

use crate::classify::Classification;
use crate::graph::{NodeId, NodeKind};

/// The concept taxonomy: one node per equivalence class of satisfiable
/// atomic concepts, with direct (transitively reduced) subsumption edges.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    /// Equivalence classes; each sorted ascending. Index = class id.
    classes: Vec<Vec<ConceptId>>,
    /// Class id per concept (unsatisfiable concepts are absent).
    class_of: HashMap<ConceptId, usize>,
    /// Direct parent class ids per class (transitive reduction).
    parents: Vec<Vec<usize>>,
    /// Direct child class ids per class.
    children: Vec<Vec<usize>>,
    /// Classes with no parents.
    roots: Vec<usize>,
    /// Unsatisfiable concepts (the ⊥-equivalent bucket).
    unsat: Vec<ConceptId>,
}

impl Taxonomy {
    /// Builds the taxonomy from a finished classification.
    pub fn build(cls: &Classification) -> Self {
        let g = cls.graph();
        let closure = cls.closure();
        // Group satisfiable concepts into equivalence classes.
        let mut class_of: HashMap<ConceptId, usize> = HashMap::new();
        let mut classes: Vec<Vec<ConceptId>> = Vec::new();
        let mut unsat = Vec::new();
        for i in 0..g.num_concepts() {
            let a = ConceptId(i);
            if cls.concept_unsat(a) {
                unsat.push(a);
                continue;
            }
            if class_of.contains_key(&a) {
                continue;
            }
            let n = g.atomic_node(a);
            let mut members = vec![a];
            for &v in closure.successors(n) {
                if v == n.0 {
                    continue;
                }
                if let NodeKind::Concept(b) = g.node_kind(NodeId(v)) {
                    if !cls.concept_unsat(b) && closure.reaches(NodeId(v), n) {
                        members.push(b);
                    }
                }
            }
            members.sort_unstable();
            let id = classes.len();
            for &m in &members {
                class_of.insert(m, id);
            }
            classes.push(members);
        }
        // Ancestor class sets per class (via any representative).
        let ancestor_sets: Vec<HashSet<usize>> = classes
            .iter()
            .map(|members| {
                let rep = members[0];
                let n = g.atomic_node(rep);
                let mut out = HashSet::new();
                for &v in closure.successors(n) {
                    if let NodeKind::Concept(b) = g.node_kind(NodeId(v)) {
                        if let Some(&c) = class_of.get(&b) {
                            if c != class_of[&rep] {
                                out.insert(c);
                            }
                        }
                    }
                }
                out
            })
            .collect();
        // Transitive reduction: parent p of c is direct when no other
        // ancestor of c has p among its ancestors.
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); classes.len()];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); classes.len()];
        for c in 0..classes.len() {
            for &p in &ancestor_sets[c] {
                let indirect = ancestor_sets[c]
                    .iter()
                    .any(|&q| q != p && ancestor_sets[q].contains(&p));
                if !indirect {
                    parents[c].push(p);
                    children[p].push(c);
                }
            }
            parents[c].sort_unstable();
        }
        for ch in &mut children {
            ch.sort_unstable();
        }
        let roots = (0..classes.len())
            .filter(|&c| parents[c].is_empty())
            .collect();
        Taxonomy {
            classes,
            class_of,
            parents,
            children,
            roots,
            unsat,
        }
    }

    /// Number of equivalence classes (satisfiable).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Members of a class.
    pub fn members(&self, class: usize) -> &[ConceptId] {
        &self.classes[class]
    }

    /// The class of a concept (`None` for unsatisfiable concepts).
    pub fn class_of(&self, a: ConceptId) -> Option<usize> {
        self.class_of.get(&a).copied()
    }

    /// Direct parent classes.
    pub fn parents(&self, class: usize) -> &[usize] {
        &self.parents[class]
    }

    /// Direct child classes.
    pub fn children(&self, class: usize) -> &[usize] {
        &self.children[class]
    }

    /// Root classes (no parents).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The unsatisfiable concepts (⊥-equivalent).
    pub fn unsatisfiable(&self) -> &[ConceptId] {
        &self.unsat
    }

    /// Depth of a class: longest path to a root (0 for roots).
    pub fn depth(&self, class: usize) -> usize {
        // Memo-free DFS; taxonomy DAGs are shallow.
        self.parents[class]
            .iter()
            .map(|&p| 1 + self.depth(p))
            .max()
            .unwrap_or(0)
    }

    /// Renders an indented tree (DAG nodes repeat under each parent), for
    /// CLI inspection — the "tree view" ontology editors show.
    pub fn render(&self, sig: &obda_dllite::Signature) -> String {
        fn rec(
            t: &Taxonomy,
            sig: &obda_dllite::Signature,
            class: usize,
            depth: usize,
            out: &mut String,
            seen: &mut Vec<usize>,
        ) {
            let names: Vec<&str> = t.classes[class]
                .iter()
                .map(|&a| sig.concept_name(a))
                .collect();
            out.push_str(&"  ".repeat(depth));
            out.push_str(&names.join(" ≡ "));
            out.push('\n');
            if seen.contains(&class) {
                return; // avoid re-expanding shared sub-DAGs
            }
            seen.push(class);
            for &c in &t.children[class] {
                rec(t, sig, c, depth + 1, out, seen);
            }
        }
        let mut out = String::new();
        let mut seen = Vec::new();
        for &r in &self.roots {
            rec(self, sig, r, 0, &mut out, &mut seen);
        }
        if !self.unsat.is_empty() {
            out.push_str("⊥ ≡ ");
            let names: Vec<&str> = self.unsat.iter().map(|&a| sig.concept_name(a)).collect();
            out.push_str(&names.join(" ≡ "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn taxonomy(src: &str) -> (obda_dllite::Tbox, Taxonomy) {
        let t = parse_tbox(src).unwrap();
        let cls = Classification::classify(&t);
        let tax = Taxonomy::build(&cls);
        (t, tax)
    }

    #[test]
    fn diamond_reduces_transitively() {
        // D ⊑ B ⊑ A, D ⊑ C ⊑ A, and D ⊑ A asserted redundantly.
        let (t, tax) = taxonomy("concept A B C D\nB [= A\nC [= A\nD [= B\nD [= C\nD [= A");
        let id = |n: &str| tax.class_of(t.sig.find_concept(n).unwrap()).unwrap();
        assert_eq!(tax.num_classes(), 4);
        assert_eq!(tax.roots(), &[id("A")]);
        // D's direct parents are B and C — the asserted D ⊑ A is reduced.
        let mut dp = tax.parents(id("D")).to_vec();
        dp.sort_unstable();
        let mut want = vec![id("B"), id("C")];
        want.sort_unstable();
        assert_eq!(dp, want);
        assert_eq!(tax.depth(id("D")), 2);
    }

    #[test]
    fn equivalences_merge_into_one_class() {
        let (t, tax) = taxonomy("concept A B C\nA [= B\nB [= A\nB [= C");
        let a = t.sig.find_concept("A").unwrap();
        let b = t.sig.find_concept("B").unwrap();
        assert_eq!(tax.class_of(a), tax.class_of(b));
        assert_eq!(tax.num_classes(), 2);
        let class = tax.class_of(a).unwrap();
        assert_eq!(tax.members(class).len(), 2);
    }

    #[test]
    fn unsat_concepts_form_the_bottom_bucket() {
        let (t, tax) = taxonomy("concept A B C\nC [= A\nC [= B\nA [= not B");
        let c = t.sig.find_concept("C").unwrap();
        assert_eq!(tax.class_of(c), None);
        assert_eq!(tax.unsatisfiable(), &[c]);
        assert_eq!(tax.num_classes(), 2);
    }

    #[test]
    fn render_shows_hierarchy() {
        let (t, tax) = taxonomy("concept Animal Dog Cat\nDog [= Animal\nCat [= Animal");
        let s = tax.render(&t.sig);
        assert!(s.starts_with("Animal\n"));
        assert!(s.contains("  Dog\n"));
        assert!(s.contains("  Cat\n"));
    }

    #[test]
    fn children_mirror_parents() {
        let (_, tax) = taxonomy("concept A B C D\nB [= A\nC [= B\nD [= B");
        for c in 0..tax.num_classes() {
            for &p in tax.parents(c) {
                assert!(tax.children(p).contains(&c));
            }
            for &ch in tax.children(c) {
                assert!(tax.parents(ch).contains(&c));
            }
        }
    }
}
