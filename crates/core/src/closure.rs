//! Transitive-closure engines for the TBox digraph.
//!
//! The paper's classification technique reduces to computing the
//! transitive closure `G_T*` of the digraph of Definition 1. How the
//! closure is computed is an implementation choice with large performance
//! consequences, so this module provides several interchangeable engines
//! behind the [`ClosureEngine`] trait (benchmarked against each other in
//! the `closure_ablation` bench):
//!
//! * [`DfsEngine`] — per-source iterative depth-first reachability;
//! * [`BfsEngine`] — per-source breadth-first reachability;
//! * [`SccEngine`] — Tarjan SCC condensation followed by reachable-set
//!   propagation in reverse topological order (cycle-heavy ontologies
//!   collapse to small DAGs; this is the default, see [`recommended`]);
//! * [`BitsetEngine`] — dense bit-matrix closure over the condensation,
//!   `O(V·E/64)`; fastest on small dense graphs but requires `O(V²/8)`
//!   bytes, so it refuses graphs above a node threshold.
//!
//! All engines produce the same [`Closure`]: per-node sorted successor
//! lists over `NodeId`s. A node is listed as its own successor only when
//! it lies on a cycle (`S ⊑ … ⊑ S` through at least one arc); the trivial
//! reflexive subsumption is handled by [`Closure::reaches`] directly.

use crate::graph::{NodeId, TboxGraph};

/// The transitive closure of a [`TboxGraph`]: sorted successor lists.
#[derive(Debug, Clone)]
pub struct Closure {
    succ: Vec<Vec<u32>>,
}

impl Closure {
    /// Builds a closure from per-node sorted successor lists (used by the
    /// parallel engines in [`crate::closure_par`]).
    pub(crate) fn from_successor_lists(succ: Vec<Vec<u32>>) -> Self {
        Closure { succ }
    }

    /// Non-trivial successors of `n` (nodes reachable through at least one
    /// arc), sorted ascending.
    #[inline]
    pub fn successors(&self, n: NodeId) -> &[u32] {
        &self.succ[n.index()]
    }

    /// Whether `to` is reachable from `from` (reflexively: `reaches(n, n)`
    /// is always true).
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        from == to || self.succ[from.index()].binary_search(&to.0).is_ok()
    }

    /// Incrementally incorporates a *new* graph arc `(from, to)` into the
    /// closure (the graph must already contain the arc): every node with
    /// a path to `from` gains `to` and everything `to` reaches. This is
    /// the classic one-edge transitive-closure update —
    /// `O(|pred*(from)| · |succ*(to)|)` sorted-merge work — which keeps
    /// re-classification after small ontology edits far cheaper than a
    /// full recomputation (see `Classification::add_axioms`).
    pub fn insert_edge(&mut self, g: &TboxGraph, from: NodeId, to: NodeId) {
        if self.reaches(from, to) {
            return;
        }
        // Targets: `to` plus everything it already reaches (`to` may be in
        // its own list when it lies on a cycle — keep the list duplicate
        // free).
        let mut targets: Vec<u32> = self.succ[to.index()].clone();
        if let Err(pos) = targets.binary_search(&to.0) {
            targets.insert(pos, to.0);
        }
        // One scratch buffer reused across predecessors: after each merge
        // it swaps with the predecessor's old list, so the loop allocates
        // at most once per call instead of once per predecessor.
        let mut merged: Vec<u32> = Vec::new();
        for p in predecessors_reflexive(g, from) {
            let existing = &self.succ[p as usize];
            // Sorted merge, skipping already-present targets.
            merged.clear();
            merged.reserve(existing.len() + targets.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < existing.len() || j < targets.len() {
                match (existing.get(i), targets.get(j)) {
                    (Some(&e), Some(&t)) if e < t => {
                        merged.push(e);
                        i += 1;
                    }
                    (Some(&e), Some(&t)) if e > t => {
                        merged.push(t);
                        j += 1;
                    }
                    (Some(&e), Some(_)) => {
                        merged.push(e);
                        i += 1;
                        j += 1;
                    }
                    (Some(&e), None) => {
                        merged.push(e);
                        i += 1;
                    }
                    (None, Some(&t)) => {
                        merged.push(t);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            // Reflexive entries stay correct by construction: `p` enters
            // `merged` from `targets` only when the new arc closes a
            // cycle through `p`, and from `existing` only if it was
            // already on one.
            std::mem::swap(&mut self.succ[p as usize], &mut merged);
        }
    }

    /// Total number of arcs in the closure.
    pub fn num_arcs(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.succ.len()
    }
}

/// Strategy interface for computing the closure of a TBox digraph.
pub trait ClosureEngine {
    /// Human-readable engine name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// Computes the transitive closure.
    fn compute(&self, g: &TboxGraph) -> Closure;

    /// Number of worker threads the engine uses (1 for the sequential
    /// engines; reported in the `QUONTO_TIMINGS` breakdown).
    fn threads(&self) -> usize {
        1
    }

    /// For meta-engines ([`AutoEngine`]): the concrete engine chosen for
    /// this graph, so callers can attribute timings to it. Concrete
    /// engines return `None`.
    fn select_for(&self, _g: &TboxGraph) -> Option<Box<dyn ClosureEngine>> {
        None
    }
}

/// Returns the engine used by default throughout the crate:
/// [`AutoEngine`], which picks a concrete engine from the graph size and
/// the machine's available parallelism at `compute` time, honouring the
/// `QUONTO_CLOSURE` environment override (see [`AutoEngine`] for the
/// selection rule and the accepted override values).
pub fn recommended() -> Box<dyn ClosureEngine> {
    Box::new(AutoEngine::default())
}

/// Like [`recommended`], with an explicit worker-thread knob (`0` = all
/// available cores) — used by the benchmark harness's `--threads` flag.
pub fn recommended_with_threads(threads: usize) -> Box<dyn ClosureEngine> {
    Box::new(AutoEngine::with_threads(threads))
}

/// Engine that defers selection to `compute` time, when both the graph
/// size and the machine's parallelism are known.
///
/// Selection rule (see DESIGN.md "Engine selection & parallel scaling"):
///
/// 1. If `QUONTO_CLOSURE` is set to `dfs`, `bfs`, `scc`, `bitset`, `par`
///    (par-scc) or `chunked` (chunked-bitset), that engine is used
///    unconditionally (`auto` restores the heuristic).
/// 2. Graphs under [`AutoEngine::SMALL_GRAPH`] nodes use [`SccEngine`]:
///    thread spawn/join overhead dominates below that size.
/// 3. With one usable core, dense graphs up to
///    [`BitsetEngine::MAX_NODES`] use [`BitsetEngine`], larger ones
///    [`SccEngine`].
/// 4. With multiple cores, everything else uses the block-parallel
///    [`ChunkedBitsetEngine`](crate::closure_par::ChunkedBitsetEngine),
///    whose `O(V)`-per-block memory never trips a size gate.
#[derive(Debug, Clone, Copy)]
pub struct AutoEngine {
    threads: usize,
}

impl AutoEngine {
    /// Below this node count the sequential SCC engine always wins.
    pub const SMALL_GRAPH: usize = 2048;

    /// Auto-selection with an explicit thread knob (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        AutoEngine {
            threads: if threads == 0 {
                crate::closure_par::default_threads()
            } else {
                threads
            },
        }
    }

    /// Resolves the concrete engine for a given graph (public so the
    /// timing breakdown can name the selected engine).
    pub fn select(&self, g: &TboxGraph) -> Box<dyn ClosureEngine> {
        use crate::closure_par::{ChunkedBitsetEngine, ParSccEngine};
        if let Some(name) = crate::env::closure_engine() {
            match name.as_str() {
                "dfs" => return Box::new(DfsEngine),
                "bfs" => return Box::new(BfsEngine),
                "scc" => return Box::new(SccEngine),
                "bitset" => return Box::new(BitsetEngine),
                "par" | "par-scc" => return Box::new(ParSccEngine::with_threads(self.threads)),
                "chunked" | "chunked-bitset" => {
                    return Box::new(ChunkedBitsetEngine::with_threads(self.threads))
                }
                _ => {} // "auto" and unknown values fall through
            }
        }
        let n = g.num_nodes();
        if n < Self::SMALL_GRAPH {
            Box::new(SccEngine)
        } else if self.threads <= 1 {
            if n <= BitsetEngine::MAX_NODES {
                Box::new(BitsetEngine)
            } else {
                Box::new(SccEngine)
            }
        } else {
            Box::new(ChunkedBitsetEngine::with_threads(self.threads))
        }
    }
}

impl Default for AutoEngine {
    fn default() -> Self {
        Self::with_threads(0)
    }
}

impl ClosureEngine for AutoEngine {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        self.select(g).compute(g)
    }

    fn select_for(&self, g: &TboxGraph) -> Option<Box<dyn ClosureEngine>> {
        Some(self.select(g))
    }
}

/// Per-source iterative DFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfsEngine;

impl ClosureEngine for DfsEngine {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        let n = g.num_nodes();
        let mut succ = vec![Vec::new(); n];
        // Epoch-stamped visited marks avoid clearing between sources.
        let mut mark = vec![u32::MAX; n];
        let mut stack: Vec<u32> = Vec::new();
        for src in 0..n as u32 {
            let mut out = Vec::new();
            stack.extend_from_slice(g.successors(NodeId(src)));
            while let Some(v) = stack.pop() {
                if mark[v as usize] == src {
                    continue;
                }
                mark[v as usize] = src;
                out.push(v);
                stack.extend_from_slice(g.successors(NodeId(v)));
            }
            out.sort_unstable();
            succ[src as usize] = out;
        }
        Closure { succ }
    }
}

/// Per-source BFS with a reusable queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsEngine;

impl ClosureEngine for BfsEngine {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        let n = g.num_nodes();
        let mut succ = vec![Vec::new(); n];
        let mut mark = vec![u32::MAX; n];
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for src in 0..n as u32 {
            let mut out = Vec::new();
            for &v in g.successors(NodeId(src)) {
                if mark[v as usize] != src {
                    mark[v as usize] = src;
                    queue.push_back(v);
                    out.push(v);
                }
            }
            while let Some(v) = queue.pop_front() {
                for &w in g.successors(NodeId(v)) {
                    if mark[w as usize] != src {
                        mark[w as usize] = src;
                        queue.push_back(w);
                        out.push(w);
                    }
                }
            }
            out.sort_unstable();
            succ[src as usize] = out;
        }
        Closure { succ }
    }
}

/// Strongly-connected-component condensation of a [`TboxGraph`], computed
/// with an iterative Tarjan algorithm (safe for very deep hierarchies).
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id of each node.
    pub comp_of: Vec<u32>,
    /// Members of each component.
    pub members: Vec<Vec<u32>>,
    /// Condensed adjacency (deduplicated), indexed by component id.
    pub comp_succ: Vec<Vec<u32>>,
    /// Component ids in reverse topological order (every component appears
    /// after all components it can reach).
    pub rev_topo: Vec<u32>,
}

impl Condensation {
    /// Computes the condensation of `g`.
    pub fn build(g: &TboxGraph) -> Self {
        let n = g.num_nodes();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp_of = vec![0u32; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut next_index = 0u32;
        // Explicit DFS call stack: (node, next-successor position).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            while let Some(&mut (v, ref mut pos)) = call.last_mut() {
                let succs = g.successors(NodeId(v));
                if *pos < succs.len() {
                    let w = succs[*pos];
                    *pos += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let cid = members.len() as u32;
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = cid;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        members.push(comp);
                    }
                }
            }
        }
        // Tarjan emits components in reverse topological order already.
        let num_comps = members.len();
        let mut comp_succ: Vec<Vec<u32>> = vec![Vec::new(); num_comps];
        for v in 0..n as u32 {
            let cv = comp_of[v as usize];
            for &w in g.successors(NodeId(v)) {
                let cw = comp_of[w as usize];
                if cv != cw {
                    comp_succ[cv as usize].push(cw);
                }
            }
        }
        for list in &mut comp_succ {
            list.sort_unstable();
            list.dedup();
        }
        let rev_topo: Vec<u32> = (0..num_comps as u32).collect();
        Condensation {
            comp_of,
            members,
            comp_succ,
            rev_topo,
        }
    }

    /// Number of components.
    pub fn num_comps(&self) -> usize {
        self.members.len()
    }
}

/// SCC condensation + reachable-set propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SccEngine;

impl ClosureEngine for SccEngine {
    fn name(&self) -> &'static str {
        "scc"
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        let cond = Condensation::build(g);
        let nc = cond.num_comps();
        // reach[c] = sorted list of component ids reachable from c
        // (excluding c itself).
        let mut reach: Vec<Vec<u32>> = vec![Vec::new(); nc];
        let mut mark = vec![u32::MAX; nc];
        // rev_topo: component 0 is emitted first by Tarjan and can only
        // reach components already emitted, so ascending order works.
        for c in 0..nc as u32 {
            let mut out: Vec<u32> = Vec::new();
            for &d in &cond.comp_succ[c as usize] {
                if mark[d as usize] != c {
                    mark[d as usize] = c;
                    out.push(d);
                }
                for &e in &reach[d as usize] {
                    if mark[e as usize] != c {
                        mark[e as usize] = c;
                        out.push(e);
                    }
                }
            }
            out.sort_unstable();
            reach[c as usize] = out;
        }
        // Expand to per-node successor lists.
        let n = g.num_nodes();
        let mut succ = vec![Vec::new(); n];
        for v in 0..n as u32 {
            let c = cond.comp_of[v as usize] as usize;
            let own = &cond.members[c];
            let mut out: Vec<u32> = Vec::with_capacity(
                own.len() - 1
                    + reach[c]
                        .iter()
                        .map(|&d| cond.members[d as usize].len())
                        .sum::<usize>(),
            );
            if own.len() > 1 {
                // Cycle: every other member, and v itself, is a successor.
                out.extend(own.iter().copied());
            }
            for &d in &reach[c] {
                out.extend(cond.members[d as usize].iter().copied());
            }
            out.sort_unstable();
            succ[v as usize] = out;
        }
        Closure { succ }
    }
}

/// Dense bit-matrix closure over the condensation. Requires `O(V²/8)`
/// bytes; [`BitsetEngine::MAX_NODES`] guards against accidental use on
/// huge graphs (it falls back to [`SccEngine`] above the threshold).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitsetEngine;

impl BitsetEngine {
    /// Node-count threshold above which the engine delegates to
    /// [`SccEngine`] instead of allocating a quadratic bit matrix.
    pub const MAX_NODES: usize = 1 << 15;
}

impl ClosureEngine for BitsetEngine {
    fn name(&self) -> &'static str {
        "bitset"
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        if g.num_nodes() > Self::MAX_NODES {
            return SccEngine.compute(g);
        }
        let cond = Condensation::build(g);
        let nc = cond.num_comps();
        let words = nc.div_ceil(64);
        let mut rows = vec![0u64; nc * words];
        // Ascending component order = reverse topological (see SccEngine).
        for c in 0..nc {
            // Split rows at c*words so we can read successor rows (< c)
            // while writing row c.
            let (done, rest) = rows.split_at_mut(c * words);
            let row = &mut rest[..words];
            for &d in &cond.comp_succ[c] {
                let d = d as usize;
                debug_assert!(d < c);
                row[d / 64] |= 1u64 << (d % 64);
                let drow = &done[d * words..(d + 1) * words];
                for (rw, dw) in row.iter_mut().zip(drow) {
                    *rw |= dw;
                }
            }
        }
        // Expand to per-node sorted successor lists.
        let n = g.num_nodes();
        let mut succ = vec![Vec::new(); n];
        for v in 0..n as u32 {
            let c = cond.comp_of[v as usize] as usize;
            let row = &rows[c * words..(c + 1) * words];
            let mut out: Vec<u32> = Vec::new();
            if cond.members[c].len() > 1 {
                out.extend(cond.members[c].iter().copied());
            }
            for (wi, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let d = wi * 64 + b;
                    out.extend(cond.members[d].iter().copied());
                }
            }
            out.sort_unstable();
            succ[v as usize] = out;
        }
        Closure { succ }
    }
}

/// All engines, for ablation benchmarks and cross-checking tests. The
/// parallel engines are included with their default (all-cores) thread
/// counts.
pub fn all_engines() -> Vec<Box<dyn ClosureEngine>> {
    vec![
        Box::new(DfsEngine),
        Box::new(BfsEngine),
        Box::new(SccEngine),
        Box::new(BitsetEngine),
        Box::new(crate::closure_par::ParSccEngine::default()),
        Box::new(crate::closure_par::ChunkedBitsetEngine::default()),
    ]
}

/// Reflexive predecessors of `n` in the *original* graph `g`: every node
/// with a (possibly empty) path to `n`. Used by `computeUnsat` to resolve
/// the `predecessors(S, G_T*)` sets of the paper without materializing the
/// reverse closure.
pub fn predecessors_reflexive(g: &TboxGraph, n: NodeId) -> Vec<u32> {
    let mut seen = vec![false; g.num_nodes()];
    let mut out = vec![n.0];
    seen[n.index()] = true;
    let mut stack = vec![n.0];
    while let Some(v) = stack.pop() {
        for &p in g.predecessors(NodeId(v)) {
            if !seen[p as usize] {
                seen[p as usize] = true;
                out.push(p);
                stack.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn closure_of(src: &str, engine: &dyn ClosureEngine) -> (TboxGraph, Closure) {
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let c = engine.compute(&g);
        (g, c)
    }

    const CHAIN: &str = "concept A B C D\nA [= B\nB [= C\nC [= D";

    #[test]
    fn chain_reachability_all_engines() {
        for e in all_engines() {
            let (g, c) = closure_of(CHAIN, e.as_ref());
            // A reaches B, C, D.
            assert_eq!(c.successors(NodeId(0)), &[1, 2, 3], "engine {}", e.name());
            assert!(c.reaches(NodeId(0), NodeId(3)));
            assert!(!c.reaches(NodeId(3), NodeId(0)));
            assert!(c.reaches(NodeId(2), NodeId(2)));
            assert_eq!(g.num_edges(), 3);
        }
    }

    #[test]
    fn cycle_members_are_mutual_successors() {
        for e in all_engines() {
            let (_, c) = closure_of("concept A B C\nA [= B\nB [= A\nB [= C", e.as_ref());
            assert!(c.reaches(NodeId(0), NodeId(1)), "engine {}", e.name());
            assert!(c.reaches(NodeId(1), NodeId(0)));
            // On a cycle, the node lists itself.
            assert!(c.successors(NodeId(0)).contains(&0));
            assert!(c.reaches(NodeId(0), NodeId(2)));
            assert!(!c.reaches(NodeId(2), NodeId(0)));
        }
    }

    #[test]
    fn engines_agree_on_role_hierarchies() {
        let src = "concept A\nrole p r s\np [= r\nr [= s\nA [= exists p";
        let reference = DfsEngine.compute(&TboxGraph::build(&parse_tbox(src).unwrap()));
        for e in all_engines() {
            let (_, c) = closure_of(src, e.as_ref());
            for n in 0..reference.num_nodes() {
                assert_eq!(
                    c.successors(NodeId(n as u32)),
                    reference.successors(NodeId(n as u32)),
                    "engine {} node {}",
                    e.name(),
                    n
                );
            }
        }
    }

    #[test]
    fn condensation_groups_cycles() {
        let t = parse_tbox("concept A B C\nA [= B\nB [= A\nB [= C").unwrap();
        let g = TboxGraph::build(&t);
        let cond = Condensation::build(&g);
        assert_eq!(cond.comp_of[0], cond.comp_of[1]);
        assert_ne!(cond.comp_of[0], cond.comp_of[2]);
        // Reverse topological: C's component comes before {A,B}'s.
        let cab = cond.comp_of[0] as usize;
        let cc = cond.comp_of[2] as usize;
        assert!(cc < cab);
    }

    #[test]
    fn predecessors_reflexive_walks_reverse_arcs() {
        let t = parse_tbox(CHAIN).unwrap();
        let g = TboxGraph::build(&t);
        let mut preds = predecessors_reflexive(&g, NodeId(2)); // C
        preds.sort_unstable();
        assert_eq!(preds, vec![0, 1, 2]);
    }

    #[test]
    fn closure_arc_count() {
        for e in all_engines() {
            let (_, c) = closure_of(CHAIN, e.as_ref());
            assert_eq!(c.num_arcs(), 3 + 2 + 1, "engine {}", e.name());
        }
    }

    /// Reference one-edge update that allocates a fresh union per
    /// predecessor — the pre-optimization behavior `insert_edge`'s
    /// scratch-buffer merge must reproduce exactly.
    fn insert_edge_allocating(c: &mut Closure, g: &TboxGraph, from: NodeId, to: NodeId) {
        if c.reaches(from, to) {
            return;
        }
        let mut targets: Vec<u32> = c.succ[to.index()].clone();
        if let Err(pos) = targets.binary_search(&to.0) {
            targets.insert(pos, to.0);
        }
        for p in predecessors_reflexive(g, from) {
            let mut merged: Vec<u32> = c.succ[p as usize]
                .iter()
                .chain(targets.iter())
                .copied()
                .collect();
            merged.sort_unstable();
            merged.dedup();
            c.succ[p as usize] = merged;
        }
    }

    #[test]
    fn insert_edge_matches_allocating_path_and_recompute() {
        // Start from the partial ontology, then add axioms one at a time;
        // after every step the scratch-buffer update must agree with both
        // the allocating reference and a full recompute.
        let base = "concept A B C D E\nrole p\nA [= B\nD [= E";
        let extra = ["B [= C", "C [= A", "C [= exists p", "exists inv(p) [= D"];
        let t = parse_tbox(base).unwrap();
        let mut g1 = TboxGraph::build(&t);
        let mut g2 = TboxGraph::build(&t);
        let mut fast = SccEngine.compute(&g1);
        let mut reference = fast.clone();
        let mut full = parse_tbox(base).unwrap();
        for src in extra {
            let grown = parse_tbox(&format!("{base}\n{src}")).unwrap();
            let ax = *grown.axioms().last().unwrap();
            full.add(ax);
            for (from, to) in g1.insert_axiom(&ax) {
                fast.insert_edge(&g1, from, to);
            }
            for (from, to) in g2.insert_axiom(&ax) {
                insert_edge_allocating(&mut reference, &g2, from, to);
            }
            let recomputed = SccEngine.compute(&TboxGraph::build(&full));
            for v in 0..fast.num_nodes() {
                let n = NodeId(v as u32);
                assert_eq!(fast.successors(n), reference.successors(n), "after {src}");
                assert_eq!(fast.successors(n), recomputed.successors(n), "after {src}");
            }
        }
    }
}
