//! The single registry of `QUONTO_*` environment knobs.
//!
//! Every environment variable the workspace reads is declared once in
//! [`KNOBS`] and read through a typed accessor in this module. That
//! gives three guarantees the scattered `std::env::var` calls of earlier
//! PRs could not:
//!
//! 1. **No silent drift** — `xtask lint` rule `R4` flags any
//!    `env::var("QUONTO_…")` read outside this file and any `QUONTO_*`
//!    name (in code *or* docs) that is not registered here;
//! 2. **Self-documenting** — the README/DESIGN knob tables are rendered
//!    from [`markdown_table`] (`cargo run -p xtask -- env-docs --write`)
//!    and the lint fails when they fall out of sync;
//! 3. **One parse policy** — defaults and "0 = all cores" conventions
//!    live next to the declaration instead of being re-implemented per
//!    call site.
//!
//! Adding a knob: append a [`Knob`] entry, add a typed accessor, run
//! `cargo run -p xtask -- env-docs --write`, and commit both.

/// Value shape of a knob (documentation + table rendering only — the
/// typed accessors are the programmatic interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// Boolean: set to `1` to enable; anything else (or unset) is off.
    Flag,
    /// Non-negative integer count (`0` conventionally = all cores).
    Count,
    /// Non-negative integer threshold with no `0` convention.
    Limit,
    /// Floating-point scale factor.
    Scale,
    /// Symbolic name from a fixed set.
    Name,
}

impl KnobKind {
    /// Human-readable value set for the documentation table.
    pub fn values(self) -> &'static str {
        match self {
            KnobKind::Flag => "`1` to enable",
            KnobKind::Count => "integer (`0` = all cores)",
            KnobKind::Limit => "integer",
            KnobKind::Scale => "float",
            KnobKind::Name => "name",
        }
    }
}

/// One registered environment knob.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// Variable name (always `QUONTO_`-prefixed).
    pub name: &'static str,
    /// Value shape.
    pub kind: KnobKind,
    /// Behaviour when unset (shown in the table).
    pub default: &'static str,
    /// What the knob does, one line.
    pub doc: &'static str,
}

/// Every environment variable the workspace reads. Keep sorted by name.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "QUONTO_BENCH_SCALE",
        kind: KnobKind::Scale,
        default: "0.1",
        doc: "Ontology scale factor for the closure benches (`1.0` = published sizes).",
    },
    Knob {
        name: "QUONTO_CLOSURE",
        kind: KnobKind::Name,
        default: "auto",
        doc: "Forces a closure engine: `dfs`, `bfs`, `scc`, `bitset`, `par`, or `chunked`, \
              bypassing the size×cores heuristic of `AutoEngine`.",
    },
    Knob {
        name: "QUONTO_EBOX",
        kind: KnobKind::Name,
        default: "off",
        doc: "EBox constraint-aware pruning mode for `mastro`: `off` (or `0`) disables it, \
              `on` (or `1`) seeds constraints from the mappings, `infer` additionally \
              re-infers them from the loaded data. Builder/config settings override the knob.",
    },
    Knob {
        name: "QUONTO_FULL_PRESETS",
        kind: KnobKind::Flag,
        default: "off",
        doc: "Runs the full-scale ontology presets in debug-profile tests (normally downscaled \
              to keep `cargo test` fast).",
    },
    Knob {
        name: "QUONTO_NO_PRUNE",
        kind: KnobKind::Flag,
        default: "off",
        doc: "Disables UCQ subsumption pruning — the cross-checking escape hatch for the \
              rewriting fast path.",
    },
    Knob {
        name: "QUONTO_PRUNE_CAP",
        kind: KnobKind::Limit,
        default: "512",
        doc: "UCQ disjunct count above which subsumption pruning is skipped (the quadratic \
              prune would cost more than evaluation). Over-cap rewritings bump the \
              `rewrite_prune_capped` counter; `--rewriting ndl` sidesteps the blowup.",
    },
    Knob {
        name: "QUONTO_SHARDS",
        kind: KnobKind::Count,
        default: "1",
        doc: "ABox evaluation shards in `mastro` (`0` = all cores). `1` serves the unsharded \
              fast path; higher values partition the ABox by subject hash and scatter-gather \
              UCQ evaluation across the shards.",
    },
    Knob {
        name: "QUONTO_THREADS",
        kind: KnobKind::Count,
        default: "1",
        doc: "UCQ evaluation threads per query in `mastro` (`0` = all cores). Keep at 1 when \
              serving many concurrent clients.",
    },
    Knob {
        name: "QUONTO_TIMINGS",
        kind: KnobKind::Name,
        default: "off",
        doc: "Trace-sink selector for per-query phase breakdowns: `1` = legacy one-line stderr \
              format (`quonto-timings`, `mastro-timings`), `json` = one JSON object per query \
              on stderr, unset/`0` = off.",
    },
    Knob {
        name: "QUONTO_TRACE_RING",
        kind: KnobKind::Count,
        default: "128",
        doc: "Capacity of the in-process ring of completed query traces served by the server \
              `TRACE` verb (`0` disables trace capture).",
    },
    Knob {
        name: "QUONTO_WRITE_FALLBACK",
        kind: KnobKind::Flag,
        default: "off",
        doc: "Disables incremental view-memo maintenance on the write path: every ABox delta \
              invalidates every memoized NDL view extent (each counted in `delta_fallback`) \
              instead of patching them in place. A/B lever for the A10 experiment.",
    },
];

/// Whether `name` is a registered knob.
pub fn is_registered(name: &str) -> bool {
    KNOBS.iter().any(|k| k.name == name)
}

/// Raw registered read. Private on purpose: callers go through the typed
/// accessors so parse policy stays in one place.
fn raw(name: &'static str) -> Option<String> {
    debug_assert!(is_registered(name), "unregistered env knob `{name}`");
    std::env::var(name).ok()
}

/// Registered flag read (`1` = on).
fn flag(name: &'static str) -> bool {
    raw(name).as_deref() == Some("1")
}

/// `QUONTO_CLOSURE`: forced closure-engine name, if set and non-empty.
pub fn closure_engine() -> Option<String> {
    raw("QUONTO_CLOSURE").filter(|s| !s.is_empty())
}

/// `QUONTO_EBOX`: requested EBox pruning mode, if set and non-empty.
/// The string is parsed by the consumer (`mastro`'s `EboxMode::from_str`)
/// so the mode vocabulary lives next to the modes.
pub fn ebox_mode() -> Option<String> {
    raw("QUONTO_EBOX").filter(|s| !s.is_empty())
}

/// `QUONTO_THREADS`: UCQ evaluation threads, if set and numeric.
/// `Some(0)` means "all available cores" by workspace convention.
pub fn eval_threads() -> Option<usize> {
    raw("QUONTO_THREADS").and_then(|s| s.parse().ok())
}

/// The trace-sink selection carried by `QUONTO_TIMINGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingsMode {
    /// Unset, `0`, or anything unrecognised: no per-query output.
    #[default]
    Off,
    /// `1` (or `stderr`): the legacy one-line stderr format.
    Stderr,
    /// `json`: one JSON object per query on stderr.
    Json,
}

/// `QUONTO_TIMINGS`: which per-query trace sink is selected.
pub fn timings_mode() -> TimingsMode {
    match raw("QUONTO_TIMINGS").as_deref() {
        Some("1") | Some("stderr") => TimingsMode::Stderr,
        Some("json") => TimingsMode::Json,
        _ => TimingsMode::Off,
    }
}

/// Whether any per-phase timing output is enabled (legacy predicate;
/// quonto's own `quonto-timings` lines key off this).
pub fn timings_enabled() -> bool {
    timings_mode() != TimingsMode::Off
}

/// Turns [`timings_enabled`] on for this process (used by harness
/// binaries like `figure1 --verbose` so the knob literal stays here).
pub fn force_timings() {
    std::env::set_var("QUONTO_TIMINGS", "1");
}

/// `QUONTO_NO_PRUNE=1`: disable UCQ subsumption pruning.
pub fn no_prune() -> bool {
    flag("QUONTO_NO_PRUNE")
}

/// `QUONTO_PRUNE_CAP`: UCQ pruning disjunct cap, if set and numeric.
pub fn prune_cap() -> Option<usize> {
    raw("QUONTO_PRUNE_CAP").and_then(|s| s.parse().ok())
}

/// `QUONTO_FULL_PRESETS=1`: run full-scale presets in debug tests.
pub fn full_presets() -> bool {
    flag("QUONTO_FULL_PRESETS")
}

/// `QUONTO_BENCH_SCALE`: bench ontology scale factor, if set and valid.
pub fn bench_scale() -> Option<f64> {
    raw("QUONTO_BENCH_SCALE").and_then(|s| s.parse().ok())
}

/// `QUONTO_SHARDS`: ABox evaluation shard count, if set and numeric.
/// `Some(0)` means "all available cores" by workspace convention;
/// `Some(1)` (and unset) select the unsharded fast path.
pub fn shards() -> Option<usize> {
    raw("QUONTO_SHARDS").and_then(|s| s.parse().ok())
}

/// `QUONTO_TRACE_RING`: capacity of the global completed-trace ring,
/// if set and numeric. `Some(0)` disables trace capture.
pub fn trace_ring() -> Option<usize> {
    raw("QUONTO_TRACE_RING").and_then(|s| s.parse().ok())
}

/// `QUONTO_WRITE_FALLBACK=1`: force the write path to invalidate
/// memoized view extents wholesale instead of patching incrementally.
pub fn write_fallback() -> bool {
    flag("QUONTO_WRITE_FALLBACK")
}

/// Renders the registry as the markdown table embedded in README.md and
/// DESIGN.md between `<!-- quonto-env:begin -->` / `<!-- quonto-env:end -->`
/// markers. `xtask lint` (rule `R4.docs`) fails when the embedded copies
/// differ from this rendering; `xtask env-docs --write` refreshes them.
pub fn markdown_table() -> String {
    let mut out = String::from(
        "| Variable | Values | Default | What it does |\n\
         |---|---|---|---|\n",
    );
    for k in KNOBS {
        let doc = k.doc.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            k.name,
            k.kind.values(),
            k.default,
            doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_unique_and_prefixed() {
        for pair in KNOBS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "KNOBS must stay sorted: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
        for k in KNOBS {
            assert!(
                k.name.starts_with("QUONTO_"),
                "knob {} must be QUONTO_-prefixed",
                k.name
            );
            assert!(!k.doc.is_empty() && !k.default.is_empty());
        }
    }

    #[test]
    fn table_lists_every_knob() {
        let table = markdown_table();
        for k in KNOBS {
            assert!(table.contains(k.name), "table missing {}", k.name);
        }
        assert_eq!(table.lines().count(), KNOBS.len() + 2);
    }

    #[test]
    fn lookups_work() {
        assert!(is_registered("QUONTO_TIMINGS"));
        assert!(!is_registered("QUONTO_NOT_A_KNOB"));
    }
}
