//! Ontology classification: the crate's headline service.
//!
//! [`Classification::classify`] runs the paper's two-step technique —
//! build the digraph (Definition 1), compute its transitive closure
//! (`Φ_T`, Theorem 1), then `computeUnsat` (`Ω_T`) — and packages the
//! result behind a query API over *named* predicates (atomic concepts,
//! atomic roles, attributes) as well as arbitrary basic expressions.
//!
//! Subsumption semantics: `T ⊨ S₁ ⊑ S₂` iff `S₁` is unsatisfiable (an
//! empty predicate is subsumed by everything of its sort) or `S₂` is
//! reachable from `S₁` in the closure.

use obda_dllite::{AttributeId, BasicConcept, BasicRole, ConceptId, NamedPredicate, RoleId, Tbox};

use crate::closure::{recommended, Closure, ClosureEngine};
use crate::graph::{NodeId, NodeKind, TboxGraph};
use crate::unsat::{compute_unsat, UnsatSet};

/// The result of classifying a TBox: digraph, transitive closure and
/// unsatisfiable-node set, with query and materialization APIs.
#[derive(Debug, Clone)]
pub struct Classification {
    graph: TboxGraph,
    closure: Closure,
    unsat: UnsatSet,
}

impl Classification {
    /// Classifies `tbox` with the default closure engine.
    pub fn classify(tbox: &Tbox) -> Self {
        Self::classify_with(tbox, recommended().as_ref())
    }

    /// Classifies `tbox` with an explicit closure engine (used by the
    /// ablation benchmarks).
    ///
    /// With `QUONTO_TIMINGS=1` in the environment, prints a one-line
    /// phase breakdown (graph build / closure / unsat, engine name and
    /// thread count) to stderr — consumed by `figure1 --verbose`.
    pub fn classify_with(tbox: &Tbox, engine: &dyn ClosureEngine) -> Self {
        let timings = crate::env::timings_enabled();
        let t0 = std::time::Instant::now();
        let graph = TboxGraph::build(tbox);
        // Resolve meta-engines (AutoEngine) so the timing line names the
        // engine that actually ran.
        let resolved = engine.select_for(&graph);
        let engine: &dyn ClosureEngine = resolved.as_deref().unwrap_or(engine);
        let t1 = std::time::Instant::now();
        let closure = engine.compute(&graph);
        let t2 = std::time::Instant::now();
        let unsat = compute_unsat(&graph);
        if timings {
            let t3 = std::time::Instant::now();
            eprintln!(
                "quonto-timings engine={} threads={} nodes={} graph_ms={:.2} closure_ms={:.2} unsat_ms={:.2}",
                engine.name(),
                engine.threads(),
                graph.num_nodes(),
                (t1 - t0).as_secs_f64() * 1e3,
                (t2 - t1).as_secs_f64() * 1e3,
                (t3 - t2).as_secs_f64() * 1e3,
            );
        }
        Classification {
            graph,
            closure,
            unsat,
        }
    }

    /// Incrementally extends the classification with new axioms over the
    /// *existing* signature (ids out of range panic). Positive arcs update
    /// the closure with the one-edge algorithm; the unsatisfiable set is
    /// recomputed (it is near-linear, unlike the closure). The caller is
    /// responsible for also recording the axioms in its `Tbox`.
    pub fn add_axioms(&mut self, axioms: &[obda_dllite::Axiom]) {
        let mut any_negative = false;
        for ax in axioms {
            if !ax.is_positive() {
                any_negative = true;
            }
            let had_quals = self.graph.qual_axioms.len();
            for (from, to) in self.graph.insert_axiom(ax) {
                self.closure.insert_edge(&self.graph, from, to);
            }
            if self.graph.qual_axioms.len() != had_quals {
                // New qualified axioms can change the unsat fixpoint even
                // without new arcs.
                any_negative = true;
            }
        }
        // Unsatisfiability can grow whenever negative structure or new
        // reachability appears; recomputing is cheap relative to closure.
        if any_negative || !axioms.is_empty() {
            self.unsat = compute_unsat(&self.graph);
        }
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &TboxGraph {
        &self.graph
    }

    /// The transitive closure.
    pub fn closure(&self) -> &Closure {
        &self.closure
    }

    /// The unsatisfiable-node set.
    pub fn unsat(&self) -> &UnsatSet {
        &self.unsat
    }

    /// Whether `T ⊨ B₁ ⊑ B₂` for basic concepts.
    pub fn subsumed_concept(&self, b1: BasicConcept, b2: BasicConcept) -> bool {
        let n1 = self.graph.concept_node(b1);
        self.unsat.contains(n1) || self.closure.reaches(n1, self.graph.concept_node(b2))
    }

    /// Whether `T ⊨ Q₁ ⊑ Q₂` for basic roles.
    pub fn subsumed_role(&self, q1: BasicRole, q2: BasicRole) -> bool {
        let n1 = self.graph.role_node(q1);
        self.unsat.contains(n1) || self.closure.reaches(n1, self.graph.role_node(q2))
    }

    /// Whether `T ⊨ U₁ ⊑ U₂` for attributes.
    pub fn subsumed_attr(&self, u1: AttributeId, u2: AttributeId) -> bool {
        let n1 = self.graph.attr_node(u1);
        self.unsat.contains(n1) || self.closure.reaches(n1, self.graph.attr_node(u2))
    }

    /// Whether an atomic concept is unsatisfiable.
    pub fn concept_unsat(&self, a: ConceptId) -> bool {
        self.unsat.contains(self.graph.atomic_node(a))
    }

    /// Whether an atomic role is unsatisfiable.
    pub fn role_unsat(&self, p: RoleId) -> bool {
        self.unsat
            .contains(self.graph.role_node(BasicRole::Direct(p)))
    }

    /// Whether an attribute is unsatisfiable.
    pub fn attr_unsat(&self, u: AttributeId) -> bool {
        self.unsat.contains(self.graph.attr_node(u))
    }

    /// All unsatisfiable atomic concepts, ascending.
    pub fn unsat_concepts(&self) -> Vec<ConceptId> {
        self.unsat
            .members()
            .iter()
            .filter_map(|&v| match self.graph.node_kind(NodeId(v)) {
                NodeKind::Concept(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// All unsatisfiable atomic roles, ascending.
    pub fn unsat_roles(&self) -> Vec<RoleId> {
        self.unsat
            .members()
            .iter()
            .filter_map(|&v| match self.graph.node_kind(NodeId(v)) {
                NodeKind::Role(p, false) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// All unsatisfiable attributes, ascending.
    pub fn unsat_attributes(&self) -> Vec<AttributeId> {
        self.unsat
            .members()
            .iter()
            .filter_map(|&v| match self.graph.node_kind(NodeId(v)) {
                NodeKind::Attr(u) => Some(u),
                _ => None,
            })
            .collect()
    }

    /// Named (atomic-concept) subsumers of `a`, excluding `a` itself. For
    /// an unsatisfiable concept this is *every* other concept; callers that
    /// only want informative subsumers should check
    /// [`Classification::concept_unsat`] first.
    pub fn concept_subsumers(&self, a: ConceptId) -> Vec<ConceptId> {
        if self.concept_unsat(a) {
            return (0..self.graph.num_concepts())
                .filter(|&i| i != a.0)
                .map(ConceptId)
                .collect();
        }
        let n = self.graph.atomic_node(a);
        self.closure
            .successors(n)
            .iter()
            .filter_map(|&v| match self.graph.node_kind(NodeId(v)) {
                NodeKind::Concept(b) if b != a => Some(b),
                _ => None,
            })
            .collect()
    }

    /// Named (role) subsumers of the basic role `q`, as basic roles,
    /// excluding `q` itself. For an unsatisfiable role this is every basic
    /// role over the signature except `q`.
    pub fn role_subsumers(&self, q: BasicRole) -> Vec<BasicRole> {
        let n = self.graph.role_node(q);
        if self.unsat.contains(n) {
            let mut out = Vec::new();
            for p in 0..self.graph.num_roles() {
                for cand in [BasicRole::Direct(RoleId(p)), BasicRole::Inverse(RoleId(p))] {
                    if cand != q {
                        out.push(cand);
                    }
                }
            }
            return out;
        }
        self.closure
            .successors(n)
            .iter()
            .filter_map(|&v| match self.graph.node_kind(NodeId(v)) {
                NodeKind::Role(p, inv) => {
                    let cand = if inv {
                        BasicRole::Inverse(p)
                    } else {
                        BasicRole::Direct(p)
                    };
                    (cand != q).then_some(cand)
                }
                _ => None,
            })
            .collect()
    }

    /// All non-trivial subsumption pairs between *satisfiable* named
    /// predicates (the canonical classification output compared across
    /// reasoners in the Figure 1 benchmark; unsatisfiable predicates are
    /// reported separately by the `unsat_*` accessors since materializing
    /// their subsumptions would be quadratic noise).
    pub fn named_subsumptions(&self) -> Vec<(NamedPredicate, NamedPredicate)> {
        let mut out = Vec::new();
        for n in self.graph.nodes() {
            if self.unsat.contains(n) {
                continue;
            }
            let from = match self.graph.node_kind(n) {
                NodeKind::Concept(a) => NamedPredicate::Concept(a),
                NodeKind::Role(p, false) => NamedPredicate::Role(p),
                NodeKind::Attr(u) => NamedPredicate::Attribute(u),
                _ => continue,
            };
            for &v in self.closure.successors(n) {
                if v == n.0 {
                    continue;
                }
                let to = match self.graph.node_kind(NodeId(v)) {
                    NodeKind::Concept(a) => NamedPredicate::Concept(a),
                    NodeKind::Role(p, false) => NamedPredicate::Role(p),
                    NodeKind::Attr(u) => NamedPredicate::Attribute(u),
                    _ => continue,
                };
                out.push((from, to));
            }
        }
        out
    }

    /// Equivalence classes of satisfiable atomic concepts with more than
    /// one member (mutual subsumption), each sorted ascending.
    pub fn concept_equivalence_classes(&self) -> Vec<Vec<ConceptId>> {
        let mut seen = vec![false; self.graph.num_concepts() as usize];
        let mut classes = Vec::new();
        for i in 0..self.graph.num_concepts() {
            let a = ConceptId(i);
            if seen[i as usize] || self.concept_unsat(a) {
                continue;
            }
            let n = self.graph.atomic_node(a);
            let mut class = vec![a];
            for &v in self.closure.successors(n) {
                if v == n.0 {
                    continue;
                }
                if let NodeKind::Concept(b) = self.graph.node_kind(NodeId(v)) {
                    if !self.concept_unsat(b) && self.closure.reaches(NodeId(v), n) {
                        class.push(b);
                        seen[b.0 as usize] = true;
                    }
                }
            }
            seen[i as usize] = true;
            if class.len() > 1 {
                class.sort_unstable();
                classes.push(class);
            }
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    #[test]
    fn transitive_subsumption_and_subsumers() {
        let t = parse_tbox("concept A B C\nA [= B\nB [= C").unwrap();
        let c = Classification::classify(&t);
        let (a, b, cc) = (
            t.sig.find_concept("A").unwrap(),
            t.sig.find_concept("B").unwrap(),
            t.sig.find_concept("C").unwrap(),
        );
        assert!(c.subsumed_concept(a.into(), cc.into()));
        assert!(!c.subsumed_concept(cc.into(), a.into()));
        assert_eq!(c.concept_subsumers(a), vec![b, cc]);
        assert!(c.concept_subsumers(cc).is_empty());
    }

    #[test]
    fn unsat_concept_is_subsumed_by_everything() {
        let t = parse_tbox("concept A B C\nA [= B\nA [= C\nB [= not C").unwrap();
        let c = Classification::classify(&t);
        let a = t.sig.find_concept("A").unwrap();
        let b = t.sig.find_concept("B").unwrap();
        assert_eq!(c.unsat_concepts(), vec![a]);
        assert!(c.subsumed_concept(a.into(), b.into()));
        assert_eq!(c.concept_subsumers(a).len(), 2);
        // B itself stays satisfiable and keeps only its real subsumers.
        assert!(c.concept_subsumers(b).is_empty());
    }

    #[test]
    fn role_subsumers_include_inverses() {
        let t = parse_tbox("role p r\np [= inv(r)").unwrap();
        let c = Classification::classify(&t);
        let p = t.sig.find_role("p").unwrap();
        let r = t.sig.find_role("r").unwrap();
        assert_eq!(
            c.role_subsumers(BasicRole::Direct(p)),
            vec![BasicRole::Inverse(r)]
        );
        assert_eq!(
            c.role_subsumers(BasicRole::Inverse(p)),
            vec![BasicRole::Direct(r)]
        );
        assert!(c.subsumed_role(BasicRole::Direct(p), BasicRole::Inverse(r)));
    }

    #[test]
    fn named_subsumptions_exclude_unsat_and_existentials() {
        let t = parse_tbox("concept A B C\nrole p\nA [= B\nC [= not C\nA [= exists p").unwrap();
        let c = Classification::classify(&t);
        let subs = c.named_subsumptions();
        // Only A ⊑ B is a named–named pair between satisfiable predicates:
        // A ⊑ ∃p has a non-named right side; C is unsatisfiable.
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn equivalence_classes_from_cycles() {
        let t = parse_tbox("concept A B C D\nA [= B\nB [= A\nC [= D").unwrap();
        let c = Classification::classify(&t);
        let classes = c.concept_equivalence_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 2);
    }

    #[test]
    fn attribute_subsumption() {
        let t = parse_tbox("attribute u w z\nu [= w\nw [= z").unwrap();
        let c = Classification::classify(&t);
        let u = t.sig.find_attribute("u").unwrap();
        let z = t.sig.find_attribute("z").unwrap();
        assert!(c.subsumed_attr(u, z));
        assert!(!c.subsumed_attr(z, u));
        assert!(c.unsat_attributes().is_empty());
    }
}
