//! Poison-recovering synchronization helpers shared by the whole stack.
//!
//! The serving layer wraps every query in `catch_unwind`, so a panic in
//! one request must stay a one-request incident. Rust's `Mutex` poisons
//! itself when a holder panics, and a poisoned lock turns every later
//! `.lock().unwrap()` into a fresh panic — one bad request would cascade
//! into a server-wide outage through the rewrite caches and the job
//! queue. Every facade-internal lock in this workspace therefore goes
//! through [`lock_or_recover`]: the guarded data is plain state that
//! stays consistent across a panicking holder (worst case a lost cache
//! insert), so recovering the guard is always the right call.
//!
//! `xtask lint` rule `R2.lock-unwrap` enforces this: `.lock().unwrap()`
//! and open-coded `PoisonError::into_inner` recoveries outside this
//! module are lint errors.
//!
//! These helpers are also the acquisition vocabulary of
//! `xtask analyze`: every `lock_or_recover`/`read_or_recover`/
//! `write_or_recover` call site is a lock-graph node for the held-set
//! propagation (rules `A1.reacquire`/`A1.inversion`), with guard
//! lifetimes modeled as live-to-`drop`-or-block-close for `let`-bound
//! guards and live-to-statement-end for temporaries. This module
//! itself is excluded from graph extraction — it implements the
//! helpers, it doesn't participate in lock ordering. Keep new
//! synchronization primitives here so the analysis sees their callers.

use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Use this instead of `.lock().unwrap()` for any mutex whose contents
/// remain meaningful after a panic (caches, counters, queues of
/// self-contained jobs). Do **not** use it around multi-step invariants
/// that a mid-flight panic could leave half-applied.
pub fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Read-locks `rw`, recovering the guard if a previous writer panicked.
///
/// The `RwLock` counterpart of [`lock_or_recover`]: use it for shared
/// state that stays consistent across a panicking writer (the write
/// path rebuilds or rolls forward whole values, never leaves them
/// half-mutated across an unwind point).
pub fn read_or_recover<T: ?Sized>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rw.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-locks `rw`, recovering the guard if a previous writer panicked.
/// See [`read_or_recover`].
pub fn write_or_recover<T: ?Sized>(rw: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rw.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison-recovery policy as
/// [`lock_or_recover`]: if another holder of the re-acquired mutex
/// panicked while we slept, the guard is recovered instead of
/// propagating the poison.
pub fn wait_timeout_or_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Panics while holding the lock, poisoning it.
    fn poison(m: &Arc<Mutex<Vec<u32>>>) {
        let m = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().expect("first lock cannot be poisoned");
            panic!("injected panic while holding the lock");
        })
        .join();
    }

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        poison(&m);
        assert!(m.is_poisoned(), "the panicking holder must poison the lock");
        // A poisoned lock still yields its (consistent) contents...
        let mut guard = lock_or_recover(&m);
        assert_eq!(*guard, vec![1, 2, 3]);
        // ...and stays fully usable afterwards.
        guard.push(4);
        drop(guard);
        assert_eq!(*lock_or_recover(&m), vec![1, 2, 3, 4]);
    }

    #[test]
    fn recovers_a_poisoned_rwlock() {
        use std::sync::RwLock;
        let rw = Arc::new(RwLock::new(7u32));
        {
            let rw = Arc::clone(&rw);
            let _ = std::thread::spawn(move || {
                let _guard = rw.write().expect("first write lock cannot be poisoned");
                panic!("injected panic while holding the write lock");
            })
            .join();
        }
        assert!(rw.is_poisoned());
        assert_eq!(*read_or_recover(&rw), 7);
        *write_or_recover(&rw) = 8;
        assert_eq!(*read_or_recover(&rw), 8);
    }

    #[test]
    fn wait_timeout_recovers_poison_acquired_while_waiting() {
        let m = Arc::new(Mutex::new(Vec::new()));
        let cv = Condvar::new();
        // Poison first; the subsequent wait re-acquires a poisoned lock.
        poison(&m);
        let guard = lock_or_recover(&m);
        let (guard, timed_out) = wait_timeout_or_recover(&cv, guard, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        assert!(guard.is_empty());
    }
}
