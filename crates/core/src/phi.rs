//! Materialization of `Φ_T`: every subsumption between *basic* concepts,
//! basic roles or attributes inferred by the positive part of the TBox.
//!
//! By Theorem 1 of the paper, `S₁ ⊑ S₂ ∈ Φ_T` iff the transitive closure
//! of the digraph has an arc `(S₁, S₂)` — so materialization is a single
//! scan over the closure's successor lists, translating node pairs back
//! into axioms. Trivial reflexive subsumptions `S ⊑ S` are skipped even
//! when a node lies on a cycle.

use obda_dllite::{Axiom, GeneralConcept, GeneralRole};

use crate::closure::Closure;
use crate::graph::{NodeId, NodeKind, TboxGraph};

/// Materializes `Φ_T` from a digraph and its transitive closure.
///
/// The output contains one axiom per non-reflexive arc of the closure:
/// `B₁ ⊑ B₂` for concept-sort arcs, `Q₁ ⊑ Q₂` for role-sort arcs and
/// `U₁ ⊑ U₂` for attribute arcs, in node order.
pub fn compute_phi(g: &TboxGraph, closure: &Closure) -> Vec<Axiom> {
    let mut out = Vec::with_capacity(closure.num_arcs());
    for n in g.nodes() {
        for &s in closure.successors(n) {
            if s == n.0 {
                continue; // skip trivial S ⊑ S on cycles
            }
            let to = NodeId(s);
            let ax = match g.node_kind(n) {
                NodeKind::Concept(_) | NodeKind::Exists(_, _) | NodeKind::AttrDomain(_) => {
                    Axiom::ConceptIncl(
                        g.node_as_concept(n),
                        GeneralConcept::Basic(g.node_as_concept(to)),
                    )
                }
                NodeKind::Role(_, _) => {
                    Axiom::RoleIncl(g.node_as_role(n), GeneralRole::Basic(g.node_as_role(to)))
                }
                NodeKind::Attr(u) => match g.node_kind(to) {
                    NodeKind::Attr(w) => Axiom::AttrIncl(u, w),
                    other => unreachable!("attr node points to {other:?}"),
                },
            };
            out.push(ax);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{ClosureEngine, SccEngine};
    use obda_dllite::{parse_tbox, printer, Tbox};

    fn phi_strings(src: &str) -> (Tbox, Vec<String>) {
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let c = SccEngine.compute(&g);
        let mut strings: Vec<String> = compute_phi(&g, &c)
            .iter()
            .map(|ax| printer::axiom(ax, &t.sig, printer::Style::Display))
            .collect();
        strings.sort();
        (t, strings)
    }

    #[test]
    fn transitive_concept_subsumptions() {
        let (_, phi) = phi_strings("concept A B C\nA [= B\nB [= C");
        assert_eq!(phi, vec!["A ⊑ B", "A ⊑ C", "B ⊑ C"]);
    }

    #[test]
    fn role_inclusions_expand_existentials() {
        let (_, phi) = phi_strings("role p r\np [= r");
        assert_eq!(phi, vec!["p ⊑ r", "p⁻ ⊑ r⁻", "∃p ⊑ ∃r", "∃p⁻ ⊑ ∃r⁻"]);
    }

    #[test]
    fn qualified_existential_weakens_to_unqualified() {
        let (_, phi) = phi_strings("concept A B\nrole q\nA [= exists q . B");
        assert_eq!(phi, vec!["A ⊑ ∃q"]);
    }

    #[test]
    fn cycles_yield_both_directions_but_no_reflexive_axioms() {
        let (_, phi) = phi_strings("concept A B\nA [= B\nB [= A");
        assert_eq!(phi, vec!["A ⊑ B", "B ⊑ A"]);
    }

    #[test]
    fn negative_inclusions_contribute_nothing() {
        let (_, phi) = phi_strings("concept A B\nA [= not B");
        assert!(phi.is_empty());
    }

    #[test]
    fn attribute_inclusions_expand_domains() {
        let (_, phi) = phi_strings("attribute u w\nu [= w");
        assert_eq!(phi, vec!["u ⊑ w", "δ(u) ⊑ δ(w)"]);
    }
}
