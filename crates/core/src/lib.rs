//! # quonto
//!
//! A from-scratch Rust implementation of the paper's primary contribution:
//! **graph-based classification of DL-Lite_R / OWL 2 QL ontologies** in
//! the style of the QuOnto reasoner at the core of the Mastro system.
//!
//! The pipeline (Section 5 of the paper):
//!
//! 1. [`graph::TboxGraph::build`] encodes the positive inclusions of a
//!    TBox into a digraph (Definition 1);
//! 2. a [`closure::ClosureEngine`] computes the transitive closure — the
//!    reachability relation *is* `Φ_T` (Theorem 1), materialized on demand
//!    by [`phi::compute_phi`];
//! 3. [`unsat::compute_unsat`] derives the unsatisfiable predicates
//!    (`Ω_T`) from the negative inclusions, to fixpoint;
//! 4. [`classify::Classification`] packages both into the classification
//!    query API used by the Figure 1 benchmark and by the OBDA system.
//!
//! On top of classification the crate implements the paper's two follow-on
//! directions: the finite **deductive closure**
//! ([`closure_full::deductive_closure`]) and a **logical implication**
//! service ([`implication::Implication`]) that answers `T ⊨ α` straight
//! from the graph artifacts.
//!
//! ```
//! use obda_dllite::parse_tbox;
//! use quonto::Classification;
//!
//! let tbox = parse_tbox(
//!     "concept County State Region\n\
//!      role isPartOf\n\
//!      County [= exists isPartOf . State\n\
//!      State [= Region",
//! )
//! .unwrap();
//! let cls = Classification::classify(&tbox);
//! let county = tbox.sig.find_concept("County").unwrap();
//! let is_part_of = tbox.sig.find_role("isPartOf").unwrap();
//! // County ⊑ ∃isPartOf follows from the qualified existential.
//! assert!(cls.subsumed_concept(
//!     county.into(),
//!     obda_dllite::BasicConcept::exists(is_part_of),
//! ));
//! ```

pub mod classify;
pub mod closure;
pub mod closure_full;
pub mod closure_par;
pub mod env;
pub mod graph;
pub mod implication;
pub mod phi;
pub mod sync;
pub mod taxonomy;
pub mod unsat;

pub use classify::Classification;
pub use closure::{
    all_engines, recommended, recommended_with_threads, AutoEngine, BfsEngine, BitsetEngine,
    Closure, ClosureEngine, DfsEngine, SccEngine,
};
pub use closure_full::{deductive_closure, ClosureOptions};
pub use closure_par::{default_threads, ChunkedBitsetEngine, ParSccEngine};
pub use graph::{NodeId, NodeKind, NodeSort, TboxGraph};
pub use implication::Implication;
pub use phi::compute_phi;
pub use taxonomy::Taxonomy;
pub use unsat::{compute_unsat, UnsatSet};
