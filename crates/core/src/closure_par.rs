//! Multi-threaded transitive-closure engines (std-only: scoped threads,
//! no external crates).
//!
//! Both engines start from the same Tarjan condensation as
//! [`SccEngine`](crate::closure::SccEngine) and parallelize the two
//! expensive phases — reachable-set propagation over the condensation and
//! expansion back to per-node successor lists:
//!
//! * [`ParSccEngine`] — layers the reverse-topological component order
//!   into *levels* (a component's level is one more than the maximum
//!   level of its successors). All components in a level depend only on
//!   lower levels, so each level's reachable-set merges fan out across
//!   worker threads with a join barrier per level.
//! * [`ChunkedBitsetEngine`] — processes source components in 64-wide
//!   *blocks*: one `u64` word per component records which of the block's
//!   64 sources reach it, and a single forward-topological sweep
//!   propagates the words along condensation arcs. Memory is `O(V)` per
//!   in-flight block (unlike the dense engine's `O(V²/8)` matrix, so
//!   there is no size gate), and blocks are independent, so they spread
//!   across worker threads with no synchronization at all.
//!
//! Both produce [`Closure`]s bit-identical to the sequential engines
//! (property-tested in `tests/proptest_closure_par.rs`): per-component
//! work is deterministic and workers write disjoint slots.

use std::num::NonZeroUsize;

use crate::closure::{Closure, ClosureEngine, Condensation};
use crate::graph::TboxGraph;

/// Number of worker threads the machine comfortably supports.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a thread knob: `0` means "use all available cores".
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Splits `items` into at most `parts` contiguous chunks of near-equal
/// size (returns ranges; never yields empty chunks).
fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Expands component-level reachability (`comp_reach[c]` = sorted comp
/// ids reachable from `c`, excluding `c`) to per-node sorted successor
/// lists, in parallel over contiguous node ranges.
fn expand_nodes_parallel(
    g: &TboxGraph,
    cond: &Condensation,
    comp_reach: &[Vec<u32>],
    threads: usize,
) -> Vec<Vec<u32>> {
    let n = g.num_nodes();
    let mut succ: Vec<Vec<u32>> = Vec::with_capacity(n);
    if threads <= 1 || n < 4096 {
        for v in 0..n {
            succ.push(node_successors(cond, comp_reach, v));
        }
        return succ;
    }
    let ranges = chunk_ranges(n, threads);
    let mut parts: Vec<Vec<Vec<u32>>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    r.map(|v| node_successors(cond, comp_reach, v))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("closure expansion worker panicked"));
        }
    });
    for part in parts {
        succ.extend(part);
    }
    succ
}

/// Sorted successor list of one node given component-level reachability.
fn node_successors(cond: &Condensation, comp_reach: &[Vec<u32>], v: usize) -> Vec<u32> {
    let c = cond.comp_of[v] as usize;
    let own = &cond.members[c];
    let reach = &comp_reach[c];
    let mut out: Vec<u32> = Vec::with_capacity(
        if own.len() > 1 { own.len() } else { 0 }
            + reach
                .iter()
                .map(|&d| cond.members[d as usize].len())
                .sum::<usize>(),
    );
    if own.len() > 1 {
        // Cycle: every member (including v itself) is a successor.
        out.extend(own.iter().copied());
    }
    for &d in reach {
        out.extend(cond.members[d as usize].iter().copied());
    }
    out.sort_unstable();
    out
}

/// Level-scheduled parallel SCC-condensation engine.
#[derive(Debug, Clone, Copy)]
pub struct ParSccEngine {
    threads: usize,
}

impl ParSccEngine {
    /// Engine with an explicit worker count (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        ParSccEngine {
            threads: resolve_threads(threads),
        }
    }

    /// Worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParSccEngine {
    fn default() -> Self {
        Self::with_threads(0)
    }
}

/// Below this many components in a level, spawning threads costs more
/// than the merges themselves; such levels run inline.
const LEVEL_PAR_CUTOFF: usize = 128;

impl ClosureEngine for ParSccEngine {
    fn name(&self) -> &'static str {
        "par-scc"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        let cond = Condensation::build(g);
        let nc = cond.num_comps();
        // Layer components: level(c) = 1 + max level(successor). Tarjan's
        // emission order is reverse topological (successors first), so one
        // ascending pass suffices.
        let mut level = vec![0u32; nc];
        let mut max_level = 0u32;
        for c in 0..nc {
            let l = cond.comp_succ[c]
                .iter()
                .map(|&d| level[d as usize] + 1)
                .max()
                .unwrap_or(0);
            level[c] = l;
            max_level = max_level.max(l);
        }
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for c in 0..nc {
            levels[level[c] as usize].push(c as u32);
        }

        // reach[c]: sorted component ids reachable from c (excluding c).
        let mut reach: Vec<Vec<u32>> = vec![Vec::new(); nc];
        // Per-worker epoch-stamped mark buffers, reused across levels
        // (stamps are component ids, which are globally unique).
        let workers = self.threads.max(1);
        let mut marks: Vec<Vec<u32>> = vec![vec![u32::MAX; nc]; workers];

        for comps in &levels {
            if workers <= 1 || comps.len() < LEVEL_PAR_CUTOFF {
                let mark = &mut marks[0];
                for &c in comps {
                    let out = merge_reach(&cond, &reach, mark, c);
                    reach[c as usize] = out;
                }
                continue;
            }
            let ranges = chunk_ranges(comps.len(), workers);
            let mut results: Vec<Vec<(u32, Vec<u32>)>> = Vec::with_capacity(ranges.len());
            std::thread::scope(|s| {
                let reach_ref = &reach;
                let cond_ref = &cond;
                let handles: Vec<_> = ranges
                    .iter()
                    .zip(marks.iter_mut())
                    .map(|(r, mark)| {
                        let slice = &comps[r.clone()];
                        s.spawn(move || {
                            slice
                                .iter()
                                .map(|&c| (c, merge_reach(cond_ref, reach_ref, mark, c)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("closure level worker panicked"));
                }
            });
            for part in results {
                for (c, out) in part {
                    reach[c as usize] = out;
                }
            }
        }

        let succ = expand_nodes_parallel(g, &cond, &reach, self.threads);
        Closure::from_successor_lists(succ)
    }
}

/// Merges the reachable sets of `c`'s successors (all already computed)
/// into a sorted, duplicate-free list, using an epoch-stamped mark
/// buffer.
fn merge_reach(cond: &Condensation, reach: &[Vec<u32>], mark: &mut [u32], c: u32) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for &d in &cond.comp_succ[c as usize] {
        if mark[d as usize] != c {
            mark[d as usize] = c;
            out.push(d);
        }
        for &e in &reach[d as usize] {
            if mark[e as usize] != c {
                mark[e as usize] = c;
                out.push(e);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Block-parallel bit-slab engine: `O(V)` memory per in-flight block, no
/// node-count gate.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedBitsetEngine {
    threads: usize,
}

impl ChunkedBitsetEngine {
    /// Engine with an explicit worker count (`0` = all cores).
    pub fn with_threads(threads: usize) -> Self {
        ChunkedBitsetEngine {
            threads: resolve_threads(threads),
        }
    }

    /// Worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ChunkedBitsetEngine {
    fn default() -> Self {
        Self::with_threads(0)
    }
}

impl ClosureEngine for ChunkedBitsetEngine {
    fn name(&self) -> &'static str {
        "chunked-bitset"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn compute(&self, g: &TboxGraph) -> Closure {
        let cond = Condensation::build(g);
        let nc = cond.num_comps();
        if nc == 0 {
            return Closure::from_successor_lists(Vec::new());
        }
        let num_blocks = nc.div_ceil(64);

        // comp_reach[c]: sorted comp ids reachable from c (excluding c).
        let mut comp_reach: Vec<Vec<u32>> = vec![Vec::new(); nc];
        let compute_block_range = |blocks: std::ops::Range<usize>| -> Vec<(usize, Vec<Vec<u32>>)> {
            // One u64 per component: bit i set ⟺ the block's i-th source
            // reaches this component. Reused (re-zeroed) across blocks.
            let mut w = vec![0u64; nc];
            let mut out = Vec::with_capacity(blocks.len());
            for b in blocks {
                let lo = b * 64;
                let hi = ((b + 1) * 64).min(nc);
                w[..hi].fill(0);
                for (i, s) in (lo..hi).enumerate() {
                    w[s] |= 1u64 << i;
                }
                // Condensation arcs run from higher to lower component id
                // (Tarjan emits successors first), so one descending sweep
                // is a forward-topological propagation. Components above
                // `hi` can never carry block bits — skip them.
                for c in (0..hi).rev() {
                    let wc = w[c];
                    if wc == 0 {
                        continue;
                    }
                    for &d in &cond.comp_succ[c] {
                        w[d as usize] |= wc;
                    }
                }
                // Ascending scan yields each source's reach list already
                // sorted. Clear the source's own bit first so the list
                // excludes `c` itself (cycles are reintroduced during node
                // expansion from `members`).
                let mut lists: Vec<Vec<u32>> = vec![Vec::new(); hi - lo];
                for (i, s) in (lo..hi).enumerate() {
                    w[s] &= !(1u64 << i);
                }
                for (c, &wc) in w[..hi].iter().enumerate() {
                    let mut bits = wc;
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        lists[i].push(c as u32);
                    }
                }
                out.push((b, lists));
            }
            out
        };

        if self.threads <= 1 || num_blocks == 1 {
            for (b, lists) in compute_block_range(0..num_blocks) {
                for (i, list) in lists.into_iter().enumerate() {
                    comp_reach[b * 64 + i] = list;
                }
            }
        } else {
            let ranges = chunk_ranges(num_blocks, self.threads);
            let mut results: Vec<Vec<(usize, Vec<Vec<u32>>)>> = Vec::with_capacity(ranges.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|r| {
                        let r = r.clone();
                        let f = &compute_block_range;
                        s.spawn(move || f(r))
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("bitset block worker panicked"));
                }
            });
            for part in results {
                for (b, lists) in part {
                    for (i, list) in lists.into_iter().enumerate() {
                        comp_reach[b * 64 + i] = list;
                    }
                }
            }
        }

        let succ = expand_nodes_parallel(g, &cond, &comp_reach, self.threads);
        Closure::from_successor_lists(succ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::SccEngine;
    use obda_dllite::parse_tbox;

    fn engines_under_test(threads: usize) -> Vec<Box<dyn ClosureEngine>> {
        vec![
            Box::new(ParSccEngine::with_threads(threads)),
            Box::new(ChunkedBitsetEngine::with_threads(threads)),
        ]
    }

    fn assert_matches_scc(src: &str) {
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let reference = SccEngine.compute(&g);
        for threads in [1, 2, 4] {
            for e in engines_under_test(threads) {
                let c = e.compute(&g);
                for v in 0..g.num_nodes() {
                    assert_eq!(
                        c.successors(crate::graph::NodeId(v as u32)),
                        reference.successors(crate::graph::NodeId(v as u32)),
                        "engine {} threads {} node {}",
                        e.name(),
                        threads,
                        v
                    );
                }
            }
        }
    }

    #[test]
    fn chain_matches_scc() {
        assert_matches_scc("concept A B C D\nA [= B\nB [= C\nC [= D");
    }

    #[test]
    fn cycles_match_scc() {
        assert_matches_scc("concept A B C\nA [= B\nB [= A\nB [= C");
    }

    #[test]
    fn roles_and_existentials_match_scc() {
        assert_matches_scc("concept A\nrole p r s\np [= r\nr [= s\nA [= exists p");
    }

    #[test]
    fn diamond_with_cycle_matches_scc() {
        assert_matches_scc("concept A B C D E\nA [= B\nA [= C\nB [= D\nC [= D\nD [= E\nE [= D");
    }

    #[test]
    fn empty_graph() {
        let t = parse_tbox("concept A").unwrap();
        let g = TboxGraph::build(&t);
        for e in engines_under_test(2) {
            let c = e.compute(&g);
            assert_eq!(c.num_arcs(), 0, "engine {}", e.name());
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, parts) in [(10, 3), (3, 10), (64, 64), (65, 4), (1, 1), (0, 4)] {
            let ranges = chunk_ranges(len, parts);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                assert!(!r.is_empty());
                covered += r.len();
                expected_start = r.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
        }
    }

    #[test]
    fn thread_resolution() {
        assert!(ParSccEngine::with_threads(0).threads() >= 1);
        assert_eq!(ChunkedBitsetEngine::with_threads(3).threads(), 3);
    }
}
