//! `computeUnsat`: the set of unsatisfiable predicates of a TBox (the
//! `Ω_T` step of the paper's classification technique).
//!
//! The seed is exactly the paper's rule: for each negative inclusion
//! `S₁ ⊑ ¬S₂`, every node in `predecessors(S₁, G_T*) ∩
//! predecessors(S₂, G_T*)` (reflexively) is unsatisfiable — it is subsumed
//! by two disjoint expressions. On top of the seed, unsatisfiability
//! propagates until fixpoint through three rules that pure reachability
//! cannot see:
//!
//! 1. **Backward propagation**: if `n` is unsatisfiable, every node with a
//!    path to `n` is unsatisfiable (`B ⊑ ⊥ʹ` with `⊥ʹ` empty forces `B`
//!    empty).
//! 2. **Role-cluster propagation**: `P`, `P⁻`, `∃P` and `∃P⁻` are
//!    simultaneously satisfiable or unsatisfiable — each being empty
//!    forces `P` itself to be empty and vice versa. Likewise `U` and
//!    `δ(U)` for attributes.
//! 3. **Qualified-existential propagation**: for an axiom `B ⊑ ∃Q.A`, if
//!    the filler `A` is unsatisfiable then `∃Q.A` is empty and `B` is
//!    unsatisfiable (the `Q`-unsatisfiable case is already covered by
//!    rules 1–2 through the arc `B → ∃Q`).
//!
//! The fixpoint is computed with a worklist in `O(V + E)` per iteration
//! round; the cross-validation tests in `obda-reasoners` check it against
//! an independent saturation oracle.

use crate::closure::predecessors_reflexive;
use crate::graph::{NodeId, NodeKind, TboxGraph};

/// Unsatisfiable nodes of a TBox digraph, as a dense membership vector
/// plus the list of unsatisfiable node ids.
#[derive(Debug, Clone)]
pub struct UnsatSet {
    is_unsat: Vec<bool>,
    members: Vec<u32>,
}

impl UnsatSet {
    /// Whether node `n` is unsatisfiable.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.is_unsat[n.index()]
    }

    /// All unsatisfiable node ids, ascending.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of unsatisfiable nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no node is unsatisfiable.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Computes the set of unsatisfiable nodes of `g` (the paper's
/// `computeUnsat`, extended to a fixpoint as described in the module
/// docs).
pub fn compute_unsat(g: &TboxGraph) -> UnsatSet {
    let n = g.num_nodes();
    let mut is_unsat = vec![false; n];
    let mut worklist: Vec<u32> = Vec::new();

    // Seed: intersections of reflexive predecessor sets of NI endpoints.
    let neg = g.neg_pairs_expanded();
    if !neg.is_empty() {
        let mut stamp = vec![false; n];
        for np in &neg {
            let preds_lhs = predecessors_reflexive(g, np.lhs);
            for &p in &preds_lhs {
                stamp[p as usize] = true;
            }
            for p in predecessors_reflexive(g, np.rhs) {
                if stamp[p as usize] && !is_unsat[p as usize] {
                    is_unsat[p as usize] = true;
                    worklist.push(p);
                }
            }
            for &p in &preds_lhs {
                stamp[p as usize] = false;
            }
        }
    }

    // Seed, part 2 — the *pair rule* for qualified existentials: the
    // witness of `B ⊑ ∃Q.A` must lie in `A ⊓ ∃Q⁻`, so if some negative
    // inclusion separates a superclass of `A` from a superclass of `∃Q⁻`,
    // the restriction is empty and `B` is unsatisfiable. (Found by
    // cross-validation against the tableau: neither `A` nor `Q` need be
    // unsatisfiable on their own.)
    if !neg.is_empty() && !g.qual_axioms.is_empty() {
        // preds-membership bitsets per NI endpoint, computed once per NI.
        let mut stamp_l = vec![false; n];
        let mut stamp_r = vec![false; n];
        for np in &neg {
            let preds_lhs = predecessors_reflexive(g, np.lhs);
            let preds_rhs = predecessors_reflexive(g, np.rhs);
            for &p in &preds_lhs {
                stamp_l[p as usize] = true;
            }
            for &p in &preds_rhs {
                stamp_r[p as usize] = true;
            }
            for qa in &g.qual_axioms {
                let a = g.atomic_node(qa.filler).index();
                let range = g.role_exists_node(qa.role.inverse()).index();
                let cross = (stamp_l[a] && stamp_r[range]) || (stamp_l[range] && stamp_r[a]);
                if cross && !is_unsat[qa.lhs.index()] {
                    is_unsat[qa.lhs.index()] = true;
                    worklist.push(qa.lhs.0);
                }
            }
            for &p in &preds_lhs {
                stamp_l[p as usize] = false;
            }
            for &p in &preds_rhs {
                stamp_r[p as usize] = false;
            }
        }
    }

    if worklist.is_empty() {
        return UnsatSet {
            is_unsat,
            members: Vec::new(),
        };
    }

    // Index qualified axioms by filler concept node for rule 3.
    let mut qual_by_filler: std::collections::HashMap<u32, Vec<u32>> =
        std::collections::HashMap::new();
    for qa in &g.qual_axioms {
        let filler_node = g.atomic_node(qa.filler);
        qual_by_filler
            .entry(filler_node.0)
            .or_default()
            .push(qa.lhs.0);
    }

    // Propagate to fixpoint.
    while let Some(v) = worklist.pop() {
        let node = NodeId(v);
        // Rule 1: backward propagation along arcs.
        for &p in g.predecessors(node) {
            if !is_unsat[p as usize] {
                is_unsat[p as usize] = true;
                worklist.push(p);
            }
        }
        // Rule 2: cluster propagation.
        let cluster: &[NodeId] = &match g.node_kind(node) {
            NodeKind::Role(p, _) | NodeKind::Exists(p, _) => {
                use obda_dllite::BasicRole::*;
                [
                    g.role_node(Direct(p)),
                    g.role_node(Inverse(p)),
                    g.role_exists_node(Direct(p)),
                    g.role_exists_node(Inverse(p)),
                ]
                .to_vec()
            }
            NodeKind::Attr(u) | NodeKind::AttrDomain(u) => {
                vec![g.attr_node(u), g.attr_domain_node(u)]
            }
            NodeKind::Concept(_) => Vec::new(),
        };
        for &c in cluster {
            if !is_unsat[c.index()] {
                is_unsat[c.index()] = true;
                worklist.push(c.0);
            }
        }
        // Rule 3: an unsatisfiable filler empties its restriction.
        if let Some(lhss) = qual_by_filler.get(&v) {
            for &b in lhss {
                if !is_unsat[b as usize] {
                    is_unsat[b as usize] = true;
                    worklist.push(b);
                }
            }
        }
    }

    let members: Vec<u32> = (0..n as u32).filter(|&v| is_unsat[v as usize]).collect();
    UnsatSet { is_unsat, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    fn unsat_names(src: &str) -> Vec<String> {
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let u = compute_unsat(&g);
        let mut names: Vec<String> = u
            .members()
            .iter()
            .filter_map(|&v| match g.node_kind(NodeId(v)) {
                NodeKind::Concept(a) => Some(t.sig.concept_name(a).to_owned()),
                NodeKind::Role(p, false) => Some(t.sig.role_name(p).to_owned()),
                _ => None,
            })
            .collect();
        names.sort();
        names
    }

    #[test]
    fn no_negative_inclusions_means_all_satisfiable() {
        assert!(unsat_names("concept A B\nA [= B").is_empty());
    }

    #[test]
    fn self_disjointness_is_unsatisfiable() {
        assert_eq!(unsat_names("concept A\nA [= not A"), vec!["A"]);
    }

    #[test]
    fn subsumee_of_disjoint_pair_is_unsatisfiable() {
        // C ⊑ A, C ⊑ B, A ⊑ ¬B  ⟹  C unsat (but not A or B).
        let names = unsat_names("concept A B C\nC [= A\nC [= B\nA [= not B");
        assert_eq!(names, vec!["C"]);
    }

    #[test]
    fn backward_propagation_through_chain() {
        // D ⊑ C ⊑ A⊓B with A,B disjoint ⟹ C and D unsat.
        let names = unsat_names("concept A B C D\nC [= A\nC [= B\nA [= not B\nD [= C");
        assert_eq!(names, vec!["C", "D"]);
    }

    #[test]
    fn role_cluster_propagation() {
        // ∃p ⊑ A, ∃p ⊑ B, A ⊑ ¬B ⟹ ∃p unsat ⟹ p, p⁻, ∃p⁻ unsat.
        let src = "concept A B\nrole p\nexists p [= A\nexists p [= B\nA [= not B";
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let u = compute_unsat(&g);
        let p = t.sig.find_role("p").unwrap();
        use obda_dllite::BasicRole::*;
        assert!(u.contains(g.role_node(Direct(p))));
        assert!(u.contains(g.role_node(Inverse(p))));
        assert!(u.contains(g.role_exists_node(Direct(p))));
        assert!(u.contains(g.role_exists_node(Inverse(p))));
    }

    #[test]
    fn role_disjointness_seeds_roles() {
        // r ⊑ p, r ⊑ s, p ⊑ ¬s ⟹ r unsat.
        let names = unsat_names("role p r s\nr [= p\nr [= s\np [= not s");
        assert_eq!(names, vec!["r"]);
    }

    #[test]
    fn role_disjointness_applies_to_inverses() {
        // r ⊑ p⁻, r ⊑ s⁻, p ⊑ ¬s entails p⁻ ⊑ ¬s⁻, so r unsat.
        let names = unsat_names("role p r s\nr [= inv(p)\nr [= inv(s)\np [= not s");
        assert_eq!(names, vec!["r"]);
    }

    #[test]
    fn unsat_filler_empties_qualified_existential() {
        // B ⊑ ∃q.A with A unsat ⟹ B unsat (and p stays satisfiable-free).
        let src = "concept A B\nrole q\nA [= not A\nB [= exists q . A";
        let names = unsat_names(src);
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn unsat_role_empties_lhs_of_qualified_existential() {
        // q ⊑ ¬q makes q unsat; B ⊑ ∃q.A then makes B unsat via the
        // B → ∃q arc and cluster propagation.
        let src = "concept A B\nrole q\nq [= not q\nB [= exists q . A";
        let names = unsat_names(src);
        assert_eq!(names, vec!["B", "q"]);
    }

    #[test]
    fn attribute_cluster_propagation() {
        // δ(u) ⊑ A, δ(u) ⊑ B, A ⊑ ¬B ⟹ δ(u) unsat ⟹ u unsat, and any
        // concept under δ(u) too.
        let src = "concept A B C\nattribute u\ndomain(u) [= A\ndomain(u) [= B\nA [= not B\nC [= domain(u)";
        let t = parse_tbox(src).unwrap();
        let g = TboxGraph::build(&t);
        let u = compute_unsat(&g);
        let attr = t.sig.find_attribute("u").unwrap();
        let c = t.sig.find_concept("C").unwrap();
        assert!(u.contains(g.attr_node(attr)));
        assert!(u.contains(g.attr_domain_node(attr)));
        assert!(u.contains(g.atomic_node(c)));
    }

    #[test]
    fn satisfiable_ontology_with_negative_inclusions() {
        let names = unsat_names("concept A B C\nA [= not B\nC [= A");
        assert!(names.is_empty());
    }
}
