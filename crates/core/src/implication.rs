//! Graph-based logical implication: deciding `T ⊨ α` for a DL-Lite_R/A
//! axiom `α` directly from the classification artifacts, without
//! materializing the deductive closure (the second research direction of
//! Section 5 of the paper).
//!
//! The decision rules, given the closure `⊑*` (reflexive reachability),
//! the unsatisfiable-node set and the recorded qualified axioms:
//!
//! * `B₁ ⊑ B₂` — `B₁` unsatisfiable, or `B₁ ⊑* B₂`;
//! * `Q₁ ⊑ Q₂` — `Q₁` unsatisfiable, or `Q₁ ⊑* Q₂`;
//! * `B₁ ⊑ ∃Q.A` — `B₁` unsatisfiable, or there is a basic role `Q₀`
//!   with `Q₀ ⊑* Q` such that either
//!   1. `B₁ ⊑* ∃Q₀` and `∃Q₀⁻ ⊑* A` (an unqualified witness whose range
//!      is forced into `A`), or
//!   2. some asserted `B ⊑ ∃Q₀.A₀` has `B₁ ⊑* B` and `A₀ ⊑* A`;
//! * `B₁ ⊑ ¬B₂` — either side unsatisfiable, or some negative inclusion
//!   `S₁ ⊑ ¬S₂` (inverse-expanded) has `{B₁ ⊑* S₁, B₂ ⊑* S₂}` or the
//!   symmetric match (disjointness is symmetric);
//! * role and attribute disjointness — as the previous rule over
//!   role/attribute negative pairs;
//! * `U₁ ⊑ U₂` — `U₁` unsatisfiable or `U₁ ⊑* U₂`.
//!
//! These rules are cross-validated against the independent saturation
//! reasoner and the ALCHI tableau in the workspace test suites.

use obda_dllite::{Axiom, BasicConcept, ConceptId, GeneralConcept, GeneralRole};

use crate::classify::Classification;
use crate::graph::NodeId;

/// Logical-implication service over a finished [`Classification`].
#[derive(Debug, Clone, Copy)]
pub struct Implication<'a> {
    cls: &'a Classification,
}

impl<'a> Implication<'a> {
    /// Wraps a classification.
    pub fn new(cls: &'a Classification) -> Self {
        Implication { cls }
    }

    /// Decides `T ⊨ α`.
    pub fn entails(&self, ax: &Axiom) -> bool {
        let g = self.cls.graph();
        let closure = self.cls.closure();
        let unsat = self.cls.unsat();
        match *ax {
            Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)) => {
                let n1 = g.concept_node(b1);
                unsat.contains(n1) || closure.reaches(n1, g.concept_node(b2))
            }
            Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)) => {
                let n1 = g.concept_node(b1);
                let n2 = g.concept_node(b2);
                if unsat.contains(n1) || unsat.contains(n2) {
                    return true;
                }
                self.neg_match(n1, n2)
            }
            Axiom::ConceptIncl(b1, GeneralConcept::QualExists(q, a)) => {
                self.entails_qual_exists(b1, q, a)
            }
            Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) => {
                let n1 = g.role_node(q1);
                unsat.contains(n1) || closure.reaches(n1, g.role_node(q2))
            }
            Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) => {
                let n1 = g.role_node(q1);
                let n2 = g.role_node(q2);
                if unsat.contains(n1) || unsat.contains(n2) {
                    return true;
                }
                self.neg_match(n1, n2)
            }
            Axiom::AttrIncl(u1, u2) => {
                let n1 = g.attr_node(u1);
                unsat.contains(n1) || closure.reaches(n1, g.attr_node(u2))
            }
            Axiom::AttrNegIncl(u1, u2) => {
                let n1 = g.attr_node(u1);
                let n2 = g.attr_node(u2);
                if unsat.contains(n1) || unsat.contains(n2) {
                    return true;
                }
                self.neg_match(n1, n2)
            }
        }
    }

    /// Whether some (inverse-expanded) negative inclusion covers the pair
    /// `(n1, n2)` in either orientation.
    fn neg_match(&self, n1: NodeId, n2: NodeId) -> bool {
        let g = self.cls.graph();
        let closure = self.cls.closure();
        g.neg_pairs_expanded().iter().any(|np| {
            (closure.reaches(n1, np.lhs) && closure.reaches(n2, np.rhs))
                || (closure.reaches(n1, np.rhs) && closure.reaches(n2, np.lhs))
        })
    }

    /// Decides `T ⊨ B₁ ⊑ ∃Q.A` via the two witness rules.
    fn entails_qual_exists(
        &self,
        b1: BasicConcept,
        q: obda_dllite::BasicRole,
        a: ConceptId,
    ) -> bool {
        let g = self.cls.graph();
        let closure = self.cls.closure();
        let unsat = self.cls.unsat();
        let n1 = g.concept_node(b1);
        if unsat.contains(n1) {
            return true;
        }
        let target_role = g.role_node(q);
        let target_filler = g.atomic_node(a);
        // Rule 1: unqualified witness with forced range.
        for p in 0..g.num_roles() {
            for q0 in [
                obda_dllite::BasicRole::Direct(obda_dllite::RoleId(p)),
                obda_dllite::BasicRole::Inverse(obda_dllite::RoleId(p)),
            ] {
                if !closure.reaches(g.role_node(q0), target_role) {
                    continue;
                }
                if closure.reaches(n1, g.role_exists_node(q0))
                    && closure.reaches(g.role_exists_node(q0.inverse()), target_filler)
                {
                    return true;
                }
            }
        }
        // Rule 2: an asserted qualified existential reached from B₁ whose
        // role and filler are forced under Q and A.
        g.qual_axioms.iter().any(|qa| {
            closure.reaches(n1, qa.lhs)
                && closure.reaches(g.role_node(qa.role), target_role)
                && closure.reaches(g.atomic_node(qa.filler), target_filler)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{parse_tbox, Tbox};

    fn check(src: &str, axiom_src: &str) -> bool {
        let t = parse_tbox(src).unwrap();
        // Parse the probe axiom in the context of the same declarations by
        // re-parsing declarations plus the probe line.
        let decls: String = src
            .lines()
            .filter(|l| {
                let l = l.trim_start();
                l.starts_with("concept") || l.starts_with("role") || l.starts_with("attribute")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let probe: Tbox = parse_tbox(&format!("{decls}\n{axiom_src}")).unwrap();
        assert_eq!(probe.sig, t.sig, "probe must not extend the signature");
        let cls = Classification::classify(&t);
        Implication::new(&cls).entails(&probe.axioms()[0])
    }

    #[test]
    fn basic_inclusion_via_reachability() {
        let src = "concept A B C\nA [= B\nB [= C";
        assert!(check(src, "A [= C"));
        assert!(!check(src, "C [= A"));
        assert!(check(src, "A [= A"));
    }

    #[test]
    fn negative_inclusion_is_symmetric_and_propagates() {
        let src = "concept A B C D\nA [= not B\nC [= A\nD [= B";
        assert!(check(src, "C [= not D"));
        assert!(check(src, "D [= not C"));
        assert!(check(src, "B [= not A"));
        assert!(!check(src, "A [= not C"));
    }

    #[test]
    fn qualified_existential_from_asserted_axiom() {
        let src = "concept A B B2\nrole q r\nA [= exists q . B\nB [= B2\nq [= r";
        // Weakenings of the asserted axiom are entailed.
        assert!(check(src, "A [= exists q . B"));
        assert!(check(src, "A [= exists q . B2"));
        assert!(check(src, "A [= exists r . B"));
        assert!(check(src, "A [= exists r . B2"));
        assert!(!check(src, "B [= exists q . A"));
        assert!(!check(src, "A [= exists inv(q) . B"));
    }

    #[test]
    fn qualified_existential_via_range_forcing() {
        // A ⊑ ∃q and ∃q⁻ ⊑ B force every q-successor of an A into B.
        let src = "concept A B\nrole q\nA [= exists q\nexists inv(q) [= B";
        assert!(check(src, "A [= exists q . B"));
        assert!(!check(src, "B [= exists q . B"));
    }

    #[test]
    fn qualified_existential_via_subrole_range() {
        // A ⊑ ∃q₀, ∃q₀⁻ ⊑ B, q₀ ⊑ q entails A ⊑ ∃q.B.
        let src = "concept A B\nrole q q0\nA [= exists q0\nexists inv(q0) [= B\nq0 [= q";
        assert!(check(src, "A [= exists q . B"));
    }

    #[test]
    fn unsat_lhs_entails_anything() {
        let src = "concept A B C\nrole q\nA [= B\nA [= C\nB [= not C";
        assert!(check(src, "A [= exists q . B"));
        assert!(check(src, "A [= not A"));
        assert!(check(src, "A [= exists inv(q)"));
    }

    #[test]
    fn role_disjointness_with_inverse_expansion() {
        let src = "role p r s\np [= not r\ns [= inv(p)";
        // s ⊑ p⁻ and p ⊑ ¬r entails p⁻ ⊑ ¬r⁻, so s ⊑ ¬r⁻.
        assert!(check(src, "s [= not inv(r)"));
        assert!(!check(src, "s [= not r"));
    }

    #[test]
    fn attribute_entailments() {
        let src = "attribute u w z\nu [= w\nw [= not z";
        assert!(check(src, "u [= w"));
        assert!(check(src, "u [= not z"));
        assert!(check(src, "z [= not u"));
        assert!(!check(src, "w [= u"));
    }
}
