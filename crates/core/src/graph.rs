//! The digraph representation of a DL-Lite_R/A TBox (Definition 1 of the
//! paper).
//!
//! Every *basic* expression of the TBox signature becomes a node:
//!
//! * one node per atomic concept `A`;
//! * four nodes per atomic role `P`: `P`, `P⁻`, `∃P`, `∃P⁻`;
//! * two nodes per attribute `U`: `U` and its domain `δ(U)` (the DL-Lite_A
//!   extension of the paper's construction).
//!
//! Every *positive inclusion* becomes one or more arcs:
//!
//! * `B₁ ⊑ B₂` → arc `(B₁, B₂)`;
//! * `Q₁ ⊑ Q₂` → arcs `(Q₁, Q₂)`, `(Q₁⁻, Q₂⁻)`, `(∃Q₁, ∃Q₂)`,
//!   `(∃Q₁⁻, ∃Q₂⁻)`;
//! * `B ⊑ ∃Q.A` → arc `(B, ∃Q)` (the qualified existential weakens to its
//!   unqualified form; the qualifier is kept aside in
//!   [`TboxGraph::qual_axioms`] for `computeUnsat` and the full closure);
//! * `U₁ ⊑ U₂` → arcs `(U₁, U₂)`, `(δ(U₁), δ(U₂))`.
//!
//! Negative inclusions contribute no arcs; they are collected in
//! [`TboxGraph::neg_pairs`] for `computeUnsat`.
//!
//! Arcs never cross sorts: concept-sort nodes (`A`, `∃Q`, `δ(U)`) only
//! point to concept-sort nodes, role-sort nodes to role-sort nodes and
//! attribute nodes to attribute nodes. This invariant is what lets
//! Theorem 1 read subsumptions directly off the reachability relation.

use obda_dllite::{AttributeId, ConceptId, RoleId};
use obda_dllite::{Axiom, BasicConcept, BasicRole, GeneralConcept, GeneralRole, Tbox};

/// A node of the digraph, identified by a dense index (see
/// [`TboxGraph::node_id`] for the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Decoded meaning of a [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Atomic concept `A`.
    Concept(ConceptId),
    /// Basic role `P` (`inverse == false`) or `P⁻` (`inverse == true`).
    Role(RoleId, bool),
    /// Unqualified existential `∃P` / `∃P⁻`.
    Exists(RoleId, bool),
    /// Attribute `U`.
    Attr(AttributeId),
    /// Attribute domain `δ(U)`.
    AttrDomain(AttributeId),
}

/// Sort of a node; arcs never cross sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeSort {
    /// Concept-sort: `A`, `∃Q`, `δ(U)`.
    Concept,
    /// Role-sort: `Q`.
    Role,
    /// Attribute-sort: `U`.
    Attr,
}

/// A qualified existential axiom `B ⊑ ∃Q.A`, kept alongside the graph
/// because its qualifier is invisible to pure reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualAxiom {
    /// Node of the left-hand side `B`.
    pub lhs: NodeId,
    /// The basic role `Q` of the restriction.
    pub role: BasicRole,
    /// The atomic qualifier concept `A`.
    pub filler: ConceptId,
}

/// A negative inclusion `S₁ ⊑ ¬S₂` as a pair of (same-sort) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegPair {
    /// Node of `S₁`.
    pub lhs: NodeId,
    /// Node of `S₂`.
    pub rhs: NodeId,
}

/// The digraph representation `G_T` of a TBox (Definition 1).
#[derive(Debug, Clone)]
pub struct TboxGraph {
    num_concepts: u32,
    num_roles: u32,
    num_attributes: u32,
    /// Forward adjacency lists (deduplicated, unsorted).
    succ: Vec<Vec<u32>>,
    /// Reverse adjacency lists (deduplicated, unsorted).
    pred: Vec<Vec<u32>>,
    /// All `B ⊑ ∃Q.A` axioms.
    pub qual_axioms: Vec<QualAxiom>,
    /// All negative inclusions as node pairs. Role disjointness
    /// `Q₁ ⊑ ¬Q₂` is recorded once; its inverse variant `Q₁⁻ ⊑ ¬Q₂⁻`
    /// is implicit and handled by consumers through
    /// [`TboxGraph::neg_pairs_expanded`].
    pub neg_pairs: Vec<NegPair>,
    num_edges: usize,
}

impl TboxGraph {
    /// Builds the digraph representation of `tbox` per Definition 1.
    pub fn build(tbox: &Tbox) -> Self {
        let nc = tbox.sig.num_concepts() as u32;
        let nr = tbox.sig.num_roles() as u32;
        let na = tbox.sig.num_attributes() as u32;
        let n = (nc + 4 * nr + 2 * na) as usize;
        let mut g = TboxGraph {
            num_concepts: nc,
            num_roles: nr,
            num_attributes: na,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            qual_axioms: Vec::new(),
            neg_pairs: Vec::new(),
            num_edges: 0,
        };
        for ax in tbox.axioms() {
            match *ax {
                Axiom::ConceptIncl(lhs, rhs) => {
                    let l = g.concept_node(lhs);
                    match rhs {
                        GeneralConcept::Basic(b) => g.add_edge(l, g.concept_node(b)),
                        GeneralConcept::Neg(b) => {
                            let r = g.concept_node(b);
                            g.neg_pairs.push(NegPair { lhs: l, rhs: r });
                        }
                        GeneralConcept::QualExists(q, a) => {
                            g.add_edge(l, g.role_exists_node(q));
                            g.qual_axioms.push(QualAxiom {
                                lhs: l,
                                role: q,
                                filler: a,
                            });
                        }
                    }
                }
                Axiom::RoleIncl(q1, rhs) => match rhs {
                    GeneralRole::Basic(q2) => {
                        g.add_edge(g.role_node(q1), g.role_node(q2));
                        g.add_edge(g.role_node(q1.inverse()), g.role_node(q2.inverse()));
                        g.add_edge(g.role_exists_node(q1), g.role_exists_node(q2));
                        g.add_edge(
                            g.role_exists_node(q1.inverse()),
                            g.role_exists_node(q2.inverse()),
                        );
                    }
                    GeneralRole::Neg(q2) => {
                        g.neg_pairs.push(NegPair {
                            lhs: g.role_node(q1),
                            rhs: g.role_node(q2),
                        });
                    }
                },
                Axiom::AttrIncl(u1, u2) => {
                    g.add_edge(g.attr_node(u1), g.attr_node(u2));
                    g.add_edge(g.attr_domain_node(u1), g.attr_domain_node(u2));
                }
                Axiom::AttrNegIncl(u1, u2) => {
                    g.neg_pairs.push(NegPair {
                        lhs: g.attr_node(u1),
                        rhs: g.attr_node(u2),
                    });
                }
            }
        }
        g.dedup_edges();
        g
    }

    /// Inserts a single axiom into an already-built graph, returning the
    /// (deduplicated) new arcs — the entry point of incremental
    /// classification. The axiom must range over the existing signature.
    pub fn insert_axiom(&mut self, ax: &Axiom) -> Vec<(NodeId, NodeId)> {
        let mut new_edges = Vec::new();
        let add = |g: &mut Self, from: NodeId, to: NodeId, out: &mut Vec<(NodeId, NodeId)>| {
            if from == to || g.succ[from.index()].contains(&to.0) {
                return;
            }
            g.succ[from.index()].push(to.0);
            g.pred[to.index()].push(from.0);
            g.num_edges += 1;
            out.push((from, to));
        };
        match *ax {
            Axiom::ConceptIncl(lhs, rhs) => {
                let l = self.concept_node(lhs);
                match rhs {
                    GeneralConcept::Basic(b) => {
                        let r = self.concept_node(b);
                        add(self, l, r, &mut new_edges);
                    }
                    GeneralConcept::Neg(b) => {
                        let r = self.concept_node(b);
                        let np = NegPair { lhs: l, rhs: r };
                        if !self.neg_pairs.contains(&np) {
                            self.neg_pairs.push(np);
                        }
                    }
                    GeneralConcept::QualExists(q, a) => {
                        let r = self.role_exists_node(q);
                        add(self, l, r, &mut new_edges);
                        let qa = QualAxiom {
                            lhs: l,
                            role: q,
                            filler: a,
                        };
                        if !self.qual_axioms.contains(&qa) {
                            self.qual_axioms.push(qa);
                        }
                    }
                }
            }
            Axiom::RoleIncl(q1, rhs) => match rhs {
                GeneralRole::Basic(q2) => {
                    let pairs = [
                        (self.role_node(q1), self.role_node(q2)),
                        (self.role_node(q1.inverse()), self.role_node(q2.inverse())),
                        (self.role_exists_node(q1), self.role_exists_node(q2)),
                        (
                            self.role_exists_node(q1.inverse()),
                            self.role_exists_node(q2.inverse()),
                        ),
                    ];
                    for (f, t) in pairs {
                        add(self, f, t, &mut new_edges);
                    }
                }
                GeneralRole::Neg(q2) => {
                    let np = NegPair {
                        lhs: self.role_node(q1),
                        rhs: self.role_node(q2),
                    };
                    if !self.neg_pairs.contains(&np) {
                        self.neg_pairs.push(np);
                    }
                }
            },
            Axiom::AttrIncl(u1, u2) => {
                let pairs = [
                    (self.attr_node(u1), self.attr_node(u2)),
                    (self.attr_domain_node(u1), self.attr_domain_node(u2)),
                ];
                for (f, t) in pairs {
                    add(self, f, t, &mut new_edges);
                }
            }
            Axiom::AttrNegIncl(u1, u2) => {
                let np = NegPair {
                    lhs: self.attr_node(u1),
                    rhs: self.attr_node(u2),
                };
                if !self.neg_pairs.contains(&np) {
                    self.neg_pairs.push(np);
                }
            }
        }
        new_edges
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if from == to {
            // Tautological S ⊑ S arcs carry no information and would make
            // the closure engines disagree on self-reachability.
            return;
        }
        self.succ[from.index()].push(to.0);
        self.pred[to.index()].push(from.0);
        self.num_edges += 1;
    }

    fn dedup_edges(&mut self) {
        let mut removed = 0usize;
        for list in self.succ.iter_mut().chain(self.pred.iter_mut()) {
            let before = list.len();
            list.sort_unstable();
            list.dedup();
            removed += before - list.len();
        }
        // Each duplicate edge was counted once in succ and once in pred.
        self.num_edges -= removed / 2;
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.succ.len()
    }

    /// Number of distinct arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Direct successors of a node.
    #[inline]
    pub fn successors(&self, n: NodeId) -> &[u32] {
        &self.succ[n.index()]
    }

    /// Direct predecessors of a node.
    #[inline]
    pub fn predecessors(&self, n: NodeId) -> &[u32] {
        &self.pred[n.index()]
    }

    /// Node of an atomic concept.
    #[inline]
    pub fn atomic_node(&self, a: ConceptId) -> NodeId {
        NodeId(a.0)
    }

    /// Node of a basic role.
    #[inline]
    pub fn role_node(&self, q: BasicRole) -> NodeId {
        let base = self.num_concepts + 4 * q.role().0;
        NodeId(base + q.is_inverse() as u32)
    }

    /// Node of the unqualified existential `∃Q`.
    #[inline]
    pub fn role_exists_node(&self, q: BasicRole) -> NodeId {
        let base = self.num_concepts + 4 * q.role().0;
        NodeId(base + 2 + q.is_inverse() as u32)
    }

    /// Node of an attribute.
    #[inline]
    pub fn attr_node(&self, u: AttributeId) -> NodeId {
        NodeId(self.num_concepts + 4 * self.num_roles + 2 * u.0)
    }

    /// Node of an attribute domain `δ(U)`.
    #[inline]
    pub fn attr_domain_node(&self, u: AttributeId) -> NodeId {
        NodeId(self.num_concepts + 4 * self.num_roles + 2 * u.0 + 1)
    }

    /// Node of any basic concept.
    pub fn concept_node(&self, b: BasicConcept) -> NodeId {
        match b {
            BasicConcept::Atomic(a) => self.atomic_node(a),
            BasicConcept::Exists(q) => self.role_exists_node(q),
            BasicConcept::AttrDomain(u) => self.attr_domain_node(u),
        }
    }

    /// Decodes a node id back to its meaning.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        let i = n.0;
        if i < self.num_concepts {
            NodeKind::Concept(ConceptId(i))
        } else if i < self.num_concepts + 4 * self.num_roles {
            let off = i - self.num_concepts;
            let p = RoleId(off / 4);
            match off % 4 {
                0 => NodeKind::Role(p, false),
                1 => NodeKind::Role(p, true),
                2 => NodeKind::Exists(p, false),
                _ => NodeKind::Exists(p, true),
            }
        } else {
            let off = i - self.num_concepts - 4 * self.num_roles;
            let u = AttributeId(off / 2);
            if off.is_multiple_of(2) {
                NodeKind::Attr(u)
            } else {
                NodeKind::AttrDomain(u)
            }
        }
    }

    /// Sort of a node.
    pub fn node_sort(&self, n: NodeId) -> NodeSort {
        match self.node_kind(n) {
            NodeKind::Concept(_) | NodeKind::Exists(_, _) | NodeKind::AttrDomain(_) => {
                NodeSort::Concept
            }
            NodeKind::Role(_, _) => NodeSort::Role,
            NodeKind::Attr(_) => NodeSort::Attr,
        }
    }

    /// The basic-role value of a role-sort node.
    ///
    /// # Panics
    /// Panics if `n` is not a role-sort node.
    pub fn node_as_role(&self, n: NodeId) -> BasicRole {
        match self.node_kind(n) {
            NodeKind::Role(p, false) => BasicRole::Direct(p),
            NodeKind::Role(p, true) => BasicRole::Inverse(p),
            other => panic!("node {n:?} is not a role node: {other:?}"),
        }
    }

    /// The basic-concept value of a concept-sort node.
    ///
    /// # Panics
    /// Panics if `n` is not a concept-sort node.
    pub fn node_as_concept(&self, n: NodeId) -> BasicConcept {
        match self.node_kind(n) {
            NodeKind::Concept(a) => BasicConcept::Atomic(a),
            NodeKind::Exists(p, false) => BasicConcept::exists(p),
            NodeKind::Exists(p, true) => BasicConcept::exists_inv(p),
            NodeKind::AttrDomain(u) => BasicConcept::AttrDomain(u),
            other => panic!("node {n:?} is not a concept node: {other:?}"),
        }
    }

    /// All negative inclusions, with the implicit inverse variant of each
    /// role disjointness (`Q₁ ⊑ ¬Q₂ ⊨ Q₁⁻ ⊑ ¬Q₂⁻`) made explicit.
    pub fn neg_pairs_expanded(&self) -> Vec<NegPair> {
        let mut out = Vec::with_capacity(self.neg_pairs.len() * 2);
        for &np in &self.neg_pairs {
            out.push(np);
            if self.node_sort(np.lhs) == NodeSort::Role {
                let q1 = self.node_as_role(np.lhs).inverse();
                let q2 = self.node_as_role(np.rhs).inverse();
                out.push(NegPair {
                    lhs: self.role_node(q1),
                    rhs: self.role_node(q2),
                });
            }
        }
        out
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Number of atomic concepts in the underlying signature.
    pub fn num_concepts(&self) -> u32 {
        self.num_concepts
    }

    /// Number of atomic roles in the underlying signature.
    pub fn num_roles(&self) -> u32 {
        self.num_roles
    }

    /// Number of attributes in the underlying signature.
    pub fn num_attributes(&self) -> u32 {
        self.num_attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    #[test]
    fn node_encoding_roundtrips() {
        let t = parse_tbox("concept A B\nrole p r\nattribute u\nA [= B").unwrap();
        let g = TboxGraph::build(&t);
        for n in g.nodes() {
            let kind = g.node_kind(n);
            let back = match kind {
                NodeKind::Concept(a) => g.atomic_node(a),
                NodeKind::Role(p, inv) => g.role_node(if inv {
                    BasicRole::Inverse(p)
                } else {
                    BasicRole::Direct(p)
                }),
                NodeKind::Exists(p, inv) => g.role_exists_node(if inv {
                    BasicRole::Inverse(p)
                } else {
                    BasicRole::Direct(p)
                }),
                NodeKind::Attr(u) => g.attr_node(u),
                NodeKind::AttrDomain(u) => g.attr_domain_node(u),
            };
            assert_eq!(n, back);
        }
        // 2 concepts + 4*2 role nodes + 2 attr nodes.
        assert_eq!(g.num_nodes(), 12);
    }

    #[test]
    fn role_inclusion_expands_to_four_arcs() {
        let t = parse_tbox("role p r\np [= r").unwrap();
        let g = TboxGraph::build(&t);
        assert_eq!(g.num_edges(), 4);
        let p = t.sig.find_role("p").unwrap();
        let r = t.sig.find_role("r").unwrap();
        let pd = BasicRole::Direct(p);
        let rd = BasicRole::Direct(r);
        assert!(g.successors(g.role_node(pd)).contains(&g.role_node(rd).0));
        assert!(g
            .successors(g.role_node(pd.inverse()))
            .contains(&g.role_node(rd.inverse()).0));
        assert!(g
            .successors(g.role_exists_node(pd))
            .contains(&g.role_exists_node(rd).0));
        assert!(g
            .successors(g.role_exists_node(pd.inverse()))
            .contains(&g.role_exists_node(rd.inverse()).0));
    }

    #[test]
    fn qualified_existential_contributes_arc_and_record() {
        let t = parse_tbox("concept A B\nrole p\nA [= exists p . B").unwrap();
        let g = TboxGraph::build(&t);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.qual_axioms.len(), 1);
        let a = t.sig.find_concept("A").unwrap();
        let p = t.sig.find_role("p").unwrap();
        let q = g.qual_axioms[0];
        assert_eq!(q.lhs, g.atomic_node(a));
        assert_eq!(q.role, BasicRole::Direct(p));
        assert!(g
            .successors(g.atomic_node(a))
            .contains(&g.role_exists_node(BasicRole::Direct(p)).0));
    }

    #[test]
    fn negative_inclusions_are_not_arcs() {
        let t = parse_tbox("concept A B\nA [= not B").unwrap();
        let g = TboxGraph::build(&t);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neg_pairs.len(), 1);
    }

    #[test]
    fn role_disjointness_expands_inverse_variant() {
        let t = parse_tbox("role p r\np [= not r").unwrap();
        let g = TboxGraph::build(&t);
        let expanded = g.neg_pairs_expanded();
        assert_eq!(expanded.len(), 2);
        let p = t.sig.find_role("p").unwrap();
        assert_eq!(g.node_as_role(expanded[1].lhs), BasicRole::Inverse(p));
    }

    #[test]
    fn duplicate_axioms_yield_single_arc() {
        // Same arc contributed by two different axioms.
        let t = parse_tbox("concept A B\nrole p\nA [= exists p . B\nA [= exists p").unwrap();
        let g = TboxGraph::build(&t);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn arcs_stay_within_sort() {
        let t = parse_tbox(
            "concept A B\nrole p r\nattribute u w\nA [= B\np [= r\nu [= w\nA [= exists p\ndomain(u) [= A",
        )
        .unwrap();
        let g = TboxGraph::build(&t);
        for n in g.nodes() {
            for &s in g.successors(n) {
                assert_eq!(g.node_sort(n), g.node_sort(NodeId(s)));
            }
        }
    }
}
