//! The finite deductive closure of a DL-Lite_R/A TBox — "all inclusions
//! that are inferred by the TBox", the extension the paper describes as
//! work in progress at the end of Section 5.
//!
//! The closure of a DL-Lite TBox is finite because the axiom language is
//! closed: only finitely many inclusions are expressible over a fixed
//! signature. We materialize it in three groups:
//!
//! * **basic positive inclusions** — exactly `Φ_T` plus, optionally, the
//!   subsumptions contributed by unsatisfiable predicates (`Ω_T`);
//! * **qualified existential inclusions** `B ⊑ ∃Q.A` — derived from the
//!   same two witness rules used by [`crate::implication`], enumerated
//!   constructively instead of tested per-candidate;
//! * **negative inclusions** — the pairwise products of the reflexive
//!   predecessor sets of each asserted negative inclusion's endpoints,
//!   both orientations.
//!
//! Materializing `Ω_T`-induced inclusions is quadratic in the number of
//! unsatisfiable predicates times the signature size, so it is opt-in via
//! [`ClosureOptions::include_unsat_subsumptions`].

use std::collections::HashSet;

use obda_dllite::{Axiom, GeneralConcept, GeneralRole};

use crate::classify::Classification;
use crate::closure::predecessors_reflexive;
use crate::graph::{NodeId, NodeKind, NodeSort};
use crate::phi::compute_phi;

/// Options controlling how much of the deductive closure is materialized.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosureOptions {
    /// Also emit the subsumptions `S ⊑ S'` and disjointness `S ⊑ ¬S'`
    /// that hold solely because `S` is unsatisfiable. Off by default —
    /// these are trivial and quadratic in volume.
    pub include_unsat_subsumptions: bool,
}

/// Computes the deductive closure of the TBox behind `cls`, deduplicated,
/// in deterministic order.
pub fn deductive_closure(cls: &Classification, opts: ClosureOptions) -> Vec<Axiom> {
    let g = cls.graph();
    let closure = cls.closure();
    let unsat = cls.unsat();
    let mut seen: HashSet<Axiom> = HashSet::new();
    let mut out: Vec<Axiom> = Vec::new();
    let push = |ax: Axiom, seen: &mut HashSet<Axiom>, out: &mut Vec<Axiom>| {
        if seen.insert(ax) {
            out.push(ax);
        }
    };

    // Group 1: Φ_T (skips unsatisfiable left-hand sides when they will be
    // covered by the unsat group, keeps them otherwise — Φ_T is defined
    // over the positive part regardless of satisfiability).
    for ax in compute_phi(g, closure) {
        push(ax, &mut seen, &mut out);
    }

    // Group 2: qualified existential inclusions.
    // Rule 1: for each basic role Q₀, every B₁ ⊑* ∃Q₀, every Q ⊒* Q₀,
    // every atomic A ⊒* ∃Q₀⁻ yields B₁ ⊑ ∃Q.A.
    let basic_roles: Vec<obda_dllite::BasicRole> = (0..g.num_roles())
        .flat_map(|p| {
            [
                obda_dllite::BasicRole::Direct(obda_dllite::RoleId(p)),
                obda_dllite::BasicRole::Inverse(obda_dllite::RoleId(p)),
            ]
        })
        .collect();
    for &q0 in &basic_roles {
        let exists_node = g.role_exists_node(q0);
        let range_node = g.role_exists_node(q0.inverse());
        let fillers: Vec<obda_dllite::ConceptId> = closure
            .successors(range_node)
            .iter()
            .filter_map(|&v| match g.node_kind(NodeId(v)) {
                NodeKind::Concept(a) => Some(a),
                _ => None,
            })
            .collect();
        if fillers.is_empty() {
            continue;
        }
        let mut supers: Vec<obda_dllite::BasicRole> = vec![q0];
        supers.extend(closure.successors(g.role_node(q0)).iter().filter_map(|&v| {
            match g.node_kind(NodeId(v)) {
                NodeKind::Role(p, inv) => Some(if inv {
                    obda_dllite::BasicRole::Inverse(p)
                } else {
                    obda_dllite::BasicRole::Direct(p)
                }),
                _ => None,
            }
        }));
        supers.dedup();
        for lhs_id in predecessors_reflexive(g, exists_node) {
            let lhs_node = NodeId(lhs_id);
            if g.node_sort(lhs_node) != NodeSort::Concept {
                continue;
            }
            let lhs = g.node_as_concept(lhs_node);
            for &q in &supers {
                for &a in &fillers {
                    push(
                        Axiom::ConceptIncl(lhs, GeneralConcept::QualExists(q, a)),
                        &mut seen,
                        &mut out,
                    );
                }
            }
        }
    }
    // Rule 2: weaken each asserted B ⊑ ∃Q₀.A₀ along all three positions.
    for qa in &g.qual_axioms {
        let mut supers: Vec<obda_dllite::BasicRole> = vec![qa.role];
        supers.extend(
            closure
                .successors(g.role_node(qa.role))
                .iter()
                .filter_map(|&v| match g.node_kind(NodeId(v)) {
                    NodeKind::Role(p, inv) => Some(if inv {
                        obda_dllite::BasicRole::Inverse(p)
                    } else {
                        obda_dllite::BasicRole::Direct(p)
                    }),
                    _ => None,
                }),
        );
        supers.dedup();
        let mut fillers: Vec<obda_dllite::ConceptId> = vec![qa.filler];
        fillers.extend(
            closure
                .successors(g.atomic_node(qa.filler))
                .iter()
                .filter_map(|&v| match g.node_kind(NodeId(v)) {
                    NodeKind::Concept(a) => Some(a),
                    _ => None,
                }),
        );
        fillers.dedup();
        for lhs_id in predecessors_reflexive(g, qa.lhs) {
            let lhs_node = NodeId(lhs_id);
            if g.node_sort(lhs_node) != NodeSort::Concept {
                continue;
            }
            let lhs = g.node_as_concept(lhs_node);
            for &q in &supers {
                for &a in &fillers {
                    push(
                        Axiom::ConceptIncl(lhs, GeneralConcept::QualExists(q, a)),
                        &mut seen,
                        &mut out,
                    );
                }
            }
        }
    }

    // Group 3: negative inclusions from asserted NI endpoints.
    for np in g.neg_pairs_expanded() {
        let lefts = predecessors_reflexive(g, np.lhs);
        let rights = predecessors_reflexive(g, np.rhs);
        for &l in &lefts {
            for &r in &rights {
                let (ln, rn) = (NodeId(l), NodeId(r));
                for (s1, s2) in [(ln, rn), (rn, ln)] {
                    let ax = match g.node_sort(s1) {
                        NodeSort::Concept => Axiom::ConceptIncl(
                            g.node_as_concept(s1),
                            GeneralConcept::Neg(g.node_as_concept(s2)),
                        ),
                        NodeSort::Role => Axiom::RoleIncl(
                            g.node_as_role(s1),
                            GeneralRole::Neg(g.node_as_role(s2)),
                        ),
                        NodeSort::Attr => match (g.node_kind(s1), g.node_kind(s2)) {
                            (NodeKind::Attr(u1), NodeKind::Attr(u2)) => Axiom::AttrNegIncl(u1, u2),
                            other => unreachable!("attr NI over {other:?}"),
                        },
                    };
                    push(ax, &mut seen, &mut out);
                }
            }
        }
    }

    // Optional group: subsumptions contributed by unsatisfiable nodes.
    if opts.include_unsat_subsumptions {
        for &v in unsat.members() {
            let n = NodeId(v);
            for m in g.nodes() {
                if g.node_sort(m) != g.node_sort(n) {
                    continue;
                }
                let (pos, neg, neg_rev) = match g.node_sort(n) {
                    NodeSort::Concept => {
                        let (b1, b2) = (g.node_as_concept(n), g.node_as_concept(m));
                        (
                            Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)),
                            Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)),
                            Axiom::ConceptIncl(b2, GeneralConcept::Neg(b1)),
                        )
                    }
                    NodeSort::Role => {
                        let (q1, q2) = (g.node_as_role(n), g.node_as_role(m));
                        (
                            Axiom::RoleIncl(q1, GeneralRole::Basic(q2)),
                            Axiom::RoleIncl(q1, GeneralRole::Neg(q2)),
                            Axiom::RoleIncl(q2, GeneralRole::Neg(q1)),
                        )
                    }
                    NodeSort::Attr => match (g.node_kind(n), g.node_kind(m)) {
                        (NodeKind::Attr(u1), NodeKind::Attr(u2)) => (
                            Axiom::AttrIncl(u1, u2),
                            Axiom::AttrNegIncl(u1, u2),
                            Axiom::AttrNegIncl(u2, u1),
                        ),
                        other => unreachable!("attr pair over {other:?}"),
                    },
                };
                if m != n {
                    // S ⊑ S is trivially true and never materialized; the
                    // self *negative* pair S ⊑ ¬S below is the canonical
                    // witness of unsatisfiability and is kept.
                    push(pos, &mut seen, &mut out);
                    // Disjointness with the empty predicate holds in both
                    // orientations.
                    push(neg_rev, &mut seen, &mut out);
                }
                push(neg, &mut seen, &mut out);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::Implication;
    use obda_dllite::parse_tbox;

    fn closure_axioms(src: &str, opts: ClosureOptions) -> (obda_dllite::Tbox, Vec<Axiom>) {
        let t = parse_tbox(src).unwrap();
        let cls = Classification::classify(&t);
        let out = deductive_closure(&cls, opts);
        (t, out)
    }

    #[test]
    fn closure_axioms_are_all_entailed() {
        let src = "concept A B C\nrole p q\nA [= B\nB [= exists p . C\np [= q\nA [= not C";
        let t = parse_tbox(src).unwrap();
        let cls = Classification::classify(&t);
        let imp = Implication::new(&cls);
        for ax in deductive_closure(&cls, ClosureOptions::default()) {
            assert!(imp.entails(&ax), "{ax:?} not entailed");
        }
    }

    #[test]
    fn qualified_weakenings_appear() {
        let src = "concept A B C C2\nrole p q\nA [= B\nB [= exists p . C\nC [= C2\np [= q";
        let (t, axs) = closure_axioms(src, ClosureOptions::default());
        let a = t.sig.find_concept("A").unwrap();
        let c2 = t.sig.find_concept("C2").unwrap();
        let q = t.sig.find_role("q").unwrap();
        let want = Axiom::ConceptIncl(
            a.into(),
            GeneralConcept::QualExists(obda_dllite::BasicRole::Direct(q), c2),
        );
        assert!(axs.contains(&want), "missing A ⊑ ∃q.C2");
    }

    #[test]
    fn range_forcing_rule_appears() {
        let src = "concept A B\nrole p\nA [= exists p\nexists inv(p) [= B";
        let (t, axs) = closure_axioms(src, ClosureOptions::default());
        let a = t.sig.find_concept("A").unwrap();
        let b = t.sig.find_concept("B").unwrap();
        let p = t.sig.find_role("p").unwrap();
        let want = Axiom::ConceptIncl(
            a.into(),
            GeneralConcept::QualExists(obda_dllite::BasicRole::Direct(p), b),
        );
        assert!(axs.contains(&want));
    }

    #[test]
    fn negative_closure_is_symmetric() {
        let src = "concept A B C\nA [= not B\nC [= A";
        let (t, axs) = closure_axioms(src, ClosureOptions::default());
        let b = t.sig.find_concept("B").unwrap();
        let c = t.sig.find_concept("C").unwrap();
        assert!(axs.contains(&Axiom::concept_neg(c, b)));
        assert!(axs.contains(&Axiom::concept_neg(b, c)));
    }

    #[test]
    fn unsat_subsumptions_are_opt_in() {
        let src = "concept A B C D\nA [= B\nA [= C\nB [= not C";
        let (t, default_axs) = closure_axioms(src, ClosureOptions::default());
        let (_, full_axs) = closure_axioms(
            src,
            ClosureOptions {
                include_unsat_subsumptions: true,
            },
        );
        let a = t.sig.find_concept("A").unwrap();
        let b = t.sig.find_concept("B").unwrap();
        let d = t.sig.find_concept("D").unwrap();
        assert!(default_axs.contains(&Axiom::concept(a, b)));
        // A ⊑ ¬A *is* in the default closure: it follows from the asserted
        // disjointness B ⊑ ¬C through A ⊑ B, A ⊑ C.
        assert!(default_axs.contains(&Axiom::concept_neg(a, a)));
        // A ⊑ D, however, holds solely because A is unsatisfiable: D is
        // unreachable from A in the digraph.
        let only_unsat = Axiom::concept(a, d);
        assert!(!default_axs.contains(&only_unsat));
        assert!(full_axs.contains(&only_unsat));
        assert!(full_axs.len() > default_axs.len());
    }

    #[test]
    fn closure_of_empty_tbox_is_empty() {
        let (_, axs) = closure_axioms("concept A B\nrole p", ClosureOptions::default());
        assert!(axs.is_empty());
    }

    #[test]
    fn no_duplicates() {
        let src = "concept A B C\nrole p q\nA [= B\nB [= exists p . C\np [= q\nA [= not C";
        let (_, axs) = closure_axioms(src, ClosureOptions::default());
        let set: std::collections::HashSet<_> = axs.iter().collect();
        assert_eq!(set.len(), axs.len());
    }
}
