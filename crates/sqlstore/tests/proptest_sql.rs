//! Property-based tests of the SQL engine: planner transformations
//! (filter pushdown, index access paths) must never change results, and
//! the algebra must obey its laws against a naive reference evaluation.

use obda_sqlstore::{Database, Row, SqlValue};
use proptest::prelude::*;

prop_compose! {
    fn arb_row()(a in -5i64..5, b in -5i64..5, s in 0..4usize) -> (i64, i64, String) {
        (a, b, format!("s{s}"))
    }
}

fn db_with(rows: &[(i64, i64, String)], rows2: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT, s TEXT)").unwrap();
    db.execute("CREATE TABLE u (a INT, c INT)").unwrap();
    for (a, b, s) in rows {
        db.insert(
            "t",
            vec![
                SqlValue::Int(*a),
                SqlValue::Int(*b),
                SqlValue::Text(s.clone()),
            ],
        )
        .unwrap();
    }
    for (a, c) in rows2 {
        db.insert("u", vec![SqlValue::Int(*a), SqlValue::Int(*c)])
            .unwrap();
    }
    db
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

proptest! {
    #[test]
    fn where_filter_equals_manual_filter(
        rows in proptest::collection::vec(arb_row(), 0..30),
        threshold in -5i64..5,
    ) {
        let db = db_with(&rows, &[]);
        let filtered = db
            .query(&format!("SELECT a, b FROM t WHERE a >= {threshold}"))
            .unwrap();
        let all = db.query("SELECT a, b FROM t").unwrap();
        let manual: Vec<Row> = all
            .rows
            .into_iter()
            .filter(|r| matches!(r[0], SqlValue::Int(v) if v >= threshold))
            .collect();
        prop_assert_eq!(sorted(filtered.rows), sorted(manual));
    }

    #[test]
    fn index_never_changes_results(
        rows in proptest::collection::vec(arb_row(), 0..30),
        key in -5i64..5,
    ) {
        let mut db = db_with(&rows, &[]);
        let q = format!("SELECT b, s FROM t WHERE a = {key}");
        let plain = db.query(&q).unwrap();
        db.create_index("t", "a").unwrap();
        let indexed = db.query(&q).unwrap();
        prop_assert_eq!(sorted(plain.rows), sorted(indexed.rows));
    }

    #[test]
    fn hash_join_matches_nested_loop_reference(
        rows in proptest::collection::vec(arb_row(), 0..20),
        rows2 in proptest::collection::vec((-5i64..5, -5i64..5), 0..20),
    ) {
        let db = db_with(&rows, &rows2);
        let joined = db
            .query("SELECT t.b, u.c FROM t JOIN u ON t.a = u.a")
            .unwrap();
        // Naive reference.
        let mut reference: Vec<Row> = Vec::new();
        for (a, b, _) in &rows {
            for (a2, c) in &rows2 {
                if a == a2 {
                    reference.push(vec![SqlValue::Int(*b), SqlValue::Int(*c)]);
                }
            }
        }
        prop_assert_eq!(sorted(joined.rows), sorted(reference));
    }

    #[test]
    fn union_is_commutative_and_dedups(
        rows in proptest::collection::vec(arb_row(), 0..25),
        k1 in -5i64..5,
        k2 in -5i64..5,
    ) {
        let db = db_with(&rows, &[]);
        let ab = db
            .query(&format!(
                "SELECT a FROM t WHERE b = {k1} UNION SELECT a FROM t WHERE b = {k2}"
            ))
            .unwrap();
        let ba = db
            .query(&format!(
                "SELECT a FROM t WHERE b = {k2} UNION SELECT a FROM t WHERE b = {k1}"
            ))
            .unwrap();
        prop_assert_eq!(sorted(ab.rows.clone()), sorted(ba.rows));
        // UNION result is duplicate-free.
        let mut dedup = ab.rows.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(sorted(ab.rows), dedup);
    }

    #[test]
    fn union_all_counts_add_up(
        rows in proptest::collection::vec(arb_row(), 0..25),
        k in -5i64..5,
    ) {
        let db = db_with(&rows, &[]);
        let half = db
            .query(&format!("SELECT a FROM t WHERE b = {k}"))
            .unwrap()
            .rows
            .len();
        let both = db
            .query(&format!(
                "SELECT a FROM t WHERE b = {k} UNION ALL SELECT a FROM t WHERE b = {k}"
            ))
            .unwrap()
            .rows
            .len();
        prop_assert_eq!(both, 2 * half);
    }

    #[test]
    fn order_by_sorts_and_limit_prefixes(
        rows in proptest::collection::vec(arb_row(), 0..25),
        limit in 0usize..10,
    ) {
        let db = db_with(&rows, &[]);
        let all = db.query("SELECT a FROM t ORDER BY a").unwrap();
        for w in all.rows.windows(2) {
            prop_assert!(w[0][0] <= w[1][0]);
        }
        let limited = db
            .query(&format!("SELECT a FROM t ORDER BY a LIMIT {limit}"))
            .unwrap();
        prop_assert_eq!(&limited.rows[..], &all.rows[..limit.min(all.rows.len())]);
    }

    #[test]
    fn distinct_removes_exactly_duplicates(
        rows in proptest::collection::vec(arb_row(), 0..25),
    ) {
        let db = db_with(&rows, &[]);
        let distinct = db.query("SELECT DISTINCT a FROM t").unwrap();
        let mut expected: Vec<i64> = rows.iter().map(|(a, _, _)| *a).collect();
        expected.sort_unstable();
        expected.dedup();
        let mut got: Vec<i64> = distinct
            .rows
            .iter()
            .map(|r| match r[0] {
                SqlValue::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
