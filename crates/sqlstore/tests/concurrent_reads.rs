//! `Database` is a shared read-only substrate for the serving layer:
//! `query` takes `&self`, so one engine behind an `Arc` must serve many
//! threads at once and always return what single-threaded evaluation
//! returns.

use std::sync::Arc;
use std::thread;

use obda_sqlstore::Database;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn database_is_send_and_sync() {
    assert_send_sync::<Database>();
}

#[test]
fn concurrent_queries_match_sequential_results() {
    let mut db = Database::new();
    db.execute("CREATE TABLE person (id INT, name TEXT, dept INT)")
        .unwrap();
    db.execute("CREATE TABLE dept (id INT, label TEXT)")
        .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO person VALUES ({i}, 'p{i}', {})",
            i % 5
        ))
        .unwrap();
    }
    for d in 0..5 {
        db.execute(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')"))
            .unwrap();
    }

    let queries = [
        "SELECT name FROM person WHERE dept = 3 ORDER BY name",
        "SELECT DISTINCT label FROM person JOIN dept ON person.dept = dept.id ORDER BY label",
        "SELECT id FROM person WHERE id = 42",
        "SELECT name FROM person WHERE dept = 0 UNION SELECT label FROM dept ORDER BY name",
    ];
    let expected: Vec<_> = queries.iter().map(|q| db.query(q).unwrap().rows).collect();

    let db = Arc::new(db);
    let threads: Vec<_> = (0..8)
        .map(|tid| {
            let db = Arc::clone(&db);
            let expected = expected.clone();
            thread::spawn(move || {
                for round in 0..20 {
                    let i = (tid + round) % queries.len();
                    let got = db.query(queries[i]).unwrap().rows;
                    assert_eq!(got, expected[i], "thread {tid} query {i}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
