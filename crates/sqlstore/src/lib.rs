//! # obda-sqlstore
//!
//! A small in-memory relational engine — the data-source substrate under
//! the OBDA stack. OBDA reduces ontology queries to SQL over the sources
//! (Section 7 of the paper: "directly translatable into SQL"); this crate
//! is the engine those translations run on.
//!
//! Features: typed tables with hash indexes, a SQL subset (CREATE TABLE /
//! INSERT / SELECT with joins, WHERE conjunctions, UNION [ALL], DISTINCT,
//! ORDER BY, LIMIT), a planner with filter pushdown, index access paths
//! and hash equi-joins, and a row executor.
//!
//! ```
//! use obda_sqlstore::Database;
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let r = db.query("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! ```
//!
//! ## Concurrency
//!
//! [`Database`] is `Send + Sync` and [`Database::query`] takes `&self`:
//! once loaded, a database can be shared behind an `Arc` and queried
//! from many threads at once with no external locking. Mutation
//! (`execute`) needs `&mut self`, so the type system keeps writers
//! exclusive. The `obda-server` serving layer relies on this to run one
//! engine across a pool of worker threads.

pub mod catalog;
pub mod csv;
pub mod error;
pub mod exec;
pub mod plan;
pub mod sql;
pub mod table;
pub mod value;

pub use catalog::Database;
pub use csv::load_csv;
pub use error::SqlError;
pub use exec::{execute, execute_counted, execute_traced, ExecStats, ResultSet};
pub use plan::{plan_query, ComputeExpr, Plan, PlannedQuery};
pub use sql::ast::{SelectQuery, Statement};
pub use sql::parser::{parse_query, parse_statement};
pub use sql::printer::{select_core as print_select_core, select_query as print_select_query};
pub use table::{Column, Table};
pub use value::{ColumnType, Row, SqlValue};
