//! SQL values and comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value. `Null` follows a simplified three-valued logic: any
/// comparison involving `Null` is false (enough for the OBDA workload,
//  which never generates `IS NULL` predicates).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
}

impl SqlValue {
    /// SQL comparison: `None` when either side is `Null` or the types
    /// differ (incomparable), otherwise the ordering.
    pub fn sql_cmp(&self, other: &SqlValue) -> Option<Ordering> {
        match (self, other) {
            (SqlValue::Int(a), SqlValue::Int(b)) => Some(a.cmp(b)),
            (SqlValue::Text(a), SqlValue::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Renders like a SQL literal (`NULL`, `42`, `'text'`).
    pub fn literal(&self) -> String {
        match self {
            SqlValue::Null => "NULL".into(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => f.write_str("NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Text(s) => f.write_str(s),
        }
    }
}

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integers.
    Int,
    /// UTF-8 text.
    Text,
}

impl ColumnType {
    /// Whether a value inhabits the type (NULL inhabits every type).
    pub fn admits(&self, v: &SqlValue) -> bool {
        matches!(
            (self, v),
            (_, SqlValue::Null)
                | (ColumnType::Int, SqlValue::Int(_))
                | (ColumnType::Text, SqlValue::Text(_))
        )
    }
}

/// A row of values.
pub type Row = Vec<SqlValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(SqlValue::Null.sql_cmp(&SqlValue::Int(1)), None);
        assert_eq!(SqlValue::Int(1).sql_cmp(&SqlValue::Null), None);
        assert_eq!(SqlValue::Int(1).sql_cmp(&SqlValue::Text("1".into())), None);
    }

    #[test]
    fn typed_comparisons() {
        assert_eq!(
            SqlValue::Int(1).sql_cmp(&SqlValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            SqlValue::Text("b".into()).sql_cmp(&SqlValue::Text("a".into())),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn literal_escaping() {
        assert_eq!(SqlValue::Text("o'hara".into()).literal(), "'o''hara'");
        assert_eq!(SqlValue::Int(-3).literal(), "-3");
        assert_eq!(SqlValue::Null.literal(), "NULL");
    }

    #[test]
    fn column_types_admit() {
        assert!(ColumnType::Int.admits(&SqlValue::Int(1)));
        assert!(ColumnType::Int.admits(&SqlValue::Null));
        assert!(!ColumnType::Int.admits(&SqlValue::Text("x".into())));
    }
}
