//! Abstract syntax of the supported SQL subset.
//!
//! ```text
//! CREATE TABLE t (c INT, d TEXT)
//! INSERT INTO t VALUES (1, 'a'), (2, 'b')
//! SELECT [DISTINCT] items FROM t [alias]
//!     [JOIN u [alias] ON x.c = y.d]*
//!     [WHERE comparison [AND comparison]*]
//! [UNION [ALL] SELECT …]*
//! [ORDER BY col [ASC|DESC], …] [LIMIT n]
//! ```
//!
//! Disjunction is expressed with `UNION` (matching what OBDA unfolding
//! produces); conjunction with `AND`/joins.

use crate::value::{ColumnType, SqlValue};

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table name or alias qualifier, if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(SqlValue),
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct of a WHERE clause or join condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

/// A projected item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Source column.
    pub col: ColRef,
    /// Output name override (`AS`).
    pub alias: Option<String>,
}

/// A table reference in FROM/JOIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Base table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Equality join conditions (conjunctive).
    pub on: Vec<Comparison>,
}

/// One SELECT block (no set operations).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// Whether `DISTINCT` was written.
    pub distinct: bool,
    /// Projected items; empty means `*`.
    pub items: Vec<SelectItem>,
    /// Leading FROM table.
    pub from: TableRef,
    /// JOIN clauses, in order.
    pub joins: Vec<Join>,
    /// WHERE conjuncts.
    pub filter: Vec<Comparison>,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Output column name to sort by.
    pub column: String,
    /// Ascending?
    pub asc: bool,
}

/// A full query: one or more cores combined with UNION (dedup) or
/// UNION ALL, plus ordering/limit.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// First SELECT block.
    pub first: SelectCore,
    /// Remaining blocks, each flagged `all` for UNION ALL.
    pub rest: Vec<(bool, SelectCore)>,
    /// ORDER BY keys over the output columns.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO … VALUES …`.
    Insert {
        /// Target table.
        table: String,
        /// Tuples to insert.
        rows: Vec<Vec<SqlValue>>,
    },
    /// A SELECT query.
    Select(SelectQuery),
}
