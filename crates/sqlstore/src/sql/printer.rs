//! Rendering the SQL AST back to text (used by `EXPLAIN`-style tooling
//! and logs; output re-parses with [`crate::sql::parser`]).

use crate::sql::ast::*;

fn operand(o: &Operand) -> String {
    match o {
        Operand::Col(c) => c.to_string(),
        Operand::Lit(v) => v.literal(),
    }
}

fn cmp_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn comparison(c: &Comparison) -> String {
    format!("{} {} {}", operand(&c.lhs), cmp_op(c.op), operand(&c.rhs))
}

fn table_ref(t: &TableRef) -> String {
    if t.alias == t.table {
        t.table.clone()
    } else {
        format!("{} {}", t.table, t.alias)
    }
}

/// Renders one SELECT core.
pub fn select_core(core: &SelectCore) -> String {
    let mut out = String::from("SELECT ");
    if core.distinct {
        out.push_str("DISTINCT ");
    }
    if core.items.is_empty() {
        out.push('*');
    } else {
        let items: Vec<String> = core
            .items
            .iter()
            .map(|i| match &i.alias {
                Some(a) => format!("{} AS {a}", i.col),
                None => i.col.to_string(),
            })
            .collect();
        out.push_str(&items.join(", "));
    }
    out.push_str(" FROM ");
    out.push_str(&table_ref(&core.from));
    for j in &core.joins {
        out.push_str(" JOIN ");
        out.push_str(&table_ref(&j.table));
        if !j.on.is_empty() {
            out.push_str(" ON ");
            let conds: Vec<String> = j.on.iter().map(comparison).collect();
            out.push_str(&conds.join(" AND "));
        } else {
            // Parser-compatible spelling of a cross join.
            out.push_str(" ON 1 = 1");
        }
    }
    if !core.filter.is_empty() {
        out.push_str(" WHERE ");
        let conds: Vec<String> = core.filter.iter().map(comparison).collect();
        out.push_str(&conds.join(" AND "));
    }
    out
}

/// Renders a full query (UNIONs, ORDER BY, LIMIT).
pub fn select_query(q: &SelectQuery) -> String {
    let mut out = select_core(&q.first);
    for (all, core) in &q.rest {
        out.push_str(if *all { " UNION ALL " } else { " UNION " });
        out.push_str(&select_core(core));
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|k| {
                if k.asc {
                    k.column.clone()
                } else {
                    format!("{} DESC", k.column)
                }
            })
            .collect();
        out.push_str(&keys.join(", "));
    }
    if let Some(n) = q.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_query;

    #[test]
    fn printed_sql_reparses_identically() {
        for src in [
            "SELECT a FROM t",
            "SELECT DISTINCT t.a AS x, u.b FROM t JOIN u ON t.a = u.a WHERE t.b >= 3 AND u.c <> 'z'",
            "SELECT a FROM t WHERE a = 1 UNION SELECT a FROM t WHERE a = 2 UNION ALL SELECT b FROM u ORDER BY a DESC LIMIT 7",
        ] {
            let q1 = parse_query(src).unwrap();
            let printed = select_query(&q1);
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(q1, q2, "roundtrip failed for `{src}` → `{printed}`");
        }
    }
}
