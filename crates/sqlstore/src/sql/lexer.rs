//! SQL tokenizer.

use crate::error::SqlError;

/// A SQL token. Keywords are uppercased identifiers matched by the
/// parser; the lexer only distinguishes shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Whether the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Token::Dot);
                i += 1;
            }
            '*' => {
                toks.push(Token::Star);
                i += 1;
            }
            '=' => {
                toks.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::new("stray `!`"));
                }
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        toks.push(Token::Le);
                        i += 2;
                    }
                    Some(b'>') => {
                        toks.push(Token::Ne);
                        i += 2;
                    }
                    _ => {
                        toks.push(Token::Lt);
                        i += 1;
                    }
                };
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token::Ge);
                    i += 2;
                } else {
                    toks.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut out = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => return Err(SqlError::new("unterminated string literal")),
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            out.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            out.push(b as char);
                            j += 1;
                        }
                    }
                }
                toks.push(Token::Str(out));
                i = j;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text
                    .parse::<i64>()
                    .map_err(|_| SqlError::new(format!("bad integer `{text}`")))?;
                toks.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Token::Ident(src[start..i].to_owned()));
            }
            other => return Err(SqlError::new(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_operators_and_literals() {
        let toks = tokenize("SELECT a.b, 'o''hara' FROM t WHERE x <= -5 AND y <> 'z'").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Str("o'hara".into())));
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[0].is_kw("FROM"));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'abc").is_err());
    }
}
