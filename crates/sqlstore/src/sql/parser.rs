//! Recursive-descent parser for the SQL subset.

use crate::error::SqlError;
use crate::value::{ColumnType, SqlValue};

use super::ast::*;
use super::lexer::{tokenize, Token};

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(SqlError::new(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }

    fn colref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn operand(&mut self) -> Result<Operand, SqlError> {
        match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Operand::Lit(SqlValue::Int(n)))
            }
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Operand::Lit(SqlValue::Text(s)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Operand::Lit(SqlValue::Null))
            }
            _ => Ok(Operand::Col(self.colref()?)),
        }
    }

    fn comparison(&mut self) -> Result<Comparison, SqlError> {
        let lhs = self.operand()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(SqlError::new(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let rhs = self.operand()?;
        Ok(Comparison { lhs, op, rhs })
    }

    fn conjunction(&mut self) -> Result<Vec<Comparison>, SqlError> {
        let mut out = vec![self.comparison()?];
        while self.eat_kw("AND") {
            out.push(self.comparison()?);
        }
        Ok(out)
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        // Optional alias: bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if ![
                    "JOIN", "ON", "WHERE", "UNION", "ORDER", "LIMIT", "AS", "AND",
                ]
                .iter()
                .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                let a = s.clone();
                self.pos += 1;
                a
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("AS") => {
                self.pos += 1;
                self.ident()?
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    fn select_core(&mut self) -> Result<SelectCore, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
        } else {
            loop {
                let col = self.colref()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { col, alias });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw("JOIN") {
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.conjunction()?;
            joins.push(Join { table, on });
        }
        let filter = if self.eat_kw("WHERE") {
            self.conjunction()?
        } else {
            Vec::new()
        };
        Ok(SelectCore {
            distinct,
            items,
            from,
            joins,
            filter,
        })
    }

    fn select_query(&mut self) -> Result<SelectQuery, SqlError> {
        let first = self.select_core()?;
        let mut rest = Vec::new();
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            rest.push((all, self.select_core()?));
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.ident()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderKey { column, asc });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::new(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectQuery {
            first,
            rest,
            order_by,
            limit,
        })
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect(Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty_name = self.ident()?;
                let ty = match ty_name.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" | "BIGINT" => ColumnType::Int,
                    "TEXT" | "VARCHAR" | "STRING" => ColumnType::Text,
                    other => return Err(SqlError::new(format!("unknown type `{other}`"))),
                };
                columns.push((col, ty));
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(SqlError::new(format!(
                            "expected `,` or `)`, found {other:?}"
                        )))
                    }
                }
            }
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    match self.operand()? {
                        Operand::Lit(v) => row.push(v),
                        Operand::Col(c) => {
                            return Err(SqlError::new(format!("expected literal, found {c}")))
                        }
                    }
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        other => {
                            return Err(SqlError::new(format!(
                                "expected `,` or `)`, found {other:?}"
                            )))
                        }
                    }
                }
                rows.push(row);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            Ok(Statement::Insert { table, rows })
        } else {
            Ok(Statement::Select(self.select_query()?))
        }
    }
}

/// Parses a single SQL statement.
pub fn parse_statement(src: &str) -> Result<Statement, SqlError> {
    let mut p = P {
        toks: tokenize(src)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    if !p.at_end() {
        return Err(SqlError::new(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Parses a SELECT query (convenience for the OBDA layer).
pub fn parse_query(src: &str) -> Result<SelectQuery, SqlError> {
    match parse_statement(src)? {
        Statement::Select(q) => Ok(q),
        other => Err(SqlError::new(format!("expected SELECT, parsed {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_and_insert() {
        let c = parse_statement("CREATE TABLE t (id INT, name TEXT)").unwrap();
        assert!(matches!(c, Statement::CreateTable { ref columns, .. } if columns.len() == 2));
        let i = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        match i {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], SqlValue::Null);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_join_query_with_aliases() {
        let q =
            parse_query("SELECT a.id, b.name AS n FROM t a JOIN u b ON a.id = b.tid WHERE a.x = 3")
                .unwrap();
        assert_eq!(q.first.items.len(), 2);
        assert_eq!(q.first.items[1].alias.as_deref(), Some("n"));
        assert_eq!(q.first.joins.len(), 1);
        assert_eq!(q.first.joins[0].table.alias, "b");
        assert_eq!(q.first.filter.len(), 1);
    }

    #[test]
    fn parses_union_order_limit() {
        let q = parse_query(
            "SELECT id FROM t WHERE x = 1 UNION SELECT id FROM t WHERE x = 2 UNION ALL SELECT id FROM u ORDER BY id DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.rest.len(), 2);
        assert!(!q.rest[0].0);
        assert!(q.rest[1].0);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * FROM t").unwrap();
        assert!(q.first.distinct);
        assert!(q.first.items.is_empty());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT id FROM t extra garbage(").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("select id from t where id >= 0").is_ok());
    }
}
