//! Logical planning: name resolution, predicate compilation, filter
//! pushdown and join-key extraction.
//!
//! The planner turns a parsed [`SelectQuery`] into a [`Plan`] tree of
//! physical-ish operators:
//!
//! * single-table WHERE conjuncts are pushed into the [`Plan::Scan`] that
//!   owns them; an equality against a literal on an indexed column is
//!   marked for index lookup;
//! * join conditions are split into equi-join key pairs (driving the hash
//!   join) and residual predicates;
//! * `DISTINCT`, `UNION [ALL]`, `ORDER BY` and `LIMIT` become dedicated
//!   nodes.

use crate::catalog::Database;
use crate::error::SqlError;
use crate::sql::ast::*;
use crate::value::SqlValue;

/// A compiled operand: a column position in the operator's input row, or
/// a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Input row position.
    Col(usize),
    /// Constant.
    Lit(SqlValue),
}

/// A compiled comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCmp {
    /// Left operand.
    pub lhs: Source,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Source,
}

impl CompiledCmp {
    /// Evaluates against a row (NULL-involving comparisons are false).
    pub fn eval(&self, row: &[SqlValue]) -> bool {
        let get = |s: &Source| -> SqlValue {
            match s {
                Source::Col(i) => row[*i].clone(),
                Source::Lit(v) => v.clone(),
            }
        };
        let (a, b) = (get(&self.lhs), get(&self.rhs));
        match a.sql_cmp(&b) {
            None => false,
            Some(ord) => match self.op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            },
        }
    }
}

/// A per-row computed output (see [`Plan::Compute`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeExpr {
    /// Pass an input column through.
    Col(usize),
    /// A constant.
    Lit(SqlValue),
    /// `prefix ‖ input[col]` rendered as `Text` (IRI-template
    /// concatenation); a NULL input stays NULL.
    Concat {
        /// Literal prefix.
        prefix: String,
        /// Input column position.
        col: usize,
    },
}

impl ComputeExpr {
    /// Evaluates against an input row.
    pub fn eval(&self, row: &[SqlValue]) -> SqlValue {
        match self {
            ComputeExpr::Col(i) => row[*i].clone(),
            ComputeExpr::Lit(v) => v.clone(),
            ComputeExpr::Concat { prefix, col } => match &row[*col] {
                SqlValue::Null => SqlValue::Null,
                v => SqlValue::Text(format!("{prefix}{v}")),
            },
        }
    }
}

/// A plan node. Every node produces rows with a fixed arity; output
/// column names live only at the root (in [`PlannedQuery`]).
#[derive(Debug, Clone)]
pub enum Plan {
    /// Table scan with pushed-down predicates (positions are relative to
    /// the table row) and an optional index-equality access path.
    Scan {
        /// Table name.
        table: String,
        /// Pushed single-table predicates.
        pushed: Vec<CompiledCmp>,
        /// `(column position, literal)` equality served by a hash index.
        index_eq: Option<(usize, SqlValue)>,
        /// Table arity (for schema bookkeeping).
        arity: usize,
    },
    /// Hash equi-join; output = left row ++ right row.
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// Key positions in the left output.
        left_keys: Vec<usize>,
        /// Key positions in the right output.
        right_keys: Vec<usize>,
        /// Residual predicates over the concatenated row.
        residual: Vec<CompiledCmp>,
    },
    /// Residual filter.
    Filter {
        /// Input.
        input: Box<Plan>,
        /// Conjunctive predicates.
        predicates: Vec<CompiledCmp>,
    },
    /// Projection to the given input positions.
    Project {
        /// Input.
        input: Box<Plan>,
        /// Input positions to keep, in output order.
        cols: Vec<usize>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input.
        input: Box<Plan>,
    },
    /// Set union of equal-arity inputs (`all` keeps duplicates).
    Union {
        /// Inputs.
        inputs: Vec<Plan>,
        /// UNION ALL?
        all: bool,
    },
    /// Sort by `(position, ascending)` keys.
    Sort {
        /// Input.
        input: Box<Plan>,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<Plan>,
        /// Maximum number of rows.
        n: usize,
    },
    /// CTE-like shared subplan (`WITH v AS (…)`): every `SharedScan`
    /// carrying the same `id` within one statement execution evaluates
    /// its input once and reuses the materialized rows. Callers must
    /// give distinct ids to distinct subplans — the id, not the input
    /// tree, is the cache key.
    SharedScan {
        /// Statement-scoped intermediate id.
        id: usize,
        /// The shared subplan.
        input: Box<Plan>,
    },
    /// Computed projection: one output value per expression.
    Compute {
        /// Input.
        input: Box<Plan>,
        /// Output expressions, in output order.
        exprs: Vec<ComputeExpr>,
    },
}

/// A planned query: the plan tree plus output column names.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Root plan node.
    pub plan: Plan,
    /// Output column names.
    pub columns: Vec<String>,
}

/// Schema tracker during planning: (alias, column name) per position.
struct Scope {
    cols: Vec<(String, String)>,
}

impl Scope {
    fn resolve(&self, c: &ColRef) -> Result<usize, SqlError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (alias, name))| {
                name == &c.column && c.qualifier.as_ref().is_none_or(|q| q == alias)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(SqlError::new(format!("unknown column `{c}`"))),
            _ => Err(SqlError::new(format!("ambiguous column `{c}`"))),
        }
    }
}

fn compile_cmp(scope: &Scope, cmp: &Comparison) -> Result<CompiledCmp, SqlError> {
    let side = |o: &Operand| -> Result<Source, SqlError> {
        Ok(match o {
            Operand::Col(c) => Source::Col(scope.resolve(c)?),
            Operand::Lit(v) => Source::Lit(v.clone()),
        })
    };
    Ok(CompiledCmp {
        lhs: side(&cmp.lhs)?,
        op: cmp.op,
        rhs: side(&cmp.rhs)?,
    })
}

/// Which single alias a comparison touches, if exactly one.
fn single_alias(cmp: &Comparison, alias_of: impl Fn(&ColRef) -> Option<String>) -> Option<String> {
    let mut found: Option<String> = None;
    for op in [&cmp.lhs, &cmp.rhs] {
        if let Operand::Col(c) = op {
            let a = alias_of(c)?;
            match &found {
                None => found = Some(a),
                Some(prev) if *prev == a => {}
                Some(_) => return None,
            }
        }
    }
    found
}

fn plan_core(db: &Database, core: &SelectCore) -> Result<(Plan, Scope), SqlError> {
    // Collect the table refs in join order.
    let mut refs = vec![core.from.clone()];
    refs.extend(core.joins.iter().map(|j| j.table.clone()));
    // Duplicate alias check.
    for i in 0..refs.len() {
        for j in (i + 1)..refs.len() {
            if refs[i].alias == refs[j].alias {
                return Err(SqlError::new(format!(
                    "duplicate alias `{}`",
                    refs[i].alias
                )));
            }
        }
    }
    // Partition WHERE conjuncts per alias for pushdown.
    let full_scope = {
        let mut cols = Vec::new();
        for r in &refs {
            let table = db.table(&r.table)?;
            for c in table.columns() {
                cols.push((r.alias.clone(), c.name.clone()));
            }
        }
        Scope { cols }
    };
    let alias_of = |c: &ColRef| -> Option<String> {
        if let Some(q) = &c.qualifier {
            return Some(q.clone());
        }
        // Unqualified: find the unique owning alias.
        let owners: Vec<&(String, String)> = full_scope
            .cols
            .iter()
            .filter(|(_, name)| name == &c.column)
            .collect();
        match owners.as_slice() {
            [one] => Some(one.0.clone()),
            _ => None,
        }
    };
    let mut pushed: std::collections::HashMap<String, Vec<Comparison>> =
        std::collections::HashMap::new();
    let mut residual_where: Vec<Comparison> = Vec::new();
    for cmp in &core.filter {
        match single_alias(cmp, alias_of) {
            Some(alias) => pushed.entry(alias).or_default().push(cmp.clone()),
            None => residual_where.push(cmp.clone()),
        }
    }

    // Build scans.
    type ScanEntry = (String, Plan, Vec<(String, String)>);
    let mut plans: Vec<ScanEntry> = Vec::new();
    for r in &refs {
        let table = db.table(&r.table)?;
        let local_scope = Scope {
            cols: table
                .columns()
                .iter()
                .map(|c| (r.alias.clone(), c.name.clone()))
                .collect(),
        };
        let mut compiled: Vec<CompiledCmp> = Vec::new();
        for cmp in pushed.get(&r.alias).into_iter().flatten() {
            compiled.push(compile_cmp(&local_scope, cmp)?);
        }
        // Index access path: first `col = literal` on an indexed column.
        let mut index_eq = None;
        compiled.retain(|c| {
            if index_eq.is_some() {
                return true;
            }
            if c.op == CmpOp::Eq {
                if let (Source::Col(i), Source::Lit(v)) | (Source::Lit(v), Source::Col(i)) =
                    (&c.lhs, &c.rhs)
                {
                    if table.has_index(*i) {
                        index_eq = Some((*i, v.clone()));
                        return false;
                    }
                }
            }
            true
        });
        plans.push((
            r.alias.clone(),
            Plan::Scan {
                table: r.table.clone(),
                pushed: compiled,
                index_eq,
                arity: table.columns().len(),
            },
            local_scope.cols,
        ));
    }

    // Left-deep join tree following the written order.
    let mut iter = plans.into_iter();
    let (_, mut plan, mut scope_cols) = iter.next().expect("at least FROM");
    for (join, (_, right_plan, right_cols)) in core.joins.iter().zip(iter) {
        let left_len = scope_cols.len();
        let mut combined = scope_cols.clone();
        combined.extend(right_cols.clone());
        let combined_scope = Scope { cols: combined };
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for cmp in &join.on {
            let compiled = compile_cmp(&combined_scope, cmp)?;
            match (&compiled.lhs, compiled.op, &compiled.rhs) {
                (Source::Col(a), CmpOp::Eq, Source::Col(b))
                    if (*a < left_len) != (*b < left_len) =>
                {
                    let (l, r) = if *a < left_len { (*a, *b) } else { (*b, *a) };
                    left_keys.push(l);
                    right_keys.push(r - left_len);
                }
                _ => residual.push(compiled),
            }
        }
        plan = Plan::HashJoin {
            left: Box::new(plan),
            right: Box::new(right_plan),
            left_keys,
            right_keys,
            residual,
        };
        scope_cols = {
            let mut c = scope_cols;
            c.extend(right_cols);
            c
        };
    }
    let scope = Scope { cols: scope_cols };

    // Residual WHERE.
    if !residual_where.is_empty() {
        let predicates = residual_where
            .iter()
            .map(|c| compile_cmp(&scope, c))
            .collect::<Result<Vec<_>, _>>()?;
        plan = Plan::Filter {
            input: Box::new(plan),
            predicates,
        };
    }

    // Projection.
    let (cols, names): (Vec<usize>, Vec<String>) = if core.items.is_empty() {
        (
            (0..scope.cols.len()).collect(),
            scope.cols.iter().map(|(_, n)| n.clone()).collect(),
        )
    } else {
        let mut cols = Vec::new();
        let mut names = Vec::new();
        for item in &core.items {
            cols.push(scope.resolve(&item.col)?);
            names.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| item.col.column.clone()),
            );
        }
        (cols, names)
    };
    plan = Plan::Project {
        input: Box::new(plan),
        cols,
    };
    if core.distinct {
        plan = Plan::Distinct {
            input: Box::new(plan),
        };
    }
    Ok((
        plan,
        Scope {
            cols: names.into_iter().map(|n| (String::new(), n)).collect(),
        },
    ))
}

/// Plans a full SELECT query against the database catalog.
pub fn plan_query(db: &Database, q: &SelectQuery) -> Result<PlannedQuery, SqlError> {
    let (first_plan, out_scope) = plan_core(db, &q.first)?;
    let columns: Vec<String> = out_scope.cols.iter().map(|(_, n)| n.clone()).collect();
    let mut plan = first_plan;
    if !q.rest.is_empty() {
        let mut inputs = vec![plan];
        let mut dedup = false;
        for (all, core) in &q.rest {
            let (p, s) = plan_core(db, core)?;
            if s.cols.len() != columns.len() {
                return Err(SqlError::new(format!(
                    "UNION arity mismatch: {} vs {}",
                    columns.len(),
                    s.cols.len()
                )));
            }
            dedup |= !all;
            inputs.push(p);
        }
        plan = Plan::Union {
            inputs,
            all: !dedup,
        };
    }
    if !q.order_by.is_empty() {
        let mut keys = Vec::new();
        for k in &q.order_by {
            let pos = columns
                .iter()
                .position(|c| c == &k.column)
                .ok_or_else(|| SqlError::new(format!("ORDER BY unknown column `{}`", k.column)))?;
            keys.push((pos, k.asc));
        }
        plan = Plan::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if let Some(n) = q.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(PlannedQuery { plan, columns })
}
