//! The [`Database`]: catalog plus the statement entry points.

use std::collections::HashMap;

use crate::error::SqlError;
use crate::exec::{execute, ResultSet};
use crate::plan::plan_query;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::table::{Column, Table};
use crate::value::{ColumnType, Row};

/// An in-memory database: named tables plus SQL entry points.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::new(format!("no such table `{name}`")))
    }

    /// Creates a table programmatically.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> Result<(), SqlError> {
        if self.tables.contains_key(name) {
            return Err(SqlError::new(format!("table `{name}` already exists")));
        }
        let cols = columns
            .into_iter()
            .map(|(name, ty)| Column { name, ty })
            .collect();
        self.tables.insert(name.to_owned(), Table::new(name, cols));
        Ok(())
    }

    /// Inserts a row programmatically.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), SqlError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| SqlError::new(format!("no such table `{table}`")))?
            .insert(row)
    }

    /// Builds a hash index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), SqlError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| SqlError::new(format!("no such table `{table}`")))?
            .create_index(column)
    }

    /// Executes any statement. DDL/DML return an empty result set.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                self.create_table(&name, columns)?;
                Ok(ResultSet {
                    columns: vec![],
                    rows: vec![],
                })
            }
            Statement::Insert { table, rows } => {
                for row in rows {
                    self.insert(&table, row)?;
                }
                Ok(ResultSet {
                    columns: vec![],
                    rows: vec![],
                })
            }
            Statement::Select(q) => {
                let planned = plan_query(self, &q)?;
                execute(self, &planned)
            }
        }
    }

    /// Executes a read-only SELECT.
    pub fn query(&self, sql: &str) -> Result<ResultSet, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let planned = plan_query(self, &q)?;
                execute(self, &planned)
            }
            other => Err(SqlError::new(format!("expected SELECT, got {other:?}"))),
        }
    }

    /// Names of all tables (sorted).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SqlValue;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE person (id INT, name TEXT, dept INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (did INT, dname TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO person VALUES (1, 'ada', 10), (2, 'bob', 10), (3, 'eve', 20), (4, NULL, NULL)",
        )
        .unwrap();
        db.execute("INSERT INTO dept VALUES (10, 'cs'), (20, 'math'), (30, 'empty')")
            .unwrap();
        db
    }

    #[test]
    fn filter_and_projection() {
        let db = db();
        let r = db.query("SELECT name FROM person WHERE id >= 2").unwrap();
        assert_eq!(r.columns, vec!["name"]);
        // id 4 has NULL name but matches the filter.
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn join_matches_pairs() {
        let db = db();
        let r = db
            .query(
                "SELECT p.name, d.dname FROM person p JOIN dept d ON p.dept = d.did ORDER BY name",
            )
            .unwrap();
        // NULL dept never joins.
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], SqlValue::Text("ada".into()));
        assert_eq!(r.rows[0][1], SqlValue::Text("cs".into()));
    }

    #[test]
    fn union_dedups_union_all_keeps() {
        let db = db();
        let r = db
            .query("SELECT dept FROM person WHERE dept = 10 UNION SELECT dept FROM person WHERE dept = 10")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r2 = db
            .query("SELECT dept FROM person WHERE dept = 10 UNION ALL SELECT dept FROM person WHERE dept = 10")
            .unwrap();
        assert_eq!(r2.rows.len(), 4);
    }

    #[test]
    fn distinct_order_limit() {
        let db = db();
        let r = db
            .query("SELECT DISTINCT dept FROM person WHERE dept >= 0 ORDER BY dept DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(20)]]);
    }

    #[test]
    fn index_path_agrees_with_scan() {
        let mut db = db();
        let plain = db.query("SELECT name FROM person WHERE id = 2").unwrap();
        db.create_index("person", "id").unwrap();
        let indexed = db.query("SELECT name FROM person WHERE id = 2").unwrap();
        assert_eq!(plain, indexed);
        assert_eq!(indexed.rows.len(), 1);
    }

    #[test]
    fn self_join_with_aliases() {
        let db = db();
        let r = db
            .query("SELECT a.name, b.name FROM person a JOIN person b ON a.dept = b.dept WHERE a.id <> b.id")
            .unwrap();
        // ada-bob and bob-ada share dept 10.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(db.query("SELECT nope FROM person").is_err());
        assert!(db.query("SELECT id FROM missing").is_err());
        assert!(db
            .query("SELECT id FROM person UNION SELECT id, name FROM person")
            .is_err());
        let mut db2 = db.clone();
        assert!(db2.execute("CREATE TABLE person (id INT)").is_err());
    }

    #[test]
    fn three_way_join() {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (x INT)").unwrap();
        db.execute("CREATE TABLE b (x INT, y INT)").unwrap();
        db.execute("CREATE TABLE c (y INT)").unwrap();
        db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
        db.execute("INSERT INTO b VALUES (1, 7), (2, 8), (1, 8)")
            .unwrap();
        db.execute("INSERT INTO c VALUES (8)").unwrap();
        let r = db
            .query("SELECT a.x, c.y FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY x")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![SqlValue::Int(1), SqlValue::Int(8)],
                vec![SqlValue::Int(2), SqlValue::Int(8)],
            ]
        );
    }

    #[test]
    fn to_table_renders() {
        let db = db();
        let r = db.query("SELECT id FROM person WHERE id = 1").unwrap();
        let s = r.to_table();
        assert!(s.contains("id"));
        assert!(s.contains('1'));
    }
}
