//! Tables, schemas and hash indexes.

use std::collections::HashMap;

use crate::error::SqlError;
use crate::value::{ColumnType, Row, SqlValue};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A heap table: schema, rows, and optional hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    columns: Vec<Column>,
    rows: Vec<Row>,
    /// column index → (value → row ids)
    indexes: HashMap<usize, HashMap<SqlValue, Vec<u32>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        Table {
            name: name.to_owned(),
            columns,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// Column definitions.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after arity/type validation.
    pub fn insert(&mut self, row: Row) -> Result<(), SqlError> {
        if row.len() != self.columns.len() {
            return Err(SqlError::new(format!(
                "table {}: expected {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (c, v) in self.columns.iter().zip(&row) {
            if !c.ty.admits(v) {
                return Err(SqlError::new(format!(
                    "table {}: value {v} does not fit column {} ({:?})",
                    self.name, c.name, c.ty
                )));
            }
        }
        let id = self.rows.len() as u32;
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(row[col].clone()).or_default().push(id);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Builds (or rebuilds) a hash index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<(), SqlError> {
        let col = self
            .column_index(column)
            .ok_or_else(|| SqlError::new(format!("no column {column} in {}", self.name)))?;
        let mut index: HashMap<SqlValue, Vec<u32>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            index.entry(row[col].clone()).or_default().push(i as u32);
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// Row ids matching `column = value` via an index, if one exists.
    pub fn index_lookup(&self, col: usize, value: &SqlValue) -> Option<&[u32]> {
        self.indexes
            .get(&col)
            .map(|ix| ix.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Whether the column has a hash index.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// A row by id.
    pub fn row(&self, id: u32) -> &Row {
        &self.rows[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(
            "people",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Int,
                },
                Column {
                    name: "name".into(),
                    ty: ColumnType::Text,
                },
            ],
        );
        t.insert(vec![SqlValue::Int(1), SqlValue::Text("ada".into())])
            .unwrap();
        t.insert(vec![SqlValue::Int(2), SqlValue::Text("bob".into())])
            .unwrap();
        t
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = people();
        assert!(t.insert(vec![SqlValue::Int(3)]).is_err());
        assert!(t
            .insert(vec![SqlValue::Text("x".into()), SqlValue::Text("y".into())])
            .is_err());
        assert!(t.insert(vec![SqlValue::Int(3), SqlValue::Null]).is_ok());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn index_lookup_finds_rows() {
        let mut t = people();
        t.create_index("id").unwrap();
        let col = t.column_index("id").unwrap();
        assert_eq!(t.index_lookup(col, &SqlValue::Int(2)), Some(&[1u32][..]));
        assert_eq!(t.index_lookup(col, &SqlValue::Int(9)), Some(&[][..]));
        assert!(t.index_lookup(1, &SqlValue::Null).is_none());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = people();
        t.create_index("name").unwrap();
        t.insert(vec![SqlValue::Int(3), SqlValue::Text("ada".into())])
            .unwrap();
        let col = t.column_index("name").unwrap();
        assert_eq!(
            t.index_lookup(col, &SqlValue::Text("ada".into())),
            Some(&[0u32, 2][..])
        );
    }
}
