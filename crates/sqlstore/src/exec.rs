//! Plan execution.

use std::collections::{HashMap, HashSet};

use crate::catalog::Database;
use crate::error::SqlError;
use crate::plan::{Plan, PlannedQuery};
use crate::value::{Row, SqlValue};

/// Rows plus output column names.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Renders a compact ASCII table (for examples and reports).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Execution counters, filled in by [`execute_counted`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows the scans considered (post index lookup, before
    /// pushed filters) — the "work done" metric the trace reports.
    pub rows_scanned: u64,
    /// `SharedScan` reuses: evaluations served from the statement-scoped
    /// intermediate cache instead of re-running the subplan.
    pub shared_scan_hits: u64,
}

/// Executes a planned query.
pub fn execute(db: &Database, pq: &PlannedQuery) -> Result<ResultSet, SqlError> {
    execute_counted(db, pq, &mut ExecStats::default())
}

/// Executes a planned query, accumulating scan counters into `stats`.
pub fn execute_counted(
    db: &Database,
    pq: &PlannedQuery,
    stats: &mut ExecStats,
) -> Result<ResultSet, SqlError> {
    // Statement-scoped cache of SharedScan intermediates: one
    // materialization per id per execution, WITH-clause style.
    let mut shared: HashMap<usize, Vec<Row>> = HashMap::new();
    Ok(ResultSet {
        columns: pq.columns.clone(),
        rows: run(db, &pq.plan, stats, &mut shared)?,
    })
}

// Process-wide scanned-rows counter, resolved once so the
// per-statement cost is one relaxed atomic add.
obda_obs::counter_handle!(fn rows_scanned_total, "sqlstore.rows_scanned");

/// Executes a planned query under a trace context: bumps the per-query
/// `rows_scanned` / `sql_statements` trace counters and the process-wide
/// `sqlstore.rows_scanned` registry counter.
pub fn execute_traced(
    db: &Database,
    pq: &PlannedQuery,
    ctx: &obda_obs::TraceCtx,
) -> Result<ResultSet, SqlError> {
    let mut stats = ExecStats::default();
    let res = execute_counted(db, pq, &mut stats);
    ctx.count("rows_scanned", stats.rows_scanned);
    ctx.count("sql_statements", 1);
    rows_scanned_total().add(stats.rows_scanned);
    res
}

fn run(
    db: &Database,
    plan: &Plan,
    stats: &mut ExecStats,
    shared: &mut HashMap<usize, Vec<Row>>,
) -> Result<Vec<Row>, SqlError> {
    match plan {
        Plan::Scan {
            table,
            pushed,
            index_eq,
            arity: _,
        } => {
            let t = db.table(table)?;
            let rows: Box<dyn Iterator<Item = &Row>> = match index_eq {
                Some((col, value)) => match t.index_lookup(*col, value) {
                    Some(ids) => Box::new(ids.iter().map(move |&id| t.row(id))),
                    None => Box::new(t.rows().iter()),
                },
                None => Box::new(t.rows().iter()),
            };
            let out: Vec<Row> = rows
                .inspect(|_| stats.rows_scanned += 1)
                .filter(|r| pushed.iter().all(|p| p.eval(r)))
                .cloned()
                .collect();
            Ok(out)
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let left_rows = run(db, left, stats, shared)?;
            let right_rows = run(db, right, stats, shared)?;
            let mut out = Vec::new();
            if left_keys.is_empty() {
                // Cross join (rare; only from joins without equi-keys).
                for l in &left_rows {
                    for r in &right_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        if residual.iter().all(|p| p.eval(&row)) {
                            out.push(row);
                        }
                    }
                }
                return Ok(out);
            }
            // Build on the right side.
            let mut table: HashMap<Vec<SqlValue>, Vec<&Row>> =
                HashMap::with_capacity(right_rows.len());
            'build: for r in &right_rows {
                let mut key = Vec::with_capacity(right_keys.len());
                for &k in right_keys {
                    if r[k].is_null() {
                        continue 'build; // NULL never joins
                    }
                    key.push(r[k].clone());
                }
                table.entry(key).or_default().push(r);
            }
            'probe: for l in &left_rows {
                let mut key = Vec::with_capacity(left_keys.len());
                for &k in left_keys {
                    if l[k].is_null() {
                        continue 'probe;
                    }
                    key.push(l[k].clone());
                }
                if let Some(matches) = table.get(&key) {
                    for r in matches {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        if residual.iter().all(|p| p.eval(&row)) {
                            out.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
        Plan::Filter { input, predicates } => {
            let mut rows = run(db, input, stats, shared)?;
            rows.retain(|r| predicates.iter().all(|p| p.eval(r)));
            Ok(rows)
        }
        Plan::Project { input, cols } => {
            let rows = run(db, input, stats, shared)?;
            Ok(rows
                .into_iter()
                .map(|r| cols.iter().map(|&i| r[i].clone()).collect())
                .collect())
        }
        Plan::Distinct { input } => {
            let rows = run(db, input, stats, shared)?;
            let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
        Plan::Union { inputs, all } => {
            let mut out = Vec::new();
            for p in inputs {
                out.extend(run(db, p, stats, shared)?);
            }
            if !all {
                let mut seen: HashSet<Row> = HashSet::with_capacity(out.len());
                out.retain(|r| seen.insert(r.clone()));
            }
            Ok(out)
        }
        Plan::Sort { input, keys } => {
            let mut rows = run(db, input, stats, shared)?;
            rows.sort_by(|a, b| {
                for &(pos, asc) in keys {
                    let ord = a[pos].cmp(&b[pos]);
                    let ord = if asc { ord } else { ord.reverse() };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        Plan::Limit { input, n } => {
            let mut rows = run(db, input, stats, shared)?;
            rows.truncate(*n);
            Ok(rows)
        }
        Plan::SharedScan { id, input } => {
            if let Some(rows) = shared.get(id) {
                stats.shared_scan_hits += 1;
                return Ok(rows.clone());
            }
            let rows = run(db, input, stats, shared)?;
            shared.insert(*id, rows.clone());
            Ok(rows)
        }
        Plan::Compute { input, exprs } => {
            let rows = run(db, input, stats, shared)?;
            Ok(rows
                .into_iter()
                .map(|r| exprs.iter().map(|e| e.eval(&r)).collect())
                .collect())
        }
    }
}
