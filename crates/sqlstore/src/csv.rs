//! Minimal CSV ingestion (RFC-4180-ish: quoted fields with `""` escapes,
//! comma separator, first line = header). Real deployments load source
//! extracts from files; this keeps the engine self-contained without an
//! external CSV crate.

use crate::catalog::Database;
use crate::error::SqlError;
use crate::value::{ColumnType, SqlValue};

/// Parses one CSV line into fields.
fn split_line(line: &str) -> Result<Vec<String>, SqlError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => return Err(SqlError::new("stray quote inside unquoted field")),
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(SqlError::new("unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Loads CSV text into a (new) table. Column types are inferred from the
/// first data row: fields that parse as `i64` become INT, everything else
/// TEXT; empty fields load as NULL.
pub fn load_csv(db: &mut Database, table: &str, csv: &str) -> Result<usize, SqlError> {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| SqlError::new("empty CSV: missing header"))?;
    let columns = split_line(header)?;
    let rows: Vec<Vec<String>> = lines.map(split_line).collect::<Result<_, _>>()?;
    for (i, r) in rows.iter().enumerate() {
        if r.len() != columns.len() {
            return Err(SqlError::new(format!(
                "row {}: {} fields, header has {}",
                i + 2,
                r.len(),
                columns.len()
            )));
        }
    }
    // Infer types from the first data row (INT only if *every* non-empty
    // value in the column parses, so mixed columns degrade to TEXT).
    let types: Vec<ColumnType> = (0..columns.len())
        .map(|c| {
            let all_int = rows
                .iter()
                .filter(|r| !r[c].is_empty())
                .all(|r| r[c].parse::<i64>().is_ok());
            let any_value = rows.iter().any(|r| !r[c].is_empty());
            if all_int && any_value {
                ColumnType::Int
            } else {
                ColumnType::Text
            }
        })
        .collect();
    db.create_table(
        table,
        columns.iter().cloned().zip(types.iter().copied()).collect(),
    )?;
    for row in &rows {
        let values = row
            .iter()
            .zip(&types)
            .map(|(field, ty)| {
                if field.is_empty() {
                    SqlValue::Null
                } else {
                    match ty {
                        ColumnType::Int => SqlValue::Int(field.parse().expect("inferred INT")),
                        ColumnType::Text => SqlValue::Text(field.clone()),
                    }
                }
            })
            .collect();
        db.insert(table, values)?;
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_typed_columns_and_nulls() {
        let mut db = Database::new();
        let n = load_csv(
            &mut db,
            "people",
            "id,name,age\n1,ada,36\n2,\"bob, the builder\",\n3,\"say \"\"hi\"\"\",41\n",
        )
        .unwrap();
        assert_eq!(n, 3);
        let r = db.query("SELECT name FROM people WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Text("bob, the builder".into()));
        let r2 = db.query("SELECT name FROM people WHERE age = 41").unwrap();
        assert_eq!(r2.rows[0][0], SqlValue::Text("say \"hi\"".into()));
        // Empty age is NULL: never matches comparisons.
        let r3 = db.query("SELECT id FROM people WHERE age >= 0").unwrap();
        assert_eq!(r3.rows.len(), 2);
    }

    #[test]
    fn mixed_columns_degrade_to_text() {
        let mut db = Database::new();
        load_csv(&mut db, "t", "k\n1\nx\n").unwrap();
        let r = db.query("SELECT k FROM t WHERE k = 'x'").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn rejects_ragged_rows_and_bad_quotes() {
        let mut db = Database::new();
        assert!(load_csv(&mut db, "a", "x,y\n1\n").is_err());
        assert!(load_csv(&mut db, "b", "x\n\"unterminated\n").is_err());
        assert!(load_csv(&mut db, "c", "").is_err());
    }
}
