//! Error type shared by the SQL engine.

use std::fmt;

/// Any parse/plan/execution error, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    message: String,
}

impl SqlError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SqlError {}
