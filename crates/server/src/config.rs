//! Server configuration: builder-style defaults plus a JSON config file
//! (`quonto-server --config server.json`).
//!
//! ```json
//! {
//!   "addr": "127.0.0.1:7077",
//!   "workers": 4,
//!   "queue_capacity": 128,
//!   "default_timeout_ms": 5000,
//!   "endpoints": [
//!     {"name": "uni", "kind": "university", "scale": 4, "seed": 42,
//!      "rewriting": "perfectref", "data": "materialized"}
//!   ]
//! }
//! ```
//!
//! Endpoint kinds ship the genont presets so a server is runnable with
//! zero external data: `university` assembles the full OBDA stack
//! (mappings + SQL sources), `university-abox` materializes once into a
//! plain ABox system (the fastest serving shape).

use mastro::{DataMode, EngineConfig, RewritingMode, ENGINE_CONFIG_KEYS};

use crate::json::Json;

/// How an endpoint's engine is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// `mastro::demo::build_system` over the generated university
    /// scenario: TBox + mappings + relational sources.
    University,
    /// The same scenario materialized into an [`mastro::AboxSystem`].
    UniversityAbox,
}

/// One named query endpoint.
///
/// The engine options (`rewriting`, `data`, `eval_threads`, `shards`,
/// `shard_max_inflight`, `ebox`, `rewrite_cache`) live in the nested
/// [`EngineConfig`] — the same typed struct the builder API uses, so
/// JSON keys, CLI flags, and builder calls share one parse path and one
/// precedence rule (explicit setting > env knob > default). A JSON key
/// the config leaves out stays `None` and defers to the knob.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Name clients address in requests.
    pub name: String,
    /// Engine shape.
    pub kind: EndpointKind,
    /// Scenario scale (≈ 40 persons per unit).
    pub scale: usize,
    /// Scenario RNG seed.
    pub seed: u64,
    /// Engine options, forwarded verbatim to construction. The server
    /// default pins `rewriting=perfectref data=materialized
    /// eval_threads=1` (the historical serving shape); everything else
    /// defers to the `QUONTO_*` knobs.
    pub engine: EngineConfig,
    /// Artificial per-request delay (milliseconds) injected before
    /// evaluation. A load-testing / failure-injection knob: lets tests
    /// and `loadgen` create slow requests deterministically.
    pub delay_ms: u64,
    /// Fault-injection knob: a query whose text contains this marker
    /// panics inside the worker instead of evaluating. Lets the
    /// poison-cascade regression tests prove that one panicking query
    /// cannot take the server down. `None` (the default) disables it.
    pub panic_marker: Option<String>,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            name: "uni".into(),
            kind: EndpointKind::University,
            scale: 2,
            seed: 42,
            engine: EngineConfig::new()
                .rewriting(RewritingMode::PerfectRef)
                .data_mode(DataMode::Materialized)
                .eval_threads(1),
            delay_ms: 0,
            panic_marker: None,
        }
    }
}

/// Whole-server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral port, printed on start).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects with
    /// `overloaded` instead of building unbounded backlog.
    pub queue_capacity: usize,
    /// Default per-request deadline (ms) when the request carries none.
    pub default_timeout_ms: u64,
    /// Upper clamp for per-request `timeout_ms` overrides.
    pub max_timeout_ms: u64,
    /// Longest accepted request line; longer frames get an `error`
    /// response and the connection is dropped (the stream is no longer
    /// frame-aligned).
    pub max_line_bytes: usize,
    /// Emit one structured access-log line per response to stderr.
    pub access_log: bool,
    /// Seconds between periodic stats summaries on stderr (0 = off).
    pub summary_every_s: u64,
    /// How long `shutdown` waits for in-flight work to drain.
    pub drain_timeout_ms: u64,
    /// Run exactly `workers` threads even when that exceeds the
    /// machine's cores. By default CPU-bound pools are clamped to
    /// `available_parallelism` — extra workers past the core count only
    /// add timeslicing jitter to tail latency (the A7 result). Pools
    /// serving endpoints with an artificial `delay_ms` are never
    /// clamped (those workers sleep, they don't compete for cores).
    pub exact_workers: bool,
    /// Endpoints to load at startup.
    pub endpoints: Vec<EndpointConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 128,
            default_timeout_ms: 5_000,
            max_timeout_ms: 60_000,
            max_line_bytes: 1 << 20,
            access_log: false,
            summary_every_s: 0,
            drain_timeout_ms: 10_000,
            exact_workers: false,
            endpoints: vec![EndpointConfig::default()],
        }
    }
}

fn bad(msg: impl Into<String>) -> String {
    let mut s = String::from("config error: ");
    s.push_str(&msg.into());
    s
}

impl ServerConfig {
    /// Parses a JSON config document; absent fields keep their defaults.
    pub fn from_json_str(src: &str) -> Result<ServerConfig, String> {
        let v = Json::parse(src).map_err(|e| bad(e.to_string()))?;
        let mut cfg = ServerConfig::default();
        if let Some(s) = v.get("addr").and_then(Json::as_str) {
            cfg.addr = s.to_owned();
        }
        let uint = |field: &str| -> Result<Option<u64>, String> {
            match v.get(field) {
                None => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(format!("`{field}` must be a non-negative integer"))),
            }
        };
        if let Some(n) = uint("workers")? {
            cfg.workers = n as usize;
        }
        if let Some(n) = uint("queue_capacity")? {
            cfg.queue_capacity = n as usize;
        }
        if let Some(n) = uint("max_line_bytes")? {
            cfg.max_line_bytes = n as usize;
        }
        if let Some(n) = uint("default_timeout_ms")? {
            cfg.default_timeout_ms = n;
        }
        if let Some(n) = uint("max_timeout_ms")? {
            cfg.max_timeout_ms = n;
        }
        if let Some(n) = uint("summary_every_s")? {
            cfg.summary_every_s = n;
        }
        if let Some(n) = uint("drain_timeout_ms")? {
            cfg.drain_timeout_ms = n;
        }
        if let Some(b) = v.get("access_log") {
            cfg.access_log = b
                .as_bool()
                .ok_or_else(|| bad("`access_log` must be a boolean"))?;
        }
        if let Some(b) = v.get("exact_workers") {
            cfg.exact_workers = b
                .as_bool()
                .ok_or_else(|| bad("`exact_workers` must be a boolean"))?;
        }
        if let Some(eps) = v.get("endpoints") {
            let arr = eps
                .as_arr()
                .ok_or_else(|| bad("`endpoints` must be an array"))?;
            cfg.endpoints = arr
                .iter()
                .map(endpoint_from_json)
                .collect::<Result<_, _>>()?;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reads and parses a JSON config file.
    pub fn from_file(path: &str) -> Result<ServerConfig, String> {
        let src =
            std::fs::read_to_string(path).map_err(|e| bad(format!("reading `{path}`: {e}")))?;
        Self::from_json_str(&src)
    }

    /// Cross-field sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err(bad("`workers` must be ≥ 1"));
        }
        if self.queue_capacity == 0 {
            return Err(bad("`queue_capacity` must be ≥ 1"));
        }
        if self.endpoints.is_empty() {
            return Err(bad("at least one endpoint is required"));
        }
        let mut names: Vec<&str> = self.endpoints.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.endpoints.len() {
            return Err(bad("endpoint names must be unique"));
        }
        if self.endpoints.iter().any(|e| e.name.is_empty()) {
            return Err(bad("endpoint names must be non-empty"));
        }
        for e in &self.endpoints {
            if e.engine.shards.unwrap_or(0) > 1 && e.kind != EndpointKind::UniversityAbox {
                return Err(bad(format!(
                    "endpoint `{}`: `shards` requires kind `university-abox` \
                     (virtual OBDA endpoints delegate evaluation to the SQL sources)",
                    e.name
                )));
            }
            e.engine
                .validate()
                .map_err(|msg| bad(format!("endpoint `{}`: {msg}", e.name)))?;
        }
        Ok(())
    }
}

fn endpoint_from_json(v: &Json) -> Result<EndpointConfig, String> {
    let mut ep = EndpointConfig {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("endpoint missing `name`"))?
            .to_owned(),
        ..EndpointConfig::default()
    };
    match v.get("kind").and_then(Json::as_str) {
        None | Some("university") => ep.kind = EndpointKind::University,
        Some("university-abox") => ep.kind = EndpointKind::UniversityAbox,
        Some(other) => return Err(bad(format!("unknown endpoint kind `{other}`"))),
    }
    if let Some(n) = v.get("scale") {
        ep.scale =
            n.as_u64()
                .ok_or_else(|| bad("`scale` must be a non-negative integer"))? as usize;
    }
    if let Some(n) = v.get("seed") {
        ep.seed = n.as_u64().ok_or_else(|| bad("`seed` must be an integer"))?;
    }
    // Engine options forward through the one parse path
    // (`EngineConfig::set`): the JSON spelling of a mode name is
    // exactly the CLI/builder spelling, and a typo is one error message
    // defined in `mastro`, not a second copy here.
    for &key in ENGINE_CONFIG_KEYS {
        let Some(val) = v.get(key) else { continue };
        let raw = match val {
            Json::Str(s) => s.clone(),
            Json::Bool(b) => String::from(if *b { "true" } else { "false" }),
            _ => val
                .as_u64()
                .map(|n| n.to_string())
                .ok_or_else(|| bad(format!("`{key}` must be a string or non-negative integer")))?,
        };
        ep.engine.set(key, &raw).map_err(bad)?;
    }
    if let Some(n) = v.get("delay_ms") {
        ep.delay_ms = n
            .as_u64()
            .ok_or_else(|| bad("`delay_ms` must be a non-negative integer"))?;
    }
    if let Some(m) = v.get("panic_marker") {
        ep.panic_marker = Some(
            m.as_str()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| bad("`panic_marker` must be a non-empty string"))?
                .to_owned(),
        );
    }
    Ok(ep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = ServerConfig::from_json_str(
            r#"{
              "addr": "127.0.0.1:7077", "workers": 8, "queue_capacity": 16,
              "default_timeout_ms": 1000, "access_log": true,
              "exact_workers": true,
              "endpoints": [
                {"name": "a", "kind": "university", "scale": 3, "seed": 7,
                 "rewriting": "presto", "data": "virtual", "ebox": "on"},
                {"name": "b", "kind": "university-abox", "delay_ms": 5,
                 "shards": 4, "shard_max_inflight": 2}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.queue_capacity, 16);
        assert!(cfg.access_log);
        assert!(cfg.exact_workers);
        assert_eq!(cfg.endpoints.len(), 2);
        assert_eq!(
            cfg.endpoints[0].engine.rewriting,
            Some(RewritingMode::Presto)
        );
        assert_eq!(cfg.endpoints[0].engine.data, Some(DataMode::Virtual));
        assert_eq!(cfg.endpoints[0].engine.ebox, Some(mastro::EboxMode::On));
        // Default (the struct default pins the serving shape, leaves
        // shards to the knob).
        assert_eq!(cfg.endpoints[0].engine.shards, None);
        assert_eq!(cfg.endpoints[1].kind, EndpointKind::UniversityAbox);
        assert_eq!(cfg.endpoints[1].delay_ms, 5);
        assert_eq!(cfg.endpoints[1].engine.shards, Some(4));
        assert_eq!(cfg.endpoints[1].engine.shard_max_inflight, Some(2));
        assert_eq!(cfg.endpoints[1].engine.ebox, None);
    }

    #[test]
    fn rejects_bad_configs() {
        for bad_src in [
            "not json",
            r#"{"workers": 0}"#,
            r#"{"queue_capacity": 0}"#,
            r#"{"endpoints": []}"#,
            r#"{"endpoints": [{"name":"x"},{"name":"x"}]}"#,
            r#"{"endpoints": [{"name":"x","kind":"nope"}]}"#,
            r#"{"endpoints": [{"kind":"university"}]}"#,
            r#"{"workers": "four"}"#,
            r#"{"endpoints": [{"name":"x","kind":"university","shards":4}]}"#,
            r#"{"endpoints": [{"name":"x","shards":"two"}]}"#,
            r#"{"endpoints": [{"name":"x","rewriting":"magic"}]}"#,
            r#"{"endpoints": [{"name":"x","ebox":"sometimes"}]}"#,
            r#"{"exact_workers": 1}"#,
        ] {
            assert!(ServerConfig::from_json_str(bad_src).is_err(), "{bad_src}");
        }
    }

    #[test]
    fn defaults_are_valid() {
        ServerConfig::default().validate().unwrap();
    }
}
