//! Named query endpoints: one loaded ontology/data engine shared by all
//! worker threads.
//!
//! An endpoint owns either a full [`ObdaSystem`] (mappings + SQL
//! sources) or an [`AboxSystem`] (materialized ABox). Both answer
//! through `&self` (the PR-3 concurrency refactor in `mastro::system`),
//! so an `Arc<Endpoint>` is all the sharing machinery the server needs.

use std::sync::atomic::{AtomicU64, Ordering};

use mastro::{
    demo, AboxSystem, Answers, ObdaError, ObdaSystem, QueryParseError, RewriteCacheStats,
};
use obda_genont::university_scenario;

use crate::config::{EndpointConfig, EndpointKind};
use crate::json::Json;
use crate::proto::Lang;

/// The two engine shapes an endpoint can serve.
#[derive(Debug)]
pub enum Engine {
    /// Full OBDA stack: rewriting × (virtual SQL | materialized ABox).
    Obda(ObdaSystem),
    /// Plain ABox evaluation with PerfectRef rewriting.
    Abox(AboxSystem),
}

/// A named, shareable endpoint plus its per-endpoint counters.
#[derive(Debug)]
pub struct Endpoint {
    /// Name clients address.
    pub name: String,
    /// The engine.
    pub engine: Engine,
    /// Artificial pre-evaluation delay (ms) — load-testing knob.
    pub delay_ms: u64,
    /// Fault-injection marker: queries containing it panic in the
    /// worker (see [`EndpointConfig::panic_marker`]).
    pub panic_marker: Option<String>,
    /// Queries answered (any status) against this endpoint.
    pub requests: AtomicU64,
}

impl Endpoint {
    /// Builds the endpoint from its config (classification, data
    /// generation, and materialization all happen here, at startup).
    pub fn build(cfg: &EndpointConfig) -> Result<Endpoint, ObdaError> {
        let scenario = university_scenario(cfg.scale.max(1), cfg.seed);
        let engine = match cfg.kind {
            EndpointKind::University => {
                let sys = demo::build_system(&scenario)?
                    .with_rewriting(cfg.rewriting)
                    .with_data_mode(cfg.data)
                    .with_eval_threads(cfg.eval_threads);
                // Materialize eagerly so the first request doesn't pay
                // for the ABox build.
                if cfg.data == mastro::DataMode::Materialized {
                    sys.materialized_abox()?;
                }
                Engine::Obda(sys)
            }
            EndpointKind::UniversityAbox => {
                let sys = demo::build_system(&scenario)?;
                let mat = sys.materialized_abox()?;
                Engine::Abox(
                    AboxSystem::new(scenario.tbox.clone(), mat.abox.clone())
                        .with_eval_threads(cfg.eval_threads),
                )
            }
        };
        Ok(Endpoint {
            name: cfg.name.clone(),
            engine,
            delay_ms: cfg.delay_ms,
            panic_marker: cfg.panic_marker.clone(),
            requests: AtomicU64::new(0),
        })
    }

    /// Answers one query. `&self` — callable from any worker thread.
    pub fn answer(&self, lang: Lang, query: &str) -> Result<Answers, ObdaError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(marker) = &self.panic_marker {
            if query.contains(marker.as_str()) {
                // lint: allow(R1.panic, "deliberate fault injection behind the panic_marker test knob; the worker's catch_unwind turns it into one error response")
                panic!("injected panic: query matched panic_marker `{marker}`");
            }
        }
        match (&self.engine, lang) {
            (Engine::Obda(sys), Lang::Cq) => sys.answer(query),
            (Engine::Obda(sys), Lang::Sparql) => sys.answer_sparql(query),
            (Engine::Abox(sys), Lang::Cq) => sys.answer(query),
            (Engine::Abox(sys), Lang::Sparql) => sys.answer_sparql(query),
        }
    }

    /// Rewrite-cache counters of the underlying engine.
    pub fn cache_stats(&self) -> RewriteCacheStats {
        match &self.engine {
            Engine::Obda(sys) => sys.rewrite_cache_stats(),
            Engine::Abox(sys) => sys.rewrite_cache_stats(),
        }
    }

    /// Zeroes the rewrite-cache counters (load-test phase boundaries).
    pub fn reset_cache_stats(&self) {
        match &self.engine {
            Engine::Obda(sys) => sys.reset_rewrite_cache_stats(),
            Engine::Abox(sys) => sys.reset_rewrite_cache_stats(),
        }
    }

    /// Per-endpoint `STATS` section.
    pub fn stats_json(&self) -> Json {
        let cache = self.cache_stats();
        Json::obj(vec![
            ("requests", self.requests.load(Ordering::Relaxed).into()),
            ("cache_hits", cache.hits.into()),
            ("cache_misses", cache.misses.into()),
            ("cache_hit_rate", Json::Num(cache.hit_rate())),
        ])
    }
}

/// Surfaces an unknown-endpoint failure with the same error type the
/// engines use.
pub fn unknown_endpoint(name: &str) -> ObdaError {
    ObdaError::Query(QueryParseError {
        message: format!("unknown endpoint `{name}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EndpointConfig;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn endpoints_are_shareable() {
        assert_send_sync::<Endpoint>();
    }

    #[test]
    fn abox_and_obda_endpoints_agree() {
        let obda = Endpoint::build(&EndpointConfig {
            name: "o".into(),
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let abox = Endpoint::build(&EndpointConfig {
            name: "a".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let q = "q(x) :- Student(x)";
        let left = obda.answer(Lang::Cq, q).unwrap();
        let right = abox.answer(Lang::Cq, q).unwrap();
        assert_eq!(left, right);
        assert!(!left.is_empty());
        // SPARQL front-end reaches both engines.
        let s = "SELECT ?x WHERE { ?x a :Student }";
        assert_eq!(obda.answer(Lang::Sparql, s).unwrap(), left);
        assert_eq!(abox.answer(Lang::Sparql, s).unwrap(), left);
        // Cache counters moved and reset works.
        assert!(abox.cache_stats().misses > 0);
        abox.reset_cache_stats();
        assert_eq!(abox.cache_stats(), RewriteCacheStats::default());
    }
}
