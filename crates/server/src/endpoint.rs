//! Named query endpoints: one loaded ontology/data engine shared by all
//! worker threads.
//!
//! An endpoint owns a `Box<dyn QueryEngine>` — the unified answering
//! trait from `mastro::engine` — so a full [`mastro::ObdaSystem`]
//! (mappings + SQL sources), a [`mastro::AboxSystem`] (materialized
//! ABox), or any future backend serves through the same code path.
//! Engines answer through `&self` (the PR-3 concurrency refactor in
//! `mastro::system`), so an `Arc<Endpoint>` is all the sharing
//! machinery the server needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mastro::{
    demo, AboxDelta, Answers, DeltaSummary, ObdaError, QueryEngine, QueryParseError,
    RewriteCacheStats,
};
use obda_genont::university_scenario;
use obda_obs::{TraceCtx, TraceSink};

use crate::config::{EndpointConfig, EndpointKind};
use crate::json::Json;
use crate::proto::Lang;

/// A named, shareable endpoint plus its per-endpoint counters.
#[derive(Debug)]
pub struct Endpoint {
    /// Name clients address.
    pub name: String,
    /// The answering engine.
    pub engine: Box<dyn QueryEngine>,
    /// Artificial pre-evaluation delay (ms) — load-testing knob.
    pub delay_ms: u64,
    /// Fault-injection marker: queries containing it panic in the
    /// worker (see [`EndpointConfig::panic_marker`]).
    pub panic_marker: Option<String>,
    /// Queries answered (any status) against this endpoint.
    pub requests: AtomicU64,
}

impl Endpoint {
    /// Builds the endpoint from its config (classification, data
    /// generation, and materialization all happen here, at startup).
    /// Construction goes through the nested [`mastro::EngineConfig`],
    /// so env knobs (`QUONTO_THREADS`, `QUONTO_TIMINGS`, `QUONTO_EBOX`)
    /// still apply to anything the config leaves unset.
    pub fn build(cfg: &EndpointConfig) -> Result<Endpoint, ObdaError> {
        let scenario = university_scenario(cfg.scale.max(1), cfg.seed);
        let engine: Box<dyn QueryEngine> = match cfg.kind {
            EndpointKind::University => {
                let db = demo::load_database(&scenario)?;
                let mappings = demo::build_mappings(&scenario);
                let sys = cfg.engine.build_obda(scenario.tbox.clone(), mappings, db)?;
                // Materialize eagerly so the first request doesn't pay
                // for the ABox build.
                if cfg.engine.data == Some(mastro::DataMode::Materialized) {
                    sys.materialized_abox()?;
                }
                Box::new(sys)
            }
            EndpointKind::UniversityAbox => {
                let sys = demo::build_system(&scenario)?;
                let mat = sys.materialized_abox()?;
                // Sharded or not, per config and `QUONTO_SHARDS` — the
                // unsharded case is exactly the old `build_abox` path.
                cfg.engine
                    .build_abox_engine(scenario.tbox.clone(), mat.abox.clone())
            }
        };
        Ok(Endpoint {
            name: cfg.name.clone(),
            engine,
            delay_ms: cfg.delay_ms,
            panic_marker: cfg.panic_marker.clone(),
            requests: AtomicU64::new(0),
        })
    }

    /// Answers one query, recording phase spans on `ctx`. `&self` —
    /// callable from any worker thread.
    pub fn answer_traced(
        &self,
        lang: Lang,
        query: &str,
        ctx: &TraceCtx,
    ) -> Result<Answers, ObdaError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(marker) = &self.panic_marker {
            if query.contains(marker.as_str()) {
                // lint: allow(R1.panic, "deliberate fault injection behind the panic_marker test knob; the worker's catch_unwind turns it into one error response")
                panic!("injected panic: query matched panic_marker `{marker}`");
            }
        }
        self.engine.answer_traced(lang.to_engine(), query, ctx)
    }

    /// Answers one query without collecting a trace.
    pub fn answer(&self, lang: Lang, query: &str) -> Result<Answers, ObdaError> {
        self.answer_traced(lang, query, &TraceCtx::disabled())
    }

    /// Applies one delta batch through the engine's incremental write
    /// path, recording `write.*` spans on `ctx`. `&self` — writes go
    /// through the same worker pool as queries. Engines without a
    /// writable store (virtual-mode OBDA) answer
    /// [`ObdaError::Unsupported`].
    pub fn apply_delta_traced(
        &self,
        delta: &AboxDelta,
        ctx: &TraceCtx,
    ) -> Result<DeltaSummary, ObdaError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.engine.apply_delta_traced(delta, ctx)
    }

    /// Applies one delta batch without collecting a trace.
    pub fn apply_delta(&self, delta: &AboxDelta) -> Result<DeltaSummary, ObdaError> {
        self.apply_delta_traced(delta, &TraceCtx::disabled())
    }

    /// The engine's trace sink (finished worker traces publish here).
    pub fn trace_sink(&self) -> Arc<dyn TraceSink> {
        self.engine.trace_sink()
    }

    /// Rewrite-cache counters of the underlying engine.
    pub fn cache_stats(&self) -> RewriteCacheStats {
        self.engine.stats().rewrite_cache
    }

    /// Zeroes the engine's resettable counters (load-test phase
    /// boundaries).
    pub fn reset_cache_stats(&self) {
        self.engine.reset_stats();
    }

    /// Per-endpoint `STATS` section. The `cache_*` keys are the rollup
    /// across coordinator and shards (one pair of numbers, same as the
    /// unsharded shape) so existing dashboards and `loadgen` parsing
    /// keep working; per-shard detail rides alongside in `shard_detail`
    /// when the endpoint is sharded.
    pub fn stats_json(&self) -> Json {
        let stats = self.engine.stats();
        let cache = stats.rewrite_cache;
        let mut fields = vec![
            ("requests", self.requests.load(Ordering::Relaxed).into()),
            ("rewriting", stats.rewriting.into()),
            ("data", stats.data.into()),
            ("eval_threads", stats.eval_threads.into()),
            ("tbox_epoch", stats.tbox_epoch.into()),
            ("shards", stats.shards.into()),
            ("ebox", stats.ebox.into()),
            ("ebox_constraints", stats.ebox_constraints.into()),
            ("cache_hits", cache.hits.into()),
            ("cache_misses", cache.misses.into()),
            ("cache_hit_rate", Json::Num(cache.hit_rate())),
        ];
        let per_shard = self.engine.shard_stats();
        if !per_shard.is_empty() {
            let detail = per_shard
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("shard", s.shard.into()),
                        ("individuals", s.individuals.into()),
                        ("facts", s.facts.into()),
                        ("requests", s.requests.into()),
                        ("max_inflight", s.max_inflight.into()),
                        ("inflight_high_water", s.inflight_high_water.into()),
                        ("gate_waits", s.gate_waits.into()),
                    ])
                })
                .collect();
            fields.push(("shard_detail", Json::Arr(detail)));
        }
        Json::obj(fields)
    }
}

/// Surfaces an unknown-endpoint failure with the same error type the
/// engines use.
pub fn unknown_endpoint(name: &str) -> ObdaError {
    ObdaError::Query(QueryParseError {
        message: format!("unknown endpoint `{name}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EndpointConfig;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn endpoints_are_shareable() {
        assert_send_sync::<Endpoint>();
    }

    #[test]
    fn abox_and_obda_endpoints_agree() {
        let obda = Endpoint::build(&EndpointConfig {
            name: "o".into(),
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let abox = Endpoint::build(&EndpointConfig {
            name: "a".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let q = "q(x) :- Student(x)";
        let left = obda.answer(Lang::Cq, q).unwrap();
        let right = abox.answer(Lang::Cq, q).unwrap();
        assert_eq!(left, right);
        assert!(!left.is_empty());
        // SPARQL front-end reaches both engines.
        let s = "SELECT ?x WHERE { ?x a :Student }";
        assert_eq!(obda.answer(Lang::Sparql, s).unwrap(), left);
        assert_eq!(abox.answer(Lang::Sparql, s).unwrap(), left);
        // Cache counters moved and reset works.
        assert!(abox.cache_stats().misses > 0);
        abox.reset_cache_stats();
        assert_eq!(abox.cache_stats(), RewriteCacheStats::default());
    }

    #[test]
    fn sharded_endpoint_agrees_with_unsharded() {
        let plain = Endpoint::build(&EndpointConfig {
            name: "a".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let base = EndpointConfig::default();
        let sharded = Endpoint::build(&EndpointConfig {
            name: "s".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            engine: base.engine.clone().shards(4).shard_max_inflight(2),
            ..base
        })
        .unwrap();
        for q in [
            "q(x) :- Student(x)",
            "q(x, y) :- takesCourse(x, y)",
            "q(x, y) :- Professor(x), teacherOf(x, y), GradCourse(y)",
            "q(x) :- GradStudent(x), takesCourse(x, y), teacherOf(z, y), FullProfessor(z)",
        ] {
            assert_eq!(
                sharded.answer(Lang::Cq, q).unwrap(),
                plain.answer(Lang::Cq, q).unwrap(),
                "{q}"
            );
        }
        let stats = sharded.stats_json();
        assert_eq!(stats.get("shards").and_then(Json::as_u64), Some(4));
        let detail = stats
            .get("shard_detail")
            .and_then(Json::as_arr)
            .expect("sharded endpoint exposes shard_detail");
        assert_eq!(detail.len(), 4);
        // The rollup keys keep the unsharded shape.
        assert!(stats.get("cache_hit_rate").is_some());
        assert!(plain.stats_json().get("shard_detail").is_none());
    }

    #[test]
    fn traced_answers_carry_phases() {
        let ep = Endpoint::build(&EndpointConfig {
            name: "t".into(),
            scale: 1,
            ..EndpointConfig::default()
        })
        .unwrap();
        let ctx = TraceCtx::new();
        let answers = ep
            .answer_traced(Lang::Cq, "q(x) :- Student(x)", &ctx)
            .unwrap();
        let trace = ctx.finish("ok", answers.len() as u64).unwrap();
        let phases: Vec<&str> = trace.phases().iter().map(|(n, _)| *n).collect();
        assert!(phases.contains(&"parse"), "{phases:?}");
        assert!(phases.contains(&"rewrite"), "{phases:?}");
        assert!(phases.len() >= 3, "{phases:?}");
    }
}
