//! # obda-server
//!
//! The serving layer of the OBDA stack: a std-only threaded TCP server
//! exposing [`mastro`]'s query API (`ObdaSystem` / `AboxSystem`) over a
//! newline-delimited JSON protocol, with the operational machinery a
//! query service actually needs:
//!
//! * **shared-state concurrency** — endpoints are `Arc`-shared across N
//!   worker threads; one loaded ontology serves every client (the
//!   `&self` answer-path refactor in `mastro::system` makes the engines
//!   `Sync`, with rewrite caches behind locks and the materialized ABox
//!   behind an `Arc`);
//! * **admission control** — a bounded request queue; a full queue
//!   answers `overloaded` immediately (backpressure, not collapse);
//! * **deadlines** — per-request timeouts that abandon slow work and
//!   answer `timeout`;
//! * **robustness** — malformed frames, invalid UTF-8, nesting bombs,
//!   and panicking queries cost one error response, never a worker;
//! * **observability** — atomic counters, a log₂ latency histogram
//!   (p50/p95/p99), per-endpoint rewrite-cache hit rates, a `STATS`
//!   protocol verb (including the process-wide metrics registry), a
//!   `TRACE` verb serving per-query phase traces from the in-process
//!   ring, structured `kind`s on error responses, structured
//!   access-log lines, and a periodic summary;
//! * **graceful shutdown** — SIGINT/SIGTERM stop admissions, drain
//!   in-flight requests, then exit.
//!
//! Run it: `cargo run --release -p obda-server --bin quonto-server`,
//! drive it with `obda-bench`'s `loadgen`, or talk to it by hand:
//!
//! ```text
//! $ printf '{"endpoint":"uni","query":"q(x) :- Student(x)"}\nSTATS\n' | nc 127.0.0.1 7077
//! ```
//!
//! See DESIGN.md ("Serving layer") for the protocol and threading model.

pub mod config;
pub mod endpoint;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod signal;

pub use config::{EndpointConfig, EndpointKind, ServerConfig};
pub use endpoint::Endpoint;
pub use json::Json;
pub use metrics::{Histogram, ServerMetrics};
pub use proto::{parse_request, Lang, QueryRequest, Request, WriteRequest};
pub use server::Server;
