//! The threaded TCP serving core.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──► connection threads (1 per client, frame parsing + I/O)
//!                   │  bounded queue (admission control)
//!                   ▼
//!              worker threads (N, query execution)
//! ```
//!
//! Connection threads parse frames and *wait* on a per-request channel;
//! workers execute queries against the shared endpoints. The split
//! means slow clients never occupy a worker, and the bounded queue is
//! the single admission-control point: when it is full the connection
//! thread answers `overloaded` immediately instead of queueing
//! unbounded work (fail fast beats collapse under load).
//!
//! ## Deadlines
//!
//! Every request carries a deadline (`timeout_ms`, defaulting from
//! config). The connection thread waits for the worker only until the
//! deadline (plus a small grace window for replies racing the timer)
//! and then answers `timeout`, marking the job cancelled. A cancelled
//! job that is still queued is skipped entirely; one already running is
//! abandoned — its result is dropped when the worker finds the receiver
//! gone.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor, closes the queue to new
//! admissions (late arrivals get `shutting_down`), lets the workers
//! drain everything already admitted, and [`Server::join`] waits for
//! connection threads to finish writing their final responses (bounded
//! by `drain_timeout_ms`).

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use quonto::sync::{lock_or_recover, wait_timeout_or_recover};

use crate::config::ServerConfig;
use crate::endpoint::Endpoint;
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::proto::{
    self, error_response, ok_response, overloaded_response, parse_request, shutting_down_response,
    timeout_response, trace_response, write_ok_response, QueryRequest, Request, WriteRequest,
};
use crate::signal;

/// How often blocked loops re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(50);

/// Extra wait past the deadline before the connection thread gives up
/// on the worker: absorbs scheduling jitter so a reply produced *at*
/// the deadline still gets delivered instead of racing the timer.
const DEADLINE_GRACE: Duration = Duration::from_millis(100);

/// What a worker sends back to the waiting connection thread (timing
/// detail rides inside `json`; the envelope carries what the metrics
/// and access log need).
struct WorkerReply {
    json: Json,
    status: &'static str,
    rows: usize,
}

/// What an admitted request asks a worker to do: answer a query or
/// apply a write batch. Both flow through the same queue, deadline, and
/// panic-isolation machinery — admission control does not distinguish
/// reads from writes.
enum WorkItem {
    Query(QueryRequest),
    Write(WriteRequest),
}

impl WorkItem {
    fn id(&self) -> &Option<String> {
        match self {
            WorkItem::Query(q) => &q.id,
            WorkItem::Write(w) => &w.id,
        }
    }

    fn endpoint(&self) -> &str {
        match self {
            WorkItem::Query(q) => &q.endpoint,
            WorkItem::Write(w) => &w.endpoint,
        }
    }

    /// The access-log / trace tag for the request flavor: the query
    /// language, or `write`.
    fn kind_str(&self) -> &'static str {
        match self {
            WorkItem::Query(q) => q.lang.as_str(),
            WorkItem::Write(_) => "write",
        }
    }

    fn timeout_ms(&self) -> Option<u64> {
        match self {
            WorkItem::Query(q) => q.timeout_ms,
            WorkItem::Write(w) => w.timeout_ms,
        }
    }

    /// The line recorded as the trace's query text.
    fn trace_text(&self) -> String {
        match self {
            WorkItem::Query(q) => q.query.clone(),
            WorkItem::Write(w) => format!(
                "WRITE insert={} delete={}",
                w.delta.inserts.len(),
                w.delta.deletes.len()
            ),
        }
    }
}

/// One admitted request (query or write), queued for a worker.
struct Job {
    work: WorkItem,
    endpoint: Arc<Endpoint>,
    admitted: Instant,
    deadline: Instant,
    cancelled: Arc<AtomicBool>,
    resp_tx: SyncSender<WorkerReply>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    open: bool,
}

/// Bounded MPMC job queue (mutex + condvar; the queue holds dozens of
/// entries, not millions — contention on the lock is dwarfed by query
/// execution).
///
/// Lock-order note: `JobQueue.inner` is acquired strictly before any
/// engine-side lock (workers pop a job, *release* the queue, then run
/// the query) — `xtask analyze` derives this order from the acquisition
/// paths and would flag any new path that holds `inner` into engine
/// code as an `A1.inversion`.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

enum PushRejection {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits a job unless the queue is full or closed. Returns the
    /// depth after the push.
    fn try_push(&self, job: Job) -> Result<usize, PushRejection> {
        let mut inner = lock_or_recover(&self.inner);
        if !inner.open {
            return Err(PushRejection::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushRejection::Full);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job. `None` once the queue is closed *and*
    /// drained — the worker-exit condition.
    fn pop(&self) -> Option<(Job, usize)> {
        let mut inner = lock_or_recover(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                let depth = inner.jobs.len();
                return Some((job, depth));
            }
            if !inner.open {
                return None;
            }
            let (guard, _) = wait_timeout_or_recover(&self.ready, inner, TICK);
            inner = guard;
        }
    }

    /// Closes admission; queued jobs still drain.
    fn close(&self) {
        lock_or_recover(&self.inner).open = false;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        lock_or_recover(&self.inner).jobs.len()
    }
}

/// State shared by every thread of one server instance.
struct Shared {
    cfg: ServerConfig,
    /// Worker threads actually running (after the CPU clamp — see
    /// [`effective_workers`]); `STATS` reports this, not the configured
    /// number, so load tools see the real pool size.
    workers: usize,
    endpoints: HashMap<String, Arc<Endpoint>>,
    queue: JobQueue,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The `STATS` response body.
    fn stats_json(&self) -> Json {
        // Refresh the gauge from the live queue so STATS never shows a
        // stale depth.
        self.metrics
            .queue_depth
            .store(self.queue.depth(), Ordering::Relaxed);
        let mut endpoints: Vec<(String, Json)> = self
            .endpoints
            .values()
            .map(|ep| (ep.name.clone(), ep.stats_json()))
            .collect();
        endpoints.sort_by(|a, b| a.0.cmp(&b.0));
        Json::obj(vec![
            ("status", "ok".into()),
            ("server", self.metrics.to_json()),
            ("workers", self.workers.into()),
            ("queue_capacity", self.cfg.queue_capacity.into()),
            ("endpoints", Json::Obj(endpoints)),
            ("registry", registry_json()),
        ])
    }
}

/// The process-wide metrics registry rendered for `STATS`: every named
/// counter plus a digest of every named histogram.
fn registry_json() -> Json {
    let reg = obda_obs::registry();
    let counters = Json::Obj(
        reg.counters()
            .into_iter()
            .map(|(name, value)| (name, Json::from(value)))
            .collect(),
    );
    let histograms = Json::Obj(
        reg.histograms()
            .into_iter()
            .map(|(name, h)| {
                (
                    name,
                    Json::obj(vec![
                        ("count", h.count.into()),
                        ("mean_us", Json::Num(h.mean_us)),
                        ("p50_us", h.p50_us.into()),
                        ("p95_us", h.p95_us.into()),
                        ("p99_us", h.p99_us.into()),
                        ("max_us", h.max_us.into()),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![("counters", counters), ("histograms", histograms)])
}

/// The worker-pool size the server actually runs.
///
/// CPU-bound query workers past the core count cannot add throughput —
/// they compete for the same cores and the extra timeslicing shows up
/// directly as p95/p99 creep (the A7 measurement). So the pool is
/// clamped to `available_parallelism` unless:
///
/// - `exact_workers` is set (the explicit operator override), or
/// - any endpoint injects an artificial `delay_ms` — those workers
///   *sleep* rather than compute, and the load-test scenarios that use
///   the knob need the configured concurrency exactly.
fn effective_workers(cfg: &ServerConfig) -> usize {
    if cfg.exact_workers || cfg.endpoints.iter().any(|e| e.delay_ms > 0) {
        return cfg.workers;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(cfg.workers);
    cfg.workers.min(cores).max(1)
}

/// A running server: listener + workers over a set of loaded endpoints.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds every endpoint (classification, data generation,
    /// materialization), binds the listener, and spawns the acceptor,
    /// worker, and summary threads.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        cfg.validate()?;
        let mut endpoints = HashMap::new();
        for ep_cfg in &cfg.endpoints {
            let ep = Endpoint::build(ep_cfg)
                .map_err(|e| format!("endpoint `{}` failed to load: {e}", ep_cfg.name))?;
            endpoints.insert(ep_cfg.name.clone(), Arc::new(ep));
        }
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {} failed: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr failed: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking failed: {e}"))?;

        let workers = effective_workers(&cfg);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            workers,
            endpoints,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            cfg,
        });

        let mut threads = Vec::new();
        for i in 0..shared.workers {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("obda-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("obda-acceptor".into())
                    .spawn(move || acceptor_loop(&s, listener))
                    .map_err(|e| format!("spawn acceptor: {e}"))?,
            );
        }
        if shared.cfg.summary_every_s > 0 {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("obda-summary".into())
                    .spawn(move || summary_loop(&s))
                    .map_err(|e| format!("spawn summary: {e}"))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown: stop accepting, close admissions, drain.
    /// Idempotent; returns immediately (pair with [`Self::join`]).
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            self.shared.queue.close();
        }
    }

    /// Waits until all workers drained, then for connection threads to
    /// flush their final responses (bounded by `drain_timeout_ms`).
    /// Call after [`Self::shutdown`] (it will signal it if not).
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let drain_deadline =
            Instant::now() + Duration::from_millis(self.shared.cfg.drain_timeout_ms);
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Serves until a SIGINT/SIGTERM arrives (or
    /// [`signal::request_shutdown`] is called), then drains and joins.
    pub fn run_until_signal(self) {
        signal::install_handlers();
        while !signal::shutdown_requested() && !self.shared.shutting_down() {
            std::thread::sleep(TICK);
        }
        // lint: allow(R6.print, "operator-facing shutdown notice on the server's own stderr, not library timing output")
        eprintln!(
            "obda-server draining: {}",
            self.shared.metrics.summary_line()
        );
        self.shutdown();
        self.join();
    }

    /// Metrics snapshot (the same JSON the `STATS` verb returns).
    pub fn stats_json(&self) -> Json {
        self.shared.stats_json()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped server must not leave threads spinning.
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                shared.metrics.active_connections.store(
                    shared.active_conns.load(Ordering::SeqCst),
                    Ordering::Relaxed,
                );
                let s = Arc::clone(shared);
                let spawned =
                    std::thread::Builder::new()
                        .name("obda-conn".into())
                        .spawn(move || {
                            connection_loop(&s, stream);
                            s.active_conns.fetch_sub(1, Ordering::SeqCst);
                            s.metrics
                                .active_connections
                                .store(s.active_conns.load(Ordering::SeqCst), Ordering::Relaxed);
                        });
                if spawned.is_err() {
                    // Thread spawn failed (fd/thread exhaustion): the
                    // stream drops (connection refused-by-close) and the
                    // gauge is restored.
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
            Err(_) => std::thread::sleep(TICK),
        }
    }
}

fn summary_loop(shared: &Arc<Shared>) {
    let every = Duration::from_secs(shared.cfg.summary_every_s);
    let mut last = Instant::now();
    while !shared.shutting_down() {
        std::thread::sleep(TICK);
        if last.elapsed() >= every {
            // lint: allow(R6.print, "periodic operator summary, opt-in via summary_every_s config")
            eprintln!("{}", shared.metrics.summary_line());
            last = Instant::now();
        }
    }
}

/// Writes one response line; returns `false` when the client is gone.
fn write_response(stream: &mut TcpStream, json: &Json) -> bool {
    let mut line = json.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}

fn access_log(
    shared: &Shared,
    endpoint: &str,
    lang: &str,
    status: &str,
    rows: usize,
    total_us: u64,
) {
    if shared.cfg.access_log {
        // lint: allow(R6.print, "structured access log, opt-in via access_log config")
        eprintln!(
            "access endpoint={endpoint} lang={lang} status={status} rows={rows} total_us={total_us}"
        );
    }
}

/// Per-connection frame loop: newline-split with our own buffer (not
/// `BufReader::read_line`, which loses bytes across read timeouts). Read
/// timeouts double as shutdown-check ticks.
fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8 * 1024];
    loop {
        // Drain complete frames already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=nl).collect();
            // lint: allow(R1.index, "frame ends at the newline found above, so len >= 1 and the range is in bounds")
            if !process_frame(shared, &mut stream, &frame[..frame.len() - 1]) {
                return;
            }
        }
        if buf.len() > shared.cfg.max_line_bytes {
            // The stream can't be re-aligned to frame boundaries once a
            // line overflows; answer and hang up.
            shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                &error_response(&None, "bad_request", "frame too long"),
            );
            return;
        }
        if shared.shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            // lint: allow(R1.index, "Read::read contract guarantees n <= chunk.len()")
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one frame; returns `false` to drop the connection.
fn process_frame(shared: &Arc<Shared>, stream: &mut TcpStream, raw: &[u8]) -> bool {
    let metrics = &shared.metrics;
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s,
        Err(_) => {
            metrics.malformed.fetch_add(1, Ordering::Relaxed);
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return write_response(
                stream,
                &error_response(&None, "bad_request", "bad frame: invalid utf-8"),
            );
        }
    };
    if line.trim().is_empty() {
        return true; // blank keep-alive lines are fine
    }
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            metrics.malformed.fetch_add(1, Ordering::Relaxed);
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return write_response(stream, &error_response(&None, "bad_request", &msg));
        }
    };
    match req {
        Request::Stats => {
            metrics.stats_requests.fetch_add(1, Ordering::Relaxed);
            write_response(stream, &shared.stats_json())
        }
        Request::Trace(n) => {
            metrics.trace_requests.fetch_add(1, Ordering::Relaxed);
            let traces = obda_obs::ring::global().last(n.unwrap_or(1));
            write_response(stream, &trace_response(&traces))
        }
        Request::Query(q) => handle_work(shared, stream, WorkItem::Query(q)),
        Request::Write(w) => handle_work(shared, stream, WorkItem::Write(w)),
    }
}

fn handle_work(shared: &Arc<Shared>, stream: &mut TcpStream, work: WorkItem) -> bool {
    let metrics = &shared.metrics;
    let id = work.id().clone();
    let endpoint_name = work.endpoint().to_owned();
    let kind = work.kind_str();
    let endpoint = match shared.endpoints.get(&endpoint_name) {
        Some(ep) => Arc::clone(ep),
        None => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            let msg = proto::engine_error_text(&crate::endpoint::unknown_endpoint(&endpoint_name));
            let resp = error_response(&id, "unknown_endpoint", &msg);
            access_log(shared, &endpoint_name, kind, "error", 0, 0);
            return write_response(stream, &resp);
        }
    };
    if shared.shutting_down() {
        metrics.shed_on_shutdown.fetch_add(1, Ordering::Relaxed);
        return write_response(stream, &shutting_down_response(&id));
    }

    let admitted = Instant::now();
    let timeout_ms = work
        .timeout_ms()
        .unwrap_or(shared.cfg.default_timeout_ms)
        .min(shared.cfg.max_timeout_ms);
    let deadline = admitted + Duration::from_millis(timeout_ms);
    let cancelled = Arc::new(AtomicBool::new(false));
    let (resp_tx, resp_rx) = sync_channel::<WorkerReply>(1);
    let job = Job {
        endpoint,
        admitted,
        deadline,
        cancelled: Arc::clone(&cancelled),
        resp_tx,
        work,
    };

    match shared.queue.try_push(job) {
        Err(PushRejection::Full) => {
            metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            access_log(shared, &endpoint_name, kind, "overloaded", 0, 0);
            return write_response(stream, &overloaded_response(&id));
        }
        Err(PushRejection::Closed) => {
            metrics.shed_on_shutdown.fetch_add(1, Ordering::Relaxed);
            return write_response(stream, &shutting_down_response(&id));
        }
        Ok(depth) => {
            metrics.admitted.fetch_add(1, Ordering::Relaxed);
            metrics.queue_depth.store(depth, Ordering::Relaxed);
            metrics.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        }
    }

    // Wait for the worker, but never past the deadline (+grace).
    let wait = deadline
        .saturating_duration_since(Instant::now())
        .saturating_add(DEADLINE_GRACE);
    let (resp, status, rows) = match resp_rx.recv_timeout(wait) {
        Ok(reply) => (reply.json, reply.status, reply.rows),
        Err(RecvTimeoutError::Timeout) => {
            cancelled.store(true, Ordering::SeqCst);
            (timeout_response(&id), "timeout", 0)
        }
        Err(RecvTimeoutError::Disconnected) => (
            error_response(
                &id,
                "internal",
                "internal error: worker dropped the request",
            ),
            "error",
            0,
        ),
    };
    let total_us = admitted.elapsed().as_micros() as u64;
    match status {
        "ok" => metrics.ok.fetch_add(1, Ordering::Relaxed),
        "timeout" => metrics.timeouts.fetch_add(1, Ordering::Relaxed),
        _ => metrics.errors.fetch_add(1, Ordering::Relaxed),
    };
    metrics.latency.record(total_us);
    access_log(shared, &endpoint_name, kind, status, rows, total_us);
    write_response(stream, &resp)
}

/// Burns `delay_ms` of simulated work in cancel-aware slices, measured
/// from execution start (queue wait does not count — the knob models
/// work a worker must do, not elapsed request age). Returns `false` if
/// the job was cancelled or its deadline passed mid-sleep.
fn interruptible_delay(job: &Job, delay_ms: u64) -> bool {
    let until = Instant::now() + Duration::from_millis(delay_ms);
    while Instant::now() < until {
        if job.cancelled.load(Ordering::SeqCst) || Instant::now() >= job.deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    !job.cancelled.load(Ordering::SeqCst) && Instant::now() < job.deadline
}

/// What one unit of worker execution produced (queries answer rows;
/// writes answer a delta summary).
enum ExecOutput {
    Answers(mastro::Answers),
    Applied(mastro::DeltaSummary),
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((job, depth)) = shared.queue.pop() {
        shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
        if job.cancelled.load(Ordering::SeqCst) {
            continue; // connection thread already answered `timeout`
        }
        let wait_us = job.admitted.elapsed().as_micros() as u64;
        if Instant::now() >= job.deadline {
            // Expired while queued: cheap timeout, no evaluation at all.
            let _ = job.resp_tx.send(WorkerReply {
                json: timeout_response(job.work.id()),
                status: "timeout",
                rows: 0,
            });
            continue;
        }
        if job.endpoint.delay_ms > 0 && !interruptible_delay(&job, job.endpoint.delay_ms) {
            let _ = job.resp_tx.send(WorkerReply {
                json: timeout_response(job.work.id()),
                status: "timeout",
                rows: 0,
            });
            continue;
        }
        let t = Instant::now();
        // Collect a trace when anyone will consume it: the global ring
        // (the `TRACE` verb) or the endpoint's sink (`QUONTO_TIMINGS`).
        // With both off the context is the disabled no-op.
        let sink = job.endpoint.trace_sink();
        let ctx = if obda_obs::ring::global().is_enabled() || sink.enabled() {
            obda_obs::TraceCtx::new()
        } else {
            obda_obs::TraceCtx::disabled()
        };
        ctx.set_query(job.work.trace_text());
        ctx.tag("endpoint", job.endpoint.name.clone());
        // A panicking request (engine bug, adversarial input) must take
        // down one request, not the worker.
        let outcome = catch_unwind(AssertUnwindSafe(|| match &job.work {
            WorkItem::Query(q) => job
                .endpoint
                .answer_traced(q.lang, &q.query, &ctx)
                .map(ExecOutput::Answers),
            WorkItem::Write(w) => job
                .endpoint
                .apply_delta_traced(&w.delta, &ctx)
                .map(ExecOutput::Applied),
        }));
        let exec_us = t.elapsed().as_micros() as u64;
        let id = job.work.id();
        let reply = {
            let _serialize = ctx.span("serialize");
            match outcome {
                Ok(Ok(ExecOutput::Answers(answers))) => WorkerReply {
                    rows: answers.len(),
                    json: ok_response(id, &answers, wait_us, exec_us),
                    status: "ok",
                },
                Ok(Ok(ExecOutput::Applied(summary))) => WorkerReply {
                    rows: summary.inserted + summary.deleted,
                    json: write_ok_response(id, &summary, wait_us, exec_us),
                    status: "ok",
                },
                Ok(Err(e)) => WorkerReply {
                    json: error_response(id, e.kind(), &proto::engine_error_text(&e)),
                    status: "error",
                    rows: 0,
                },
                Err(_) => WorkerReply {
                    json: error_response(id, "panic", "internal error: request execution panicked"),
                    status: "error",
                    rows: 0,
                },
            }
        };
        if let Some(trace) = ctx.finish(reply.status, reply.rows as u64) {
            obda_obs::submit(trace, &*sink);
        }
        // Receiver gone = client timed out or hung up; drop the result.
        let _ = job.resp_tx.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_clamp_respects_cores_and_overrides() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut cfg = ServerConfig {
            workers: cores + 8,
            ..ServerConfig::default()
        };
        assert_eq!(effective_workers(&cfg), cores, "CPU-bound pools clamp");
        cfg.exact_workers = true;
        assert_eq!(effective_workers(&cfg), cores + 8, "override wins");
        cfg.exact_workers = false;
        cfg.endpoints[0].delay_ms = 5;
        assert_eq!(
            effective_workers(&cfg),
            cores + 8,
            "sleeping pools are never clamped"
        );
        cfg.endpoints[0].delay_ms = 0;
        cfg.workers = 1;
        assert_eq!(effective_workers(&cfg), 1, "never below the config");
    }

    #[test]
    fn queue_rejects_when_full_and_drains_after_close() {
        let q = JobQueue::new(2);
        let mk = |name: &str| {
            let (tx, _rx) = sync_channel(1);
            // _rx dropped: sends fail silently, which is fine here.
            Job {
                work: WorkItem::Query(QueryRequest {
                    id: Some(name.into()),
                    endpoint: "e".into(),
                    lang: crate::proto::Lang::Cq,
                    query: "q".into(),
                    timeout_ms: None,
                }),
                endpoint: Arc::new(
                    crate::endpoint::Endpoint::build(&crate::config::EndpointConfig {
                        scale: 1,
                        ..Default::default()
                    })
                    .unwrap(),
                ),
                admitted: Instant::now(),
                deadline: Instant::now() + Duration::from_secs(1),
                cancelled: Arc::new(AtomicBool::new(false)),
                resp_tx: tx,
            }
        };
        assert_eq!(q.try_push(mk("a")).ok(), Some(1));
        assert_eq!(q.try_push(mk("b")).ok(), Some(2));
        assert!(matches!(q.try_push(mk("c")), Err(PushRejection::Full)));
        q.close();
        assert!(matches!(q.try_push(mk("d")), Err(PushRejection::Closed)));
        // Close drains: both queued jobs still pop, then None.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        assert_eq!(q.depth(), 0);
    }
}
