//! Lock-free serving metrics: atomic counters, gauges, and the log₂
//! latency histogram from `obda-obs`.
//!
//! Everything here is written on the hot path, so the design rule is
//! "one relaxed atomic op per event". The [`Histogram`] type moved to
//! the shared observability crate (`obda_obs::Histogram`) so the same
//! implementation backs the server `STATS` verb and the process-wide
//! metrics registry; it is re-exported here for compatibility.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

pub use obda_obs::Histogram;

use crate::json::Json;

/// Global serving counters. Response-status counters are bumped at the
/// single point where the response line is written, so they partition
/// the request stream exactly.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    /// Requests admitted to the queue.
    pub admitted: AtomicU64,
    /// `ok` responses.
    pub ok: AtomicU64,
    /// `error` responses (parse failures, unknown endpoint, engine errors).
    pub errors: AtomicU64,
    /// `timeout` responses.
    pub timeouts: AtomicU64,
    /// `overloaded` rejections (bounded queue full).
    pub overloaded: AtomicU64,
    /// `shutting_down` rejections.
    pub shed_on_shutdown: AtomicU64,
    /// Frames that failed protocol parsing (subset of `errors`).
    pub malformed: AtomicU64,
    /// `STATS` requests served.
    pub stats_requests: AtomicU64,
    /// `TRACE` requests served.
    pub trace_requests: AtomicU64,
    /// Connections accepted over the lifetime.
    pub connections: AtomicU64,
    /// Currently open connections.
    pub active_connections: AtomicUsize,
    /// Current bounded-queue depth.
    pub queue_depth: AtomicUsize,
    /// High-water mark of the queue depth.
    pub queue_high_water: AtomicUsize,
    /// End-to-end latency (admission to response write), microseconds.
    pub latency: Histogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            started: Instant::now(),
            admitted: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shed_on_shutdown: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            trace_requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            latency: Histogram::new(),
        }
    }
}

impl ServerMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Completed requests per second over the whole uptime.
    pub fn qps(&self) -> f64 {
        let up = self.uptime_s();
        if up <= 0.0 {
            0.0
        } else {
            self.latency.count() as f64 / up
        }
    }

    /// The `STATS` body (global section; the server appends endpoints).
    pub fn to_json(&self) -> Json {
        let r = Ordering::Relaxed;
        Json::obj(vec![
            ("uptime_s", Json::Num(self.uptime_s())),
            ("qps", Json::Num(self.qps())),
            ("admitted", self.admitted.load(r).into()),
            ("ok", self.ok.load(r).into()),
            ("errors", self.errors.load(r).into()),
            ("timeouts", self.timeouts.load(r).into()),
            ("overloaded", self.overloaded.load(r).into()),
            ("shutting_down", self.shed_on_shutdown.load(r).into()),
            ("malformed", self.malformed.load(r).into()),
            ("trace_requests", self.trace_requests.load(r).into()),
            ("connections", self.connections.load(r).into()),
            ("active_connections", self.active_connections.load(r).into()),
            ("queue_depth", self.queue_depth.load(r).into()),
            ("queue_high_water", self.queue_high_water.load(r).into()),
            ("p50_us", self.latency.percentile_us(50.0).into()),
            ("p95_us", self.latency.percentile_us(95.0).into()),
            ("p99_us", self.latency.percentile_us(99.0).into()),
            ("max_us", self.latency.max_us().into()),
            ("mean_us", Json::Num(self.latency.mean_us())),
        ])
    }

    /// One-line human summary for the periodic log.
    pub fn summary_line(&self) -> String {
        let r = Ordering::Relaxed;
        format!(
            "obda-server stats uptime_s={:.0} qps={:.1} ok={} errors={} timeouts={} overloaded={} queue_depth={} conns={} p50_us={} p95_us={} p99_us={}",
            self.uptime_s(),
            self.qps(),
            self.ok.load(r),
            self.errors.load(r),
            self.timeouts.load(r),
            self.overloaded.load(r),
            self.queue_depth.load(r),
            self.active_connections.load(r),
            self.latency.percentile_us(50.0),
            self.latency.percentile_us(95.0),
            self.latency.percentile_us(99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 1000, 2000, 4000, 100_000, 200_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_us(50.0);
        assert!((8..=64).contains(&p50), "p50={p50}");
        let p99 = h.percentile_us(99.0);
        assert!(p99 >= 100_000, "p99={p99}");
        assert_eq!(h.max_us(), 200_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(99.0), 0);
    }

    #[test]
    fn zero_latency_records_into_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile_us(50.0) <= 3);
    }

    #[test]
    fn metrics_json_shape() {
        let m = ServerMetrics::new();
        m.ok.fetch_add(3, Ordering::Relaxed);
        m.latency.record(150);
        let j = m.to_json();
        assert_eq!(j.get("ok").and_then(Json::as_u64), Some(3));
        assert!(j.get("p95_us").is_some());
        assert!(m.summary_line().contains("ok=3"));
    }
}
