//! `quonto-server`: the OBDA query service.
//!
//! ```text
//! quonto-server [--config server.json] [--addr HOST:PORT] [--workers N]
//!               [--queue N] [--scale N] [--seed N] [--endpoint-kind university|university-abox]
//!               [--shards N] [--exact-workers]
//!               [--access-log] [--summary-s N] [--smoke]
//! ```
//!
//! With no `--config`, serves one endpoint named `uni` (generated
//! university scenario, PerfectRef over the materialized ABox) on
//! `127.0.0.1:7077`. Flags override the corresponding config fields.
//! `--smoke` boots on an ephemeral port, answers one self-issued query
//! plus `STATS`, then exits — the CI liveness check.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use obda_server::{config::EndpointKind, Json, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: quonto-server [--config FILE] [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                    [--scale N] [--seed N] [--endpoint-kind university|university-abox]\n\
         \x20                    [--shards N] [--exact-workers]\n\
         \x20                    [--access-log] [--summary-s N] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, bool) {
    let mut cfg: Option<ServerConfig> = None;
    let mut addr: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut queue: Option<usize> = None;
    let mut scale: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut kind: Option<EndpointKind> = None;
    let mut shards: Option<usize> = None;
    let mut exact_workers = false;
    let mut access_log = false;
    let mut summary_s: Option<u64> = None;
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--config" => {
                let path = val("--config");
                match ServerConfig::from_file(&path) {
                    Ok(c) => cfg = Some(c),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--addr" => addr = Some(val("--addr")),
            "--workers" => workers = val("--workers").parse().ok(),
            "--queue" => queue = val("--queue").parse().ok(),
            "--scale" => scale = val("--scale").parse().ok(),
            "--seed" => seed = val("--seed").parse().ok(),
            "--endpoint-kind" => {
                kind = Some(match val("--endpoint-kind").as_str() {
                    "university" => EndpointKind::University,
                    "university-abox" => EndpointKind::UniversityAbox,
                    other => {
                        eprintln!("unknown endpoint kind `{other}`");
                        usage()
                    }
                })
            }
            "--shards" => shards = val("--shards").parse().ok(),
            "--exact-workers" => exact_workers = true,
            "--access-log" => access_log = true,
            "--summary-s" => summary_s = val("--summary-s").parse().ok(),
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }

    let mut cfg = cfg.unwrap_or_else(|| ServerConfig {
        addr: "127.0.0.1:7077".into(),
        summary_every_s: 30,
        ..ServerConfig::default()
    });
    if let Some(a) = addr {
        cfg.addr = a;
    }
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(q) = queue {
        cfg.queue_capacity = q;
    }
    if let Some(s) = scale {
        for ep in &mut cfg.endpoints {
            ep.scale = s;
        }
    }
    if let Some(s) = seed {
        for ep in &mut cfg.endpoints {
            ep.seed = s;
        }
    }
    if let Some(k) = kind {
        for ep in &mut cfg.endpoints {
            ep.kind = k;
        }
    }
    if let Some(n) = shards {
        for ep in &mut cfg.endpoints {
            ep.engine.shards = Some(n);
        }
    }
    if exact_workers {
        cfg.exact_workers = true;
    }
    if access_log {
        cfg.access_log = true;
    }
    if let Some(s) = summary_s {
        cfg.summary_every_s = s;
    }
    if smoke {
        cfg.addr = "127.0.0.1:0".into();
        cfg.summary_every_s = 0;
    }
    (cfg, smoke)
}

fn run_smoke(server: Server) -> ExitCode {
    let addr = server.addr();
    let result = (|| -> Result<(), String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        writer
            .write_all(b"{\"id\":\"smoke\",\"endpoint\":\"uni\",\"query\":\"q(x) :- Student(x)\"}\nSTATS\n")
            .map_err(|e| e.to_string())?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let resp = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(format!("unexpected query response: {line}"));
        }
        let rows = resp.get("rows").and_then(Json::as_u64).unwrap_or(0);
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let stats = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        let served = stats
            .get("server")
            .and_then(|s| s.get("ok"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if served != 1 {
            return Err(format!("stats did not count the query: {line}"));
        }
        let shards = stats
            .get("endpoints")
            .and_then(|e| e.get("uni"))
            .and_then(|e| e.get("shards"))
            .and_then(Json::as_u64)
            .unwrap_or(1);
        println!("smoke ok: {rows} rows, {shards} shard(s), stats verb live");
        Ok(())
    })();
    server.shutdown();
    server.join();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("smoke failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let (cfg, smoke) = parse_args();
    let endpoints: Vec<String> = cfg.endpoints.iter().map(|e| e.name.clone()).collect();
    eprintln!(
        "quonto-server loading {} endpoint(s): {} …",
        endpoints.len(),
        endpoints.join(", ")
    );
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("quonto-server failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("quonto-server listening on {}", server.addr());
    if smoke {
        return run_smoke(server);
    }
    server.run_until_signal();
    eprintln!("quonto-server stopped");
    ExitCode::SUCCESS
}
