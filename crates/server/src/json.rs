//! A minimal JSON value, parser, and writer (std-only).
//!
//! The wire protocol is newline-delimited JSON; the build environment is
//! offline, so instead of `serde_json` this is a small recursive-descent
//! parser hardened for server use: depth-capped (malicious nesting can't
//! blow the stack), strict about trailing garbage, and tolerant of
//! nothing else. Numbers are kept as `f64` — every number the protocol
//! carries (ids, counts, milliseconds) fits without loss.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (stable output, no hashing needed).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset + message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting cap: a parser for a line protocol never needs deep trees, and
/// the cap turns `[[[[…` bombs into a parse error instead of a stack
/// overflow that would kill the connection thread. Public so the hostile
/// -input tests can probe the exact boundary.
pub const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses exactly one JSON value spanning the whole input.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        // lint: allow(R1.index, "pos <= bytes.len() is the parser's cursor invariant; an at-end slice is empty, not a panic")
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // lint: allow(R1.index, "start is a saved cursor position <= pos <= bytes.len()")
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe).
                    // lint: allow(R1.index, "pos <= bytes.len() cursor invariant")
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = match rest.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unexpected end of input")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (after `\u`), leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // lint: allow(R1.index, "end <= bytes.len() checked on the line above")
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for src in [
            r#"null"#,
            r#"true"#,
            r#"-12.5"#,
            r#""hi \"there\"\n""#,
            r#"[1,2,[3,null],{"a":false}]"#,
            r#"{"id":"q1","endpoint":"uni","lang":"cq","query":"q(x) :- Student(x)"}"#,
        ] {
            let v = Json::parse(src).unwrap();
            let out = v.to_string();
            assert_eq!(Json::parse(&out).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""caf\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("café 😀".into()));
        // Control characters are escaped on output.
        assert_eq!(Json::Str("a\u{1}b".into()).to_string(), r#""a\u0001b""#);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for src in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\u{7f}",
            "{\"a\":\"\\q\"}",
            "[\u{0}]",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
        // Depth bomb: error, not stack overflow.
        let bomb = "[".repeat(50_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
