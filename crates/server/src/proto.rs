//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line:
//!
//! ```json
//! {"id":"7","endpoint":"uni","lang":"cq","query":"q(x) :- Student(x)"}
//! ```
//!
//! * `id` — optional opaque string echoed back in the response;
//! * `endpoint` — name of a loaded endpoint (see [`crate::config`]);
//! * `lang` — `"cq"` (datalog-style concrete syntax, the default) or
//!   `"sparql"` (conjunctive SELECT/ASK fragment);
//! * `query` — the query text;
//! * `timeout_ms` — optional per-request deadline override, clamped to
//!   the server's configured maximum.
//!
//! A JSON object carrying `insert` and/or `delete` (and **no** `query`)
//! is a *write* — a [`mastro::AboxDelta`] batch applied to the
//! endpoint's materialized ABox through the incremental write path:
//!
//! ```json
//! {"id":"w1","endpoint":"uni","insert":[["Student","person/9"],
//!   ["takesCourse","person/9","course/1"],["personName","person/9","Ada"]],
//!   "delete":[["takesCourse","person/9","course/2"]]}
//! ```
//!
//! Each statement is an array: `[predicate, individual]` asserts a
//! concept membership; `[predicate, subject, object]` asserts a role
//! (string object) or attribute (the object is an attribute value — a
//! JSON integer becomes a typed int, a string on an attribute predicate
//! becomes a text value; predicate names resolve against the TBox
//! signature, roles first). Deletes apply before inserts; duplicate
//! inserts and deletes of absent facts are no-ops.
//!
//! The bare line `STATS` (no JSON) returns the metrics snapshot, and
//! `TRACE` (or `TRACE n`) returns the last `n` completed query traces
//! from the in-process ring buffer, each with its per-phase timing
//! breakdown.
//!
//! Responses are one JSON object per line with a `status` field:
//! `ok` (with `answers` as an array of string tuples, `rows`, and
//! timing fields), `error` (with `error` text and a machine-readable
//! `kind` such as `bad_request`, `unknown_endpoint`, `parse`,
//! `sql.evaluate`, `panic`, or `internal`), `overloaded` (queue
//! full — retry later), `timeout` (deadline exceeded), or
//! `shutting_down`. Answer tuples are rendered via each term's display
//! form and arrive in the evaluator's sorted order, so two servers over
//! the same data produce byte-identical `answers` arrays.

use std::sync::Arc;

use mastro::{AboxDelta, Answers, DeltaStatement, DeltaSummary, ObdaError};
use obda_dllite::Value;
use obda_obs::QueryTrace;

use crate::json::Json;

/// Query language of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// Datalog-style conjunctive query syntax (`q(x) :- C(x), r(x, y)`).
    Cq,
    /// SPARQL conjunctive fragment (SELECT / ASK).
    Sparql,
}

impl Lang {
    pub fn as_str(self) -> &'static str {
        match self {
            Lang::Cq => "cq",
            Lang::Sparql => "sparql",
        }
    }

    /// The engine-side language this wire tag selects.
    pub fn to_engine(self) -> mastro::QueryLang {
        match self {
            Lang::Cq => mastro::QueryLang::Cq,
            Lang::Sparql => mastro::QueryLang::Sparql,
        }
    }
}

/// A parsed query request.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Client-chosen id, echoed back verbatim.
    pub id: Option<String>,
    /// Endpoint name.
    pub endpoint: String,
    /// Query language.
    pub lang: Lang,
    /// Query text.
    pub query: String,
    /// Per-request deadline override (milliseconds).
    pub timeout_ms: Option<u64>,
}

/// A parsed write request: one delta batch against one endpoint.
#[derive(Debug, Clone)]
pub struct WriteRequest {
    /// Client-chosen id, echoed back verbatim.
    pub id: Option<String>,
    /// Endpoint name.
    pub endpoint: String,
    /// The batch: deletes apply first, then inserts.
    pub delta: AboxDelta,
    /// Per-request deadline override (milliseconds).
    pub timeout_ms: Option<u64>,
}

/// Any frame a client can send.
#[derive(Debug, Clone)]
pub enum Request {
    /// A query.
    Query(QueryRequest),
    /// A write (delta batch).
    Write(WriteRequest),
    /// The `STATS` verb.
    Stats,
    /// The `TRACE [n]` verb: fetch the last `n` completed query traces
    /// (default 1) from the in-process ring buffer.
    Trace(Option<usize>),
}

/// Parses one protocol line. Never panics on malformed input — every
/// failure is an `Err` the connection handler turns into an `error`
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.eq_ignore_ascii_case("stats") {
        return Ok(Request::Stats);
    }
    if line.eq_ignore_ascii_case("trace") {
        return Ok(Request::Trace(None));
    }
    if let Some(rest) = line
        .get(..5)
        .filter(|head| head.eq_ignore_ascii_case("trace"))
        .map(|_| line[5..].trim())
        .filter(|rest| !rest.is_empty())
    {
        let n: usize = rest
            .parse()
            .map_err(|_| format!("bad frame: TRACE count must be an integer, got `{rest}`"))?;
        return Ok(Request::Trace(Some(n)));
    }
    let v = Json::parse(line).map_err(|e| format!("bad frame: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("bad frame: request must be a JSON object".into());
    }
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Num(n)) => Some(Json::Num(*n).to_string()),
        Some(_) => return Err("bad frame: `id` must be a string or number".into()),
    };
    let endpoint = match v.get("endpoint") {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err("bad frame: missing `endpoint`".into()),
    };
    let timeout_ms = match v.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(n) => Some(
            n.as_u64()
                .ok_or("bad frame: `timeout_ms` must be a non-negative integer")?,
        ),
    };
    if v.get("insert").is_some() || v.get("delete").is_some() {
        if v.get("query").is_some() || v.get("lang").is_some() {
            return Err("bad frame: a request is a query or a write, not both".into());
        }
        let delta = AboxDelta {
            inserts: parse_statements(v.get("insert"), "insert")?,
            deletes: parse_statements(v.get("delete"), "delete")?,
        };
        if delta.is_empty() {
            return Err("bad frame: write carries no statements".into());
        }
        return Ok(Request::Write(WriteRequest {
            id,
            endpoint,
            delta,
            timeout_ms,
        }));
    }
    let lang = match v.get("lang").and_then(Json::as_str) {
        None | Some("cq") => Lang::Cq,
        Some("sparql") => Lang::Sparql,
        Some(other) => return Err(format!("bad frame: unknown lang `{other}`")),
    };
    let query = match v.get("query") {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err("bad frame: missing `query`".into()),
    };
    Ok(Request::Query(QueryRequest {
        id,
        endpoint,
        lang,
        query,
        timeout_ms,
    }))
}

/// Parses one side of a write batch: an array of statement arrays.
fn parse_statements(field: Option<&Json>, name: &str) -> Result<Vec<DeltaStatement>, String> {
    let items = match field {
        None | Some(Json::Null) => return Ok(Vec::new()),
        Some(Json::Arr(items)) => items,
        Some(_) => {
            return Err(format!(
                "bad frame: `{name}` must be an array of statements"
            ))
        }
    };
    items
        .iter()
        .map(|item| parse_statement(item, name))
        .collect()
}

/// One wire statement: `[predicate, individual]` (concept) or
/// `[predicate, subject, object]` (role / attribute). A JSON-integer
/// object pins the statement to an attribute with a typed int value.
fn parse_statement(item: &Json, name: &str) -> Result<DeltaStatement, String> {
    let shape = format!(
        "bad frame: each `{name}` statement is [predicate, individual] or [predicate, subject, object]"
    );
    let Json::Arr(parts) = item else {
        return Err(shape);
    };
    match parts.as_slice() {
        [Json::Str(p), Json::Str(i)] if !p.is_empty() && !i.is_empty() => {
            Ok(DeltaStatement::unary(p, i))
        }
        [Json::Str(p), Json::Str(s), Json::Str(o)] if !p.is_empty() && !s.is_empty() => {
            Ok(DeltaStatement::binary(p, s, o))
        }
        [Json::Str(p), Json::Str(s), Json::Num(n)] if !p.is_empty() && !s.is_empty() => {
            if n.fract() != 0.0 || *n < i64::MIN as f64 || *n > i64::MAX as f64 {
                return Err(format!(
                    "bad frame: `{name}` attribute value must be an integer, got {n}"
                ));
            }
            Ok(DeltaStatement::binary_value(p, s, Value::Int(*n as i64)))
        }
        _ => Err(shape),
    }
}

fn id_field(id: &Option<String>) -> Json {
    match id {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

/// Renders an answer set as a JSON array of string tuples (sorted — the
/// evaluator returns a `BTreeSet`, so the order is already canonical).
pub fn answers_to_json(answers: &Answers) -> Json {
    Json::Arr(
        answers
            .iter()
            .map(|tuple| Json::Arr(tuple.iter().map(|t| Json::Str(t.to_string())).collect()))
            .collect(),
    )
}

/// `status: ok` response with answers and timing.
pub fn ok_response(id: &Option<String>, answers: &Answers, wait_us: u64, exec_us: u64) -> Json {
    Json::obj(vec![
        ("id", id_field(id)),
        ("status", "ok".into()),
        ("rows", answers.len().into()),
        ("answers", answers_to_json(answers)),
        ("wait_us", wait_us.into()),
        ("exec_us", exec_us.into()),
    ])
}

/// `status: ok` response for an applied write batch. `inserted` and
/// `deleted` count *changed* rows (duplicate inserts and deletes of
/// absent facts are no-ops); `fallback` counts memoized view extents
/// the batch invalidated instead of patching.
pub fn write_ok_response(
    id: &Option<String>,
    summary: &DeltaSummary,
    wait_us: u64,
    exec_us: u64,
) -> Json {
    Json::obj(vec![
        ("id", id_field(id)),
        ("status", "ok".into()),
        ("inserted", summary.inserted.into()),
        ("deleted", summary.deleted.into()),
        ("fallback", summary.fallbacks.into()),
        ("wait_us", wait_us.into()),
        ("exec_us", exec_us.into()),
    ])
}

/// `status: error` response (parse failures, unknown endpoints, engine
/// errors). `kind` is a stable machine-readable discriminator:
/// `bad_request` (frame failed protocol parsing), `unknown_endpoint`,
/// an engine error kind ([`ObdaError::kind`]: `parse`, `sql.unfold`,
/// `sql.evaluate`, ...), `panic`, or `internal`.
pub fn error_response(id: &Option<String>, kind: &str, message: &str) -> Json {
    Json::obj(vec![
        ("id", id_field(id)),
        ("status", "error".into()),
        ("kind", kind.into()),
        ("error", message.into()),
    ])
}

/// The `TRACE` response: newest-first completed query traces with their
/// depth-0 phase breakdowns, counters, and tags.
pub fn trace_response(traces: &[Arc<QueryTrace>]) -> Json {
    let count = traces.len();
    let traces = traces
        .iter()
        .map(|t| {
            let phases = Json::Arr(
                t.phases()
                    .iter()
                    .map(|(name, us)| {
                        Json::obj(vec![("phase", (*name).into()), ("us", (*us).into())])
                    })
                    .collect(),
            );
            let counters = Json::Obj(
                t.counters
                    .iter()
                    .map(|(name, n)| ((*name).to_owned(), Json::from(*n)))
                    .collect(),
            );
            let tags = Json::Obj(
                t.tags
                    .iter()
                    .map(|(name, v)| ((*name).to_owned(), Json::Str(v.clone())))
                    .collect(),
            );
            Json::obj(vec![
                ("id", t.id.into()),
                ("query", t.query.as_str().into()),
                ("status", t.status.as_str().into()),
                ("rows", t.rows.into()),
                ("total_us", t.total_us.into()),
                ("phases", phases),
                ("counters", counters),
                ("tags", tags),
            ])
        })
        .collect();
    Json::obj(vec![
        ("status", "ok".into()),
        ("count", count.into()),
        ("traces", Json::Arr(traces)),
    ])
}

/// `status: overloaded` — the bounded queue is full; the client should
/// back off and retry.
pub fn overloaded_response(id: &Option<String>) -> Json {
    Json::obj(vec![("id", id_field(id)), ("status", "overloaded".into())])
}

/// `status: timeout` — the per-request deadline passed before the
/// answer was produced.
pub fn timeout_response(id: &Option<String>) -> Json {
    Json::obj(vec![("id", id_field(id)), ("status", "timeout".into())])
}

/// `status: shutting_down` — the server is draining and accepts no new
/// work.
pub fn shutting_down_response(id: &Option<String>) -> Json {
    Json::obj(vec![
        ("id", id_field(id)),
        ("status", "shutting_down".into()),
    ])
}

/// Flattens an engine error into response text.
pub fn engine_error_text(e: &ObdaError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let r = parse_request(r#"{"endpoint":"uni","query":"q(x) :- Student(x)"}"#).unwrap();
        let Request::Query(q) = r else {
            panic!("query")
        };
        assert_eq!(q.endpoint, "uni");
        assert_eq!(q.lang, Lang::Cq);
        assert_eq!(q.id, None);
        assert_eq!(q.timeout_ms, None);
    }

    #[test]
    fn parses_full_query() {
        let r = parse_request(
            r#"{"id":"42","endpoint":"uni","lang":"sparql","query":"ASK WHERE { ?x a :A }","timeout_ms":250}"#,
        )
        .unwrap();
        let Request::Query(q) = r else {
            panic!("query")
        };
        assert_eq!(q.id.as_deref(), Some("42"));
        assert_eq!(q.lang, Lang::Sparql);
        assert_eq!(q.timeout_ms, Some(250));
    }

    #[test]
    fn stats_verb() {
        assert!(matches!(parse_request("STATS").unwrap(), Request::Stats));
        assert!(matches!(
            parse_request("  stats  ").unwrap(),
            Request::Stats
        ));
    }

    #[test]
    fn trace_verb() {
        assert!(matches!(
            parse_request("TRACE").unwrap(),
            Request::Trace(None)
        ));
        assert!(matches!(
            parse_request("  trace  ").unwrap(),
            Request::Trace(None)
        ));
        assert!(matches!(
            parse_request("TRACE 5").unwrap(),
            Request::Trace(Some(5))
        ));
        assert!(matches!(
            parse_request("trace 16").unwrap(),
            Request::Trace(Some(16))
        ));
        assert!(parse_request("TRACE five").is_err());
        assert!(parse_request("TRACE -1").is_err());
    }

    #[test]
    fn parses_write_batches() {
        let r = parse_request(
            r#"{"id":"w1","endpoint":"uni","insert":[["Student","person/9"],["takesCourse","person/9","course/1"],["age","person/9",30]],"delete":[["takesCourse","person/9","course/2"]],"timeout_ms":250}"#,
        )
        .unwrap();
        let Request::Write(w) = r else {
            panic!("write")
        };
        assert_eq!(w.id.as_deref(), Some("w1"));
        assert_eq!(w.endpoint, "uni");
        assert_eq!(w.timeout_ms, Some(250));
        assert_eq!(w.delta.inserts.len(), 3);
        assert_eq!(w.delta.deletes.len(), 1);
        assert_eq!(
            w.delta.inserts[0],
            DeltaStatement::unary("Student", "person/9")
        );
        assert_eq!(
            w.delta.inserts[2],
            DeltaStatement::binary_value("age", "person/9", Value::Int(30))
        );
        // Insert-only and delete-only batches are fine.
        assert!(matches!(
            parse_request(r#"{"endpoint":"uni","insert":[["A","i"]]}"#).unwrap(),
            Request::Write(_)
        ));
        assert!(matches!(
            parse_request(r#"{"endpoint":"uni","delete":[["A","i"]]}"#).unwrap(),
            Request::Write(_)
        ));
    }

    #[test]
    fn rejects_malformed_writes() {
        for bad in [
            // Query and write in one frame.
            r#"{"endpoint":"uni","query":"q(x) :- A(x)","insert":[["A","i"]]}"#,
            // Empty batch.
            r#"{"endpoint":"uni","insert":[],"delete":[]}"#,
            // Statement shape violations.
            r#"{"endpoint":"uni","insert":[["A"]]}"#,
            r#"{"endpoint":"uni","insert":[["A","s","o","x"]]}"#,
            r#"{"endpoint":"uni","insert":["A"]}"#,
            r#"{"endpoint":"uni","insert":[["","i"]]}"#,
            r#"{"endpoint":"uni","insert":[[1,"i"]]}"#,
            r#"{"endpoint":"uni","insert":[["age","s",1.5]]}"#,
            r#"{"endpoint":"uni","insert":"A(i)"}"#,
            // Writes still need an endpoint.
            r#"{"insert":[["A","i"]]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn write_ok_response_carries_counts() {
        let j = write_ok_response(
            &Some("w1".into()),
            &DeltaSummary {
                inserted: 3,
                deleted: 1,
                fallbacks: 2,
            },
            10,
            20,
        );
        assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(j.get("inserted").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("deleted").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("fallback").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("exec_us").and_then(Json::as_u64), Some(20));
    }

    #[test]
    fn error_response_carries_kind() {
        let j = error_response(&Some("9".into()), "unknown_endpoint", "no such endpoint");
        assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            j.get("kind").and_then(Json::as_str),
            Some("unknown_endpoint")
        );
        assert_eq!(
            j.get("error").and_then(Json::as_str),
            Some("no such endpoint")
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "garbage",
            "{}",
            r#"{"endpoint":"uni"}"#,
            r#"{"query":"q(x) :- A(x)"}"#,
            r#"{"endpoint":"uni","query":"q","lang":"prolog"}"#,
            r#"{"endpoint":"uni","query":"q","timeout_ms":-4}"#,
            r#"{"endpoint":"uni","query":"q","timeout_ms":1.5}"#,
            r#"[1,2,3]"#,
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }
}
