//! SIGINT/SIGTERM → atomic flag, with no external crates.
//!
//! The workspace is std-only, so instead of the `libc`/`signal-hook`
//! crates this declares the two libc symbols it needs directly (std
//! already links libc on every unix target). The handler does the only
//! async-signal-safe thing: store to an atomic the serving loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the first SIGINT (ctrl-c) or SIGTERM.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Testing hook / programmatic trigger: behaves as if a signal arrived.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)`: simple disposition swap is all we need; the
        // handler only stores an atomic.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix targets: no handler; ctrl-c falls back to process kill.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off unix).
pub fn install_handlers() {
    imp::install();
}
