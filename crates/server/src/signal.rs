//! SIGINT/SIGTERM → atomic flag, with no external crates.
//!
//! The workspace is std-only, so instead of the `libc`/`signal-hook`
//! crates this declares the two libc symbols it needs directly (std
//! already links libc on every unix target). The handler does the only
//! async-signal-safe thing: store to an atomic the serving loop polls.
//!
//! ## Async-signal-safety
//!
//! A signal handler may interrupt any thread at any instruction, so it
//! must not allocate, lock, or call any non-reentrant libc function
//! (POSIX `signal-safety(7)`). [`imp::on_signal`] complies by
//! construction: its entire body is one `AtomicBool::store`, which
//! compiles to a single atomic move — no allocation, no locking, no
//! formatting, no libc calls. The `handler_stores_flag_and_nothing_else`
//! test and the `SAFETY` comment at the install site are the audit
//! trail; `xtask lint` (rule `R3.safety`) keeps the comment from
//! disappearing.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the first SIGINT (ctrl-c) or SIGTERM.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Testing hook / programmatic trigger: behaves as if a signal arrived.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)`: simple disposition swap is all we need; the
        // handler only stores an atomic.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe by construction: one atomic store, nothing
        // else (see the module docs). Keep it that way — anything more
        // (allocation, locks, eprintln!) can deadlock or corrupt state
        // when the signal lands mid-malloc on an arbitrary thread.
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    // Pins the handler to the exact ABI `signal(2)` expects; a signature
    // drift becomes a compile error here instead of UB at delivery time.
    const _: extern "C" fn(i32) = on_signal;

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        // SAFETY: `signal` is declared with the prototype libc exports
        // on every unix target std supports; SIGINT/SIGTERM are valid,
        // catchable signal numbers; and `on_signal` is a non-unwinding
        // `extern "C" fn(i32)` (pinned by the const assertion above)
        // that is async-signal-safe — its only effect is a store to a
        // static `AtomicBool`, so installing it cannot introduce data
        // races or reentrancy hazards. The return value (the previous
        // disposition) is intentionally ignored: we never restore it.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn handler_stores_flag_and_nothing_else() {
            // The handler is a plain extern "C" fn — drive it directly,
            // exactly as the kernel would, and observe its only effect.
            // (No reset: tests in this binary only ever raise the flag,
            // so they cannot race each other.)
            on_signal(SIGINT);
            assert!(super::super::shutdown_requested());
        }

        #[test]
        fn raised_signal_reaches_the_handler() {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            super::install();
            // SAFETY: `raise(2)` delivers SIGTERM to this thread; the
            // disposition was just swapped to `on_signal`, which only
            // stores an atomic, so the process continues normally.
            let rc = unsafe { raise(SIGTERM) };
            assert_eq!(rc, 0, "raise(SIGTERM) failed");
            assert!(super::super::shutdown_requested());
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix targets: no handler; ctrl-c falls back to process kill.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off unix).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    #[test]
    fn programmatic_trigger_sets_the_flag() {
        super::request_shutdown();
        assert!(super::shutdown_requested());
    }
}
