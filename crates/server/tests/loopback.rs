//! Loopback concurrency test: 8 client threads fire interleaved CQ and
//! SPARQL queries at a served endpoint and every response must be
//! byte-identical to single-threaded `AboxSystem` evaluation.

mod common;

use std::sync::Arc;
use std::thread;

use common::{status, Client};
use mastro::{demo, AboxSystem};
use obda_genont::university_scenario;
use obda_server::proto::answers_to_json;
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

const SCALE: usize = 2;
const SEED: u64 = 42;

/// The interleaved query mix: (lang, text) pairs covering the scenario's
/// CQ presets plus SPARQL SELECT/ASK forms.
fn query_mix() -> Vec<(&'static str, String)> {
    let mut mix: Vec<(&'static str, String)> = university_scenario(SCALE, SEED)
        .queries
        .into_iter()
        .map(|q| ("cq", q.text))
        .collect();
    mix.push(("sparql", "SELECT ?x WHERE { ?x a :Student }".into()));
    mix.push((
        "sparql",
        "SELECT ?x ?n WHERE { ?x a :GradStudent . ?x :personName ?n . }".into(),
    ));
    mix.push((
        "sparql",
        "ASK WHERE { ?x a :Professor . ?x :teacherOf ?y }".into(),
    ));
    mix
}

/// Single-threaded reference: the scenario materialized into an
/// `AboxSystem`, answers rendered exactly like the server renders them.
fn reference_answers(mix: &[(&'static str, String)]) -> Vec<String> {
    let scenario = university_scenario(SCALE, SEED);
    let sys = demo::build_system(&scenario).expect("reference system");
    let mat = sys.materialized_abox().expect("materializes");
    let abox_sys = AboxSystem::new(scenario.tbox.clone(), mat.abox.clone()).with_eval_threads(1);
    mix.iter()
        .map(|(lang, text)| {
            let answers = match *lang {
                "cq" => abox_sys.answer(text).expect("reference answers"),
                _ => abox_sys.answer_sparql(text).expect("reference answers"),
            };
            answers_to_json(&answers).to_string()
        })
        .collect()
}

#[test]
fn eight_concurrent_clients_match_sequential_reference() {
    let mix = query_mix();
    let expected = Arc::new(reference_answers(&mix));
    let mix = Arc::new(mix);

    // Three endpoints over the same scenario: the plain ABox engine,
    // the full OBDA stack (PerfectRef over the materialized ABox), and
    // the 4-way sharded scatter-gather engine. All must agree with the
    // reference on every response.
    let server = Server::start(ServerConfig {
        workers: 4,
        endpoints: vec![
            EndpointConfig {
                name: "uni-abox".into(),
                kind: EndpointKind::UniversityAbox,
                scale: SCALE,
                seed: SEED,
                ..EndpointConfig::default()
            },
            EndpointConfig {
                name: "uni".into(),
                kind: EndpointKind::University,
                scale: SCALE,
                seed: SEED,
                ..EndpointConfig::default()
            },
            EndpointConfig {
                name: "uni-sharded".into(),
                kind: EndpointKind::UniversityAbox,
                scale: SCALE,
                seed: SEED,
                engine: EndpointConfig::default().engine.shards(4),
                ..EndpointConfig::default()
            },
        ],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    let threads: Vec<_> = (0..CLIENTS)
        .map(|tid| {
            let mix = Arc::clone(&mix);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..ROUNDS {
                    for step in 0..mix.len() {
                        // Offset by thread id so the 8 clients interleave
                        // different queries at any instant.
                        let i = (tid + step + round) % mix.len();
                        let (lang, text) = &mix[i];
                        let endpoint = match (tid + step) % 3 {
                            0 => "uni-abox",
                            1 => "uni",
                            _ => "uni-sharded",
                        };
                        let resp = client.query(endpoint, lang, text, None);
                        assert_eq!(status(&resp), "ok", "client {tid} query {i}: {resp}");
                        let got = resp.get("answers").expect("answers field").to_string();
                        assert_eq!(
                            got, expected[i],
                            "client {tid} round {round} {lang} query {i} diverged on {endpoint}"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    // The mix repeated across 8 clients × 3 rounds must have hit the
    // rewrite cache, and STATS must report it per endpoint.
    let mut client = Client::connect(addr);
    let stats = client.stats();
    assert_eq!(status(&stats), "ok");
    for ep in ["uni-abox", "uni", "uni-sharded"] {
        let section = stats
            .get("endpoints")
            .and_then(|e| e.get(ep))
            .unwrap_or_else(|| panic!("missing endpoint section {ep}: {stats}"));
        let hits = section.get("cache_hits").and_then(Json::as_u64).unwrap();
        let rate = section
            .get("cache_hit_rate")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(hits > 0, "{ep} cache_hits = 0: {stats}");
        assert!(rate > 0.0, "{ep} cache_hit_rate = 0: {stats}");
    }
    // The sharded endpoint reports its shard count and per-shard detail;
    // the unsharded ones stay shaped exactly as before.
    let sharded = stats
        .get("endpoints")
        .and_then(|e| e.get("uni-sharded"))
        .expect("uni-sharded section");
    assert_eq!(sharded.get("shards").and_then(Json::as_u64), Some(4));
    let detail = sharded
        .get("shard_detail")
        .and_then(Json::as_arr)
        .expect("shard_detail array");
    assert_eq!(detail.len(), 4);
    let scattered: u64 = detail
        .iter()
        .map(|s| s.get("requests").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert!(scattered > 0, "shards saw no scatter work: {stats}");
    let server_section = stats.get("server").expect("server section");
    let ok = server_section.get("ok").and_then(Json::as_u64).unwrap();
    assert_eq!(ok, (CLIENTS * ROUNDS * mix.len()) as u64, "{stats}");

    server.shutdown();
    server.join();
}
