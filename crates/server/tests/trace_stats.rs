//! TRACE verb + STATS registry integration: every server-answered
//! query leaves a retrievable trace with attributed phases, STATS
//! exposes the process-wide metrics registry, and error responses
//! carry a structured `kind`.
//!
//! The trace ring is process-global and the harness runs these tests
//! on parallel threads, so each test serves a uniquely named endpoint
//! and filters the ring by its own endpoint tag.

mod common;

use common::{status, Client};
use obda_genont::university_scenario;
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

fn start_server(endpoint: &str) -> Server {
    Server::start(ServerConfig {
        workers: 2,
        endpoints: vec![EndpointConfig {
            name: endpoint.into(),
            kind: EndpointKind::University,
            scale: 1,
            seed: 42,
            ..EndpointConfig::default()
        }],
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn every_answered_query_yields_a_trace_with_phases() {
    let server = start_server("uni-phases");
    let mut client = Client::connect(server.addr());
    let queries = university_scenario(1, 42).queries;
    for qs in &queries {
        let resp = client.query("uni-phases", "cq", &qs.text, None);
        assert_eq!(status(&resp), "ok", "query `{}` failed: {resp}", qs.name);
    }

    // Ask for the whole ring and keep this test's own traces.
    let resp = client.roundtrip("TRACE 4096");
    assert_eq!(status(&resp), "ok", "TRACE failed: {resp}");
    let traces: Vec<&Json> = resp
        .get("traces")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("TRACE response without traces: {resp}"))
        .iter()
        .filter(|t| {
            t.get("tags")
                .and_then(|tags| tags.get("endpoint"))
                .and_then(Json::as_str)
                == Some("uni-phases")
        })
        .collect();
    assert_eq!(traces.len(), queries.len(), "one trace per answered query");
    for trace in traces {
        let phases = trace
            .get("phases")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("trace without phases: {trace}"));
        assert!(
            phases.len() >= 4,
            "server-answered queries attribute >= 4 phases, got {trace}"
        );
        let names: Vec<&str> = phases
            .iter()
            .filter_map(|p| p.get("phase").and_then(Json::as_str))
            .collect();
        for want in ["parse", "rewrite", "serialize"] {
            assert!(names.contains(&want), "trace missing `{want}`: {names:?}");
        }
        assert_eq!(
            trace.get("status").and_then(Json::as_str),
            Some("ok"),
            "trace of a successful query records ok: {trace}"
        );
        assert!(trace.get("rows").and_then(Json::as_u64).is_some());
        assert!(trace.get("total_us").and_then(Json::as_u64).is_some());
        assert!(trace.get("query").and_then(Json::as_str).is_some());
    }

    // A bare TRACE returns exactly the most recent trace.
    let resp = client.roundtrip("trace");
    let traces = resp.get("traces").and_then(Json::as_arr).expect("traces");
    assert_eq!(traces.len(), 1);
}

#[test]
fn stats_exposes_registry_and_trace_requests() {
    let server = start_server("uni-stats");
    let mut client = Client::connect(server.addr());
    let resp = client.query("uni-stats", "cq", "q(x) :- Student(x)", None);
    assert_eq!(status(&resp), "ok");
    let _ = client.roundtrip("TRACE");

    let stats = client.stats();
    assert_eq!(status(&stats), "ok");
    let registry = stats
        .get("registry")
        .unwrap_or_else(|| panic!("STATS without registry section: {stats}"));
    let counters = registry
        .get("counters")
        .unwrap_or_else(|| panic!("registry without counters: {registry}"));
    assert!(
        counters
            .get("mastro.queries")
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "answered queries bump mastro.queries: {counters}"
    );
    assert!(
        registry
            .get("histograms")
            .and_then(|h| h.get("mastro.query_us"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "query latency lands in the registry histogram: {registry}"
    );
    let metrics = stats.get("server").expect("server metrics");
    assert!(
        metrics
            .get("trace_requests")
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1),
        "TRACE requests are themselves metered: {metrics}"
    );
}

#[test]
fn error_responses_carry_structured_kinds() {
    let server = start_server("uni-err");
    let mut client = Client::connect(server.addr());

    let kind_of = |resp: &Json| -> String {
        resp.get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("error without kind: {resp}"))
            .to_owned()
    };

    // Unknown endpoint.
    let resp = client.query("nope", "cq", "q(x) :- Student(x)", None);
    assert_eq!(status(&resp), "error");
    assert_eq!(kind_of(&resp), "unknown_endpoint");

    // Engine-side parse failure.
    let resp = client.query("uni-err", "cq", "q(x) :- NotAConcept(", None);
    assert_eq!(status(&resp), "error");
    assert_eq!(kind_of(&resp), "parse");

    // Protocol-level garbage.
    let resp = client.roundtrip("not json, not a verb");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind_of(&resp), "bad_request");
}
