//! Loopback tests for the INSERT/DELETE write verbs: a delta batch sent
//! over the wire must change what subsequent queries answer, a
//! delete-then-reinsert round trip must be byte-identical to the
//! original answers, sharded and unsharded endpoints fed the same
//! writes must agree, and a virtual-mode endpoint must reject writes
//! with a structured `unsupported` error instead of a panic.

mod common;

use std::sync::Arc;
use std::thread;

use common::{status, Client};
use mastro::DataMode;
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

/// A server with one materialized ABox endpoint (`uni`), one 4-shard
/// twin (`sharded`), and one virtual-mode OBDA endpoint (`virt`).
fn write_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        endpoints: vec![
            EndpointConfig {
                name: "uni".into(),
                kind: EndpointKind::UniversityAbox,
                scale: 1,
                ..EndpointConfig::default()
            },
            EndpointConfig {
                name: "sharded".into(),
                kind: EndpointKind::UniversityAbox,
                scale: 1,
                engine: EndpointConfig::default().engine.shards(4),
                ..EndpointConfig::default()
            },
            EndpointConfig {
                name: "virt".into(),
                kind: EndpointKind::University,
                scale: 1,
                engine: EndpointConfig::default()
                    .engine
                    .data_mode(DataMode::Virtual),
                ..EndpointConfig::default()
            },
        ],
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn rows(resp: &Json) -> u64 {
    resp.get("rows")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response without rows: {resp}"))
}

fn count(resp: &Json, field: &str) -> u64 {
    resp.get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response without {field}: {resp}"))
}

const STUDENTS: &str = "q(x) :- Student(x)";
const COURSES_OF: &str = "q(y) :- takesCourse(x, y), personName(x, \"Delta Test\")";

#[test]
fn writes_change_answers_and_round_trip_to_identical() {
    let server = write_server();
    let mut c = Client::connect(server.addr());

    let before = c.query("uni", "cq", STUDENTS, None);
    assert_eq!(status(&before), "ok");
    let baseline = rows(&before);
    assert!(baseline > 0);

    // Insert a fresh student with a name and two courses.
    let resp = c.roundtrip(
        r#"{"id":"w1","endpoint":"uni","insert":[
            ["Student","person/delta-test"],
            ["personName","person/delta-test","Delta Test"],
            ["takesCourse","person/delta-test","course/0"],
            ["takesCourse","person/delta-test","course/1"]]}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert_eq!(status(&resp), "ok", "{resp}");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("w1"));
    assert_eq!(count(&resp, "inserted"), 4);
    assert_eq!(count(&resp, "deleted"), 0);

    let after = c.query("uni", "cq", STUDENTS, None);
    assert_eq!(rows(&after), baseline + 1, "insert must land: {after}");
    let courses = c.query("uni", "cq", COURSES_OF, None);
    assert_eq!(rows(&courses), 2, "{courses}");

    // Duplicate insert is a no-op (0 changed rows, still ok).
    let dup = c.roundtrip(r#"{"endpoint":"uni","insert":[["Student","person/delta-test"]]}"#);
    assert_eq!(status(&dup), "ok");
    assert_eq!(count(&dup, "inserted"), 0);

    // Delete one course; the other must survive.
    let del = c.roundtrip(
        r#"{"endpoint":"uni","delete":[["takesCourse","person/delta-test","course/0"]]}"#,
    );
    assert_eq!(count(&del, "deleted"), 1);
    assert_eq!(rows(&c.query("uni", "cq", COURSES_OF, None)), 1);

    // Delete everything we added: answers must be byte-identical to the
    // pre-write baseline (the JSON rendering is canonical-sorted).
    let teardown = c.roundtrip(
        r#"{"endpoint":"uni","delete":[
            ["Student","person/delta-test"],
            ["personName","person/delta-test","Delta Test"],
            ["takesCourse","person/delta-test","course/1"]]}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert_eq!(status(&teardown), "ok", "{teardown}");
    assert_eq!(count(&teardown, "deleted"), 3);
    let restored = c.query("uni", "cq", STUDENTS, None);
    assert_eq!(
        restored.get("answers").map(Json::to_string),
        before.get("answers").map(Json::to_string),
        "round-trip must restore the exact answer set"
    );
}

#[test]
fn sharded_endpoint_answers_match_unsharded_after_writes() {
    let server = write_server();
    let mut c = Client::connect(server.addr());
    let batches = [
        r#"{"endpoint":"EP","insert":[["GradStudent","person/new-grad"],["takesCourse","person/new-grad","course/0"],["advisor","person/new-grad","person/0"]]}"#,
        r#"{"endpoint":"EP","delete":[["takesCourse","person/new-grad","course/0"]],"insert":[["takesCourse","person/new-grad","course/1"]]}"#,
        r#"{"endpoint":"EP","insert":[["Professor","person/new-prof"],["teacherOf","person/new-prof","course/1"]]}"#,
    ];
    let queries = [
        "q(x) :- Student(x)",
        "q(x, y) :- takesCourse(x, y)",
        "q(x, y) :- Professor(x), teacherOf(x, y)",
        "q(x) :- GradStudent(x), advisor(x, y)",
    ];
    for batch in batches {
        for ep in ["uni", "sharded"] {
            let resp = c.roundtrip(&batch.replace("EP", ep));
            assert_eq!(status(&resp), "ok", "{ep}: {resp}");
        }
        for q in queries {
            let plain = c.query("uni", "cq", q, None);
            let sharded = c.query("sharded", "cq", q, None);
            assert_eq!(
                plain.get("answers").map(Json::to_string),
                sharded.get("answers").map(Json::to_string),
                "sharded diverged on {q}"
            );
        }
    }
}

#[test]
fn virtual_endpoint_rejects_writes_with_unsupported() {
    let server = write_server();
    let mut c = Client::connect(server.addr());
    let resp = c.roundtrip(r#"{"id":"w9","endpoint":"virt","insert":[["Student","person/x"]]}"#);
    assert_eq!(status(&resp), "error", "{resp}");
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("unsupported"));
    // The connection stays usable and reads still work.
    let q = c.query("virt", "cq", STUDENTS, None);
    assert_eq!(status(&q), "ok");
    assert!(rows(&q) > 0);
}

#[test]
fn concurrent_readers_see_consistent_snapshots_during_writes() {
    let server = write_server();
    let addr = server.addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Baseline captured before any writer starts, so readers have a
    // fixed reference (capturing it inside a reader would race the
    // writer's first insert).
    let baseline = {
        let mut c = Client::connect(addr);
        rows(&c.query("uni", "cq", STUDENTS, None))
    };

    // Writer: repeatedly insert and delete the same student.
    let writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut c = Client::connect(addr);
            for i in 0..40 {
                let ins = c.roundtrip(
                    r#"{"endpoint":"uni","insert":[["Student","person/churner"],["takesCourse","person/churner","course/0"]]}"#,
                );
                assert_eq!(status(&ins), "ok", "{ins}");
                let del = c.roundtrip(
                    r#"{"endpoint":"uni","delete":[["Student","person/churner"],["takesCourse","person/churner","course/0"]]}"#,
                );
                assert_eq!(status(&del), "ok", "{del}");
                if i % 8 == 0 {
                    thread::yield_now();
                }
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        })
    };

    // Readers: every response must be a well-formed ok whose row count
    // is the baseline or baseline+1 — never a torn in-between state.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut c = Client::connect(addr);
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let resp = c.query("uni", "cq", STUDENTS, None);
                assert_eq!(status(&resp), "ok", "{resp}");
                let n = rows(&resp);
                assert!(
                    n == baseline || n == baseline + 1,
                    "torn read: {n} vs baseline {baseline}"
                );
            }
        }));
    }
    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }

    // Final state: all churn deleted, baseline restored.
    let mut c = Client::connect(addr);
    let stats = c.stats();
    assert_eq!(status(&stats), "ok");
    server.join();
}
