//! Admission control, deadlines, shutdown drain, and malformed-input
//! robustness — the failure-path half of the serving contract.
//!
//! Every scenario is made deterministic with the `delay_ms` endpoint
//! knob (an injected slow query) rather than by racing real work.

mod common;

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use common::{status, Client};
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

const Q: &str = "q(x) :- Student(x)";

/// A small materialized endpoint (fast to build) with a given name and
/// injected delay.
fn abox_endpoint(name: &str, delay_ms: u64) -> EndpointConfig {
    EndpointConfig {
        name: name.into(),
        kind: EndpointKind::UniversityAbox,
        scale: 1,
        seed: 7,
        delay_ms,
        ..EndpointConfig::default()
    }
}

#[test]
fn queue_full_rejects_overloaded_and_never_hangs() {
    // One worker, one queue slot, 500ms per query: of 6 simultaneous
    // requests at most 2 can be admitted; the rest must be rejected
    // immediately with `overloaded`.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        endpoints: vec![abox_endpoint("slow", 500)],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let started = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                let sent = Instant::now();
                let resp = client.query("slow", "cq", Q, None);
                (status(&resp).to_owned(), sent.elapsed())
            })
        })
        .collect();
    let results: Vec<(String, Duration)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let wall = started.elapsed();

    let ok = results.iter().filter(|(s, _)| s == "ok").count();
    let overloaded = results.iter().filter(|(s, _)| s == "overloaded").count();
    assert_eq!(ok + overloaded, CLIENTS, "unexpected statuses: {results:?}");
    assert!(ok >= 1, "at least one request must be served: {results:?}");
    assert!(overloaded >= 2, "bounded queue must shed load: {results:?}");
    // Rejections are immediate — far quicker than a queued 500ms slot.
    for (s, took) in &results {
        if s == "overloaded" {
            assert!(
                *took < Duration::from_millis(400),
                "slow rejection: {took:?}"
            );
        }
    }
    // 2 admitted × 500ms serialize on the single worker; rejections are
    // free. Nothing may hang on a full queue.
    assert!(wall < Duration::from_secs(3), "test took {wall:?}");

    let stats = Client::connect(addr).stats();
    let srv = stats.get("server").expect("server section");
    assert_eq!(
        srv.get("overloaded").and_then(Json::as_u64),
        Some(overloaded as u64),
        "{stats}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn deadline_returns_timeout_and_worker_recovers() {
    let server = Server::start(ServerConfig {
        workers: 1,
        endpoints: vec![abox_endpoint("slow", 800), abox_endpoint("fast", 0)],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // A request whose deadline lands inside the 800ms injected delay:
    // the worker notices mid-sleep and answers `timeout` right then.
    let mut client = Client::connect(addr);
    let sent = Instant::now();
    let resp = client.query("slow", "cq", Q, Some(100));
    assert_eq!(status(&resp), "timeout", "{resp}");
    let took = sent.elapsed();
    assert!(
        took < Duration::from_millis(600),
        "timeout came late: {took:?}"
    );

    // A request that expires while *queued* behind a slow one: the
    // connection-side timer fires; the worker later skips the cancelled
    // job without evaluating it.
    let slow_thread = thread::spawn(move || {
        let mut c = Client::connect(addr);
        let resp = c.query("slow", "cq", Q, None);
        status(&resp).to_owned()
    });
    thread::sleep(Duration::from_millis(100)); // let the slow query occupy the worker
    let sent = Instant::now();
    let resp = client.query("fast", "cq", Q, Some(100));
    assert_eq!(status(&resp), "timeout", "{resp}");
    assert!(sent.elapsed() < Duration::from_millis(700));
    assert_eq!(slow_thread.join().unwrap(), "ok");

    // The worker survived both timeouts: a plain query still answers.
    let resp = client.query("fast", "cq", Q, None);
    assert_eq!(status(&resp), "ok", "{resp}");

    let stats = client.stats();
    let srv = stats.get("server").expect("server section");
    assert_eq!(
        srv.get("timeouts").and_then(Json::as_u64),
        Some(2),
        "{stats}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::start(ServerConfig {
        workers: 1,
        endpoints: vec![abox_endpoint("slow", 400)],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // In-flight when shutdown arrives: must still be answered `ok`.
    let in_flight = thread::spawn(move || {
        let mut c = Client::connect(addr);
        let resp = c.query("slow", "cq", Q, None);
        status(&resp).to_owned()
    });
    thread::sleep(Duration::from_millis(100)); // request is on the worker now
    server.shutdown();

    // A request arriving after shutdown is shed, not served: either the
    // connection is already torn down or it gets `shutting_down`.
    let late = thread::spawn(move || {
        let stream = std::net::TcpStream::connect(addr);
        let Ok(mut stream) = stream else {
            return "refused".to_owned(); // listener already gone
        };
        use std::io::{Read, Write};
        let _ = stream.write_all(
            b"{\"endpoint\":\"slow\",\"lang\":\"cq\",\"query\":\"q(x) :- Student(x)\"}\n",
        );
        let mut buf = String::new();
        match stream.read_to_string(&mut buf) {
            Ok(0) => "closed".to_owned(),
            Ok(_) => Json::parse(buf.lines().next().unwrap_or(""))
                .ok()
                .and_then(|j| j.get("status").and_then(Json::as_str).map(str::to_owned))
                .unwrap_or_else(|| "garbled".to_owned()),
            Err(_) => "closed".to_owned(),
        }
    });

    assert_eq!(
        in_flight.join().unwrap(),
        "ok",
        "in-flight request was dropped"
    );
    let late_outcome = late.join().unwrap();
    assert!(
        ["refused", "closed", "shutting_down"].contains(&late_outcome.as_str()),
        "late request was served after shutdown: {late_outcome}"
    );
    let drained = Instant::now();
    server.join();
    assert!(drained.elapsed() < Duration::from_secs(5), "join hung");
}

#[test]
fn malformed_frames_never_kill_the_connection() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_line_bytes: 4096,
        endpoints: vec![abox_endpoint("uni", 0)],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    // A battery of garbage on ONE connection; each frame must get an
    // `error` response and the connection must stay usable.
    client.send_raw(&[0xff, 0xfe, 0x00, 0x80]); // invalid utf-8
    assert_eq!(status(&client.read_response()), "error");
    for garbage in [
        "{",                                                           // truncated json
        "[1,2,3]",                                                     // not an object
        "{\"lang\":\"cq\"}",                                           // missing fields
        "{\"endpoint\":\"uni\",\"lang\":\"klingon\",\"query\":\"q\"}", // bad lang
        &"[".repeat(2000),                                             // nesting bomb
    ] {
        let resp = client.roundtrip(garbage);
        assert_eq!(status(&resp), "error", "garbage {garbage:.20}: {resp}");
    }
    // Unknown endpoint is an error response, not a dropped connection.
    let resp = client.query("nope", "cq", Q, None);
    assert_eq!(status(&resp), "error", "{resp}");
    // The same connection still serves real queries...
    let resp = client.query("uni", "cq", Q, None);
    assert_eq!(status(&resp), "ok", "{resp}");
    // ...and the garbage was counted.
    let stats = client.stats();
    let srv = stats.get("server").expect("server section");
    assert!(
        srv.get("malformed").and_then(Json::as_u64).unwrap() >= 6,
        "{stats}"
    );

    // An over-long frame cannot be re-framed: expect one `error`
    // response, then the connection is closed — while other connections
    // are untouched.
    let mut flooder = Client::connect(addr);
    flooder.send_raw(&vec![b'x'; 10_000]);
    let resp = flooder.read_response();
    assert_eq!(status(&resp), "error", "{resp}");
    let mut fresh = Client::connect(addr);
    let resp = fresh.query("uni", "cq", Q, None);
    assert_eq!(status(&resp), "ok", "{resp}");

    server.shutdown();
    server.join();
}
