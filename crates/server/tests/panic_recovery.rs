//! Poison-cascade regression: a panicking query must cost exactly one
//! `error` response — never a worker, never a lock.
//!
//! The scenario this pins down: every facade-internal mutex (rewrite
//! caches, materialized-ABox slot, job queue) used to be locked with
//! `.lock().unwrap()`-style patterns that turn a poisoned lock into a
//! fresh panic. One query panicking at the wrong instant would then
//! poison a shared cache and every later request would die on the same
//! lock — a server-wide outage from a single bad request. All locks now
//! go through `quonto::sync::lock_or_recover`, and this test drives the
//! panic path end-to-end through the `panic_marker` fault-injection
//! knob.

mod common;

use std::thread;

use common::{status, Client};
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

const Q: &str = "q(x) :- Student(x)";
const MARKER: &str = "__inject_panic__";

fn panicky_endpoint(name: &str) -> EndpointConfig {
    EndpointConfig {
        name: name.into(),
        kind: EndpointKind::UniversityAbox,
        scale: 1,
        seed: 7,
        panic_marker: Some(MARKER.into()),
        ..EndpointConfig::default()
    }
}

#[test]
fn panicking_queries_leave_the_server_answering() {
    let server = Server::start(ServerConfig {
        workers: 2,
        endpoints: vec![panicky_endpoint("uni")],
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    // Warm the rewrite cache so the post-panic queries exercise the
    // same locked cache the panicking requests touched.
    assert_eq!(status(&client.query("uni", "cq", Q, None)), "ok");

    // More panics than workers, in parallel: if a panic could wedge a
    // worker or poison a shared lock, at least one later request would
    // hang or die. The marker rides inside a comment-like suffix the
    // parser never sees — the panic fires in `Endpoint::answer` before
    // parsing, on the worker thread.
    let panic_query = format!("q(x) :- Student(x), {MARKER}(x)");
    let panickers: Vec<_> = (0..4)
        .map(|_| {
            let q = panic_query.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr);
                let resp = c.query("uni", "cq", &q, None);
                (
                    status(&resp).to_owned(),
                    resp.get("error")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                )
            })
        })
        .collect();
    for t in panickers {
        let (st, err) = t.join().expect("client thread");
        assert_eq!(st, "error", "injected panic must become an error response");
        assert!(
            err.contains("panicked"),
            "error should say the query panicked: {err}"
        );
    }

    // The same connection — and fresh ones — still get real answers.
    let resp = client.query("uni", "cq", Q, None);
    assert_eq!(status(&resp), "ok", "post-panic query failed: {resp}");
    let resp =
        Client::connect(addr).query("uni", "sparql", "SELECT ?x WHERE { ?x a :Student }", None);
    assert_eq!(status(&resp), "ok", "fresh connection failed: {resp}");

    // STATS still works and the cache kept counting across the panics
    // (a poisoned stats lock would panic the connection thread here).
    let stats = client.stats();
    assert_eq!(status(&stats), "ok");
    let uni = stats
        .get("endpoints")
        .and_then(|e| e.get("uni"))
        .expect("endpoint stats");
    assert!(
        uni.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "rewrite cache must survive panicking requests: {stats}"
    );
    let srv = stats.get("server").expect("server section");
    assert_eq!(
        srv.get("errors").and_then(Json::as_u64),
        Some(4),
        "each injected panic is one counted error: {stats}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn panic_marker_is_inert_when_unset() {
    let server = Server::start(ServerConfig {
        workers: 1,
        endpoints: vec![EndpointConfig {
            name: "uni".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            ..EndpointConfig::default()
        }],
        ..ServerConfig::default()
    })
    .expect("server starts");
    // Without the knob, a query mentioning the marker text is just an
    // (unparseable) query — an error response, but not a panic.
    let resp = Client::connect(server.addr()).query(
        "uni",
        "cq",
        &format!("q(x) :- Student(x), {MARKER}(x)"),
        None,
    );
    assert_eq!(status(&resp), "error");
    let err = resp.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(
        !err.contains("panicked"),
        "must fail as a parse error, not a panic: {err}"
    );
    server.shutdown();
    server.join();
}
