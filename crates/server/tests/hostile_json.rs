//! Hostile-input tests for the hand-rolled JSON parser and the framing
//! layer around it: depth bombs at the exact cap boundary, NUL bytes,
//! over-long lines, and multibyte UTF-8 truncated at a frame boundary.
//!
//! Two layers are probed. The parser itself (`Json::parse`) must turn
//! every attack into a `JsonError`, never a panic or a stack overflow.
//! The server on top must answer one `error` line per bad frame and
//! keep the connection usable — except for over-long frames, where the
//! stream can no longer be re-aligned and hanging up is the contract.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use common::{status, Client};
use obda_server::json::MAX_DEPTH;
use obda_server::{EndpointConfig, EndpointKind, Json, Server, ServerConfig};

const Q: &str = "q(x) :- Student(x)";

fn small_server(max_line_bytes: usize) -> Server {
    Server::start(ServerConfig {
        workers: 1,
        max_line_bytes,
        endpoints: vec![EndpointConfig {
            name: "uni".into(),
            kind: EndpointKind::UniversityAbox,
            scale: 1,
            ..EndpointConfig::default()
        }],
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// `n` nested arrays: `[[…[]…]]`. The innermost array sits at recursion
/// depth `n - 1`, so `MAX_DEPTH + 1` levels parse and `MAX_DEPTH + 2`
/// must be rejected.
fn nested_arrays(n: usize) -> String {
    let mut s = String::with_capacity(2 * n);
    s.extend(std::iter::repeat_n('[', n));
    s.extend(std::iter::repeat_n(']', n));
    s
}

// ---------------------------------------------------------------------
// Parser layer: table-driven attacks against `Json::parse`.
// ---------------------------------------------------------------------

#[test]
fn depth_cap_boundary_is_exact() {
    // (nesting levels, must parse?)
    let cases = [
        (1, true),
        (MAX_DEPTH, true),
        (MAX_DEPTH + 1, true),  // innermost at depth == MAX_DEPTH: allowed
        (MAX_DEPTH + 2, false), // one past the cap: rejected
        (MAX_DEPTH + 100, false),
        (100_000, false), // would overflow the stack without the cap
    ];
    for (levels, ok) in cases {
        let src = nested_arrays(levels);
        let got = Json::parse(&src);
        assert_eq!(
            got.is_ok(),
            ok,
            "{levels} nested arrays: expected ok={ok}, got {got:?}"
        );
        if !ok {
            let err = got.expect_err("checked above").to_string();
            assert!(err.contains("nesting too deep"), "{err}");
        }
    }
    // Objects burn depth the same way: {"a":{"a":…}} with the innermost
    // value at depth `levels`.
    let deep_obj = |levels: usize| {
        let mut s = String::new();
        s.extend(std::iter::repeat_n(r#"{"a":"#, levels));
        s.push('1');
        s.extend(std::iter::repeat_n('}', levels));
        s
    };
    assert!(Json::parse(&deep_obj(MAX_DEPTH)).is_ok());
    assert!(Json::parse(&deep_obj(MAX_DEPTH + 1)).is_err());
}

#[test]
fn hostile_bytes_error_not_panic() {
    // (name, input bytes as &str) — every one must parse to Err.
    let table: &[(&str, &str)] = &[
        ("nul inside string", "{\"query\":\"q\u{0}x\"}"),
        ("nul between tokens", "{\u{0}}"),
        ("bare nul", "\u{0}"),
        ("control char in string", "\"a\u{1f}b\""),
        ("escape then eof", "\"\\"),
        ("truncated surrogate escape", "\"\\ud8"),
        ("high surrogate then garbage", "\"\\ud800x\""),
        ("minus only", "-"),
        ("exponent soup", "1e+e+e"),
        ("colon in array", "[1:2]"),
        ("unclosed everything", "{\"a\":[{\"b\":[\"c"),
        ("deep then junk", "[[[[[[[[[[!]]]]]]]]]]"),
    ];
    for (name, src) in table {
        assert!(Json::parse(src).is_err(), "{name}: {src:?} must fail");
    }
}

// ---------------------------------------------------------------------
// Wire layer: the same attacks through a real connection.
// ---------------------------------------------------------------------

#[test]
fn depth_bomb_frames_get_one_error_line_each() {
    let server = small_server(1 << 20);
    let mut c = Client::connect(server.addr());
    // A bomb just past the cap: error response, connection survives.
    let resp = c.roundtrip(&nested_arrays(MAX_DEPTH + 2));
    assert_eq!(status(&resp), "error");
    let err = resp.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(err.contains("nesting too deep"), "{err}");
    // A much bigger bomb: still one error line, still alive.
    assert_eq!(status(&c.roundtrip(&nested_arrays(10_000))), "error");
    // The connection answers real queries afterwards.
    assert_eq!(status(&c.query("uni", "cq", Q, None)), "ok");
    server.shutdown();
    server.join();
}

#[test]
fn nul_bytes_on_the_wire_are_an_error_not_a_hangup() {
    let server = small_server(1 << 20);
    let mut c = Client::connect(server.addr());
    // NUL inside the frame: valid UTF-8, invalid JSON.
    c.send_raw(b"{\"endpoint\":\"uni\",\"query\":\"q\x00\"}");
    assert_eq!(status(&c.read_response()), "error");
    // NUL as the whole frame.
    c.send_raw(b"\x00");
    assert_eq!(status(&c.read_response()), "error");
    assert_eq!(status(&c.query("uni", "cq", Q, None)), "ok");
    server.shutdown();
    server.join();
}

#[test]
fn overlong_line_errors_and_hangs_up_but_server_survives() {
    let server = small_server(256);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // 4 KiB with no newline: overflows max_line_bytes=256 while buffering.
    stream.write_all(&[b'x'; 4096]).expect("send flood");
    stream.flush().expect("flush");
    // The server answers `frame too long` and closes: read to EOF and
    // check the one line we got.
    let mut got = String::new();
    stream.read_to_string(&mut got).expect("read until close");
    let line = got.lines().next().expect("one error line before close");
    let resp = Json::parse(line).expect("error line is JSON");
    assert_eq!(status(&resp), "error");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .contains("frame too long"),
        "{resp}"
    );
    // The *server* is fine — a fresh connection gets real answers.
    assert_eq!(
        status(&Client::connect(addr).query("uni", "cq", Q, None)),
        "ok"
    );
    server.shutdown();
    server.join();
}

#[test]
fn truncated_multibyte_at_frame_boundary_is_invalid_utf8_error() {
    let server = small_server(1 << 20);
    let mut c = Client::connect(server.addr());
    // 'é' is 0xC3 0xA9; ship only the lead byte, then end the frame. The
    // newline lands where the continuation byte should be, so the frame
    // is not UTF-8.
    c.send_raw(b"{\"endpoint\":\"uni\",\"query\":\"caf\xC3\"}");
    let resp = c.read_response();
    assert_eq!(status(&resp), "error");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .contains("invalid utf-8"),
        "{resp}"
    );
    // Same for a 4-byte emoji cut after three bytes.
    c.send_raw(b"\"\xF0\x9F\x98\"");
    assert_eq!(status(&c.read_response()), "error");
    // The connection survives both.
    assert_eq!(status(&c.query("uni", "cq", Q, None)), "ok");
    server.shutdown();
    server.join();
}

#[test]
fn multibyte_split_across_tcp_writes_reassembles() {
    // The framing buffer accumulates until the newline, so a multibyte
    // char split across two `write` calls must *parse*, not error: the
    // split is a transport artifact, not a malformed frame.
    let server = small_server(1 << 20);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let frame = "{\"endpoint\":\"uni\",\"lang\":\"cq\",\"query\":\"q(x) :- Café(x)\"}\n";
    let bytes = frame.as_bytes();
    // Split inside the 'é' (0xC3 0xA9).
    let cut = frame.find('é').expect("é present") + 1;
    stream.write_all(&bytes[..cut]).expect("first half");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(50));
    stream.write_all(&bytes[cut..]).expect("second half");
    stream.flush().expect("flush");
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("response");
    let resp = Json::parse(line.trim()).expect("valid JSON response");
    // `Café` is not a predicate in the scenario, so this is an engine
    // error — but crucially an *unknown predicate* error, proving the
    // frame reassembled into valid UTF-8 instead of dying at the
    // framing layer.
    assert_eq!(status(&resp), "error");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .contains("unknown predicate"),
        "{resp}"
    );
    server.shutdown();
    server.join();
}
