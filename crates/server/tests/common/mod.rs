//! Shared test client for the loopback integration tests.
//!
//! Each integration-test binary compiles its own copy and uses a
//! different subset of the helpers, so per-binary dead-code warnings
//! are noise here.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use obda_server::Json;

/// A blocking line-protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one raw line and returns the parsed response line.
    pub fn roundtrip(&mut self, line: &str) -> Json {
        self.send_raw(line.as_bytes());
        self.read_response()
    }

    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    pub fn read_response(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim()).expect("response is valid JSON")
    }

    /// Builds and sends a query request.
    pub fn query(
        &mut self,
        endpoint: &str,
        lang: &str,
        text: &str,
        timeout_ms: Option<u64>,
    ) -> Json {
        let mut req = Json::obj(vec![
            ("endpoint", endpoint.into()),
            ("lang", lang.into()),
            ("query", text.into()),
        ]);
        if let Some(ms) = timeout_ms {
            if let Json::Obj(fields) = &mut req {
                fields.push(("timeout_ms".into(), ms.into()));
            }
        }
        self.roundtrip(&req.to_string())
    }

    pub fn stats(&mut self) -> Json {
        self.roundtrip("STATS")
    }
}

/// Response status, or panic with the whole response for context.
pub fn status(resp: &Json) -> &str {
    resp.get("status")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response without status: {resp}"))
}
