//! Property-based tests for the OWL layer: NNF laws, printer/parser
//! round-trip, and the QL conversion's semantic faithfulness checked in
//! finite interpretations.

use obda_dllite::Interpretation;
use obda_owl::{is_nnf, nnf, parse_owl, printer, ClassExpr, Ontology, OwlAxiom};
use proptest::prelude::*;

const N_CLASSES: u32 = 4;
const N_PROPS: u32 = 2;

fn arb_class_expr() -> impl Strategy<Value = ClassExpr> {
    let leaf = prop_oneof![
        (0..N_CLASSES).prop_map(|i| ClassExpr::Class(obda_dllite::ConceptId(i))),
        Just(ClassExpr::Thing),
        Just(ClassExpr::Nothing),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(ClassExpr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ClassExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ClassExpr::or(a, b)),
            (0..N_PROPS, any::<bool>(), inner.clone()).prop_map(|(p, inv, c)| {
                let r = if inv {
                    obda_dllite::BasicRole::Inverse(obda_dllite::RoleId(p))
                } else {
                    obda_dllite::BasicRole::Direct(obda_dllite::RoleId(p))
                };
                ClassExpr::some(r, c)
            }),
            (0..N_PROPS, any::<bool>(), inner).prop_map(|(p, inv, c)| {
                let r = if inv {
                    obda_dllite::BasicRole::Inverse(obda_dllite::RoleId(p))
                } else {
                    obda_dllite::BasicRole::Direct(obda_dllite::RoleId(p))
                };
                ClassExpr::all(r, c)
            }),
        ]
    })
}

/// Evaluates a class expression in a finite interpretation.
fn holds(i: &Interpretation, c: &ClassExpr, e: usize) -> bool {
    match c {
        ClassExpr::Thing => true,
        ClassExpr::Nothing => false,
        ClassExpr::Class(a) => i.holds_basic(obda_dllite::BasicConcept::Atomic(*a), e),
        ClassExpr::Not(inner) => !holds(i, inner, e),
        ClassExpr::And(cs) => cs.iter().all(|c| holds(i, c, e)),
        ClassExpr::Or(cs) => cs.iter().any(|c| holds(i, c, e)),
        ClassExpr::Some(r, inner) => i.role_pairs(*r).any(|(s, o)| s == e && holds(i, inner, o)),
        ClassExpr::All(r, inner) => i.role_pairs(*r).all(|(s, o)| s != e || holds(i, inner, o)),
    }
}

fn random_interp(seed: u64) -> Interpretation {
    // A small deterministic interpretation derived from the seed bits.
    let mut i = Interpretation::new(3, N_CLASSES as usize, N_PROPS as usize, 0);
    let mut bits = seed;
    for a in 0..N_CLASSES {
        for e in 0..3 {
            if bits & 1 == 1 {
                i.add_concept(obda_dllite::ConceptId(a), e);
            }
            bits >>= 1;
        }
    }
    for p in 0..N_PROPS {
        for s in 0..3 {
            for o in 0..3 {
                if bits & 1 == 1 {
                    i.add_role(obda_dllite::RoleId(p), s, o);
                }
                bits = bits.rotate_right(1) ^ 0x9E3779B97F4A7C15;
            }
        }
    }
    i
}

fn sig_ontology() -> Ontology {
    let mut o = Ontology::new();
    for i in 0..N_CLASSES {
        o.sig.concept(&format!("C{i}"));
    }
    for i in 0..N_PROPS {
        o.sig.role(&format!("p{i}"));
    }
    o
}

proptest! {
    #[test]
    fn nnf_output_is_nnf_and_idempotent(c in arb_class_expr()) {
        let n = nnf(&c);
        prop_assert!(is_nnf(&n));
        prop_assert_eq!(nnf(&n), n);
    }

    #[test]
    fn nnf_preserves_semantics(c in arb_class_expr(), seed in any::<u64>()) {
        let i = random_interp(seed);
        let n = nnf(&c);
        for e in 0..3 {
            prop_assert_eq!(holds(&i, &c, e), holds(&i, &n, e));
        }
    }

    #[test]
    fn double_negation_nnf_is_involutive_semantically(c in arb_class_expr(), seed in any::<u64>()) {
        let i = random_interp(seed);
        let nn = nnf(&ClassExpr::not(ClassExpr::not(c.clone())));
        for e in 0..3 {
            prop_assert_eq!(holds(&i, &c, e), holds(&i, &nn, e));
        }
    }

    #[test]
    fn printer_parser_roundtrip(exprs in proptest::collection::vec((arb_class_expr(), arb_class_expr()), 1..6)) {
        let mut o = sig_ontology();
        for (c, d) in exprs {
            o.add(OwlAxiom::SubClassOf(c, d));
        }
        let printed = printer::ontology(&o);
        let reparsed = parse_owl(&printed).unwrap();
        prop_assert_eq!(o.axioms(), reparsed.axioms());
        prop_assert_eq!(&o.sig, &reparsed.sig);
    }

    #[test]
    fn normalize_preserves_semantics_per_interpretation(
        c in arb_class_expr(),
        d in arb_class_expr(),
        seed in any::<u64>(),
    ) {
        // EquivalentClasses / DisjointClasses normalization must hold in a
        // finite interpretation exactly when the original does.
        let i = random_interp(seed);
        let holds_subclass = |x: &ClassExpr, y: &ClassExpr| -> bool {
            (0..3).all(|e| !holds(&i, x, e) || holds(&i, y, e))
        };
        let equiv = OwlAxiom::EquivalentClasses(vec![c.clone(), d.clone()]);
        let direct = holds_subclass(&c, &d) && holds_subclass(&d, &c);
        let via_norm = equiv.normalize().iter().all(|ax| match ax {
            OwlAxiom::SubClassOf(x, y) => holds_subclass(x, y),
            _ => unreachable!(),
        });
        prop_assert_eq!(direct, via_norm);
    }
}
