//! Negation normal form (NNF) for class expressions.
//!
//! The tableau reasoner in `obda-reasoners` operates on NNF: negation is
//! pushed inward until it applies only to named classes, using the De
//! Morgan dualities and `¬∃R.C ≡ ∀R.¬C`, `¬∀R.C ≡ ∃R.¬C`.

use crate::expr::ClassExpr;

/// Converts a class expression to negation normal form.
pub fn nnf(c: &ClassExpr) -> ClassExpr {
    match c {
        ClassExpr::Thing | ClassExpr::Nothing | ClassExpr::Class(_) => c.clone(),
        ClassExpr::And(cs) => ClassExpr::And(cs.iter().map(nnf).collect()),
        ClassExpr::Or(cs) => ClassExpr::Or(cs.iter().map(nnf).collect()),
        ClassExpr::Some(r, inner) => ClassExpr::Some(*r, Box::new(nnf(inner))),
        ClassExpr::All(r, inner) => ClassExpr::All(*r, Box::new(nnf(inner))),
        ClassExpr::Not(inner) => nnf_neg(inner),
    }
}

/// NNF of `¬c`.
fn nnf_neg(c: &ClassExpr) -> ClassExpr {
    match c {
        ClassExpr::Thing => ClassExpr::Nothing,
        ClassExpr::Nothing => ClassExpr::Thing,
        ClassExpr::Class(_) => ClassExpr::Not(Box::new(c.clone())),
        ClassExpr::Not(inner) => nnf(inner),
        ClassExpr::And(cs) => ClassExpr::Or(cs.iter().map(nnf_neg).collect()),
        ClassExpr::Or(cs) => ClassExpr::And(cs.iter().map(nnf_neg).collect()),
        ClassExpr::Some(r, inner) => ClassExpr::All(*r, Box::new(nnf_neg(inner))),
        ClassExpr::All(r, inner) => ClassExpr::Some(*r, Box::new(nnf_neg(inner))),
    }
}

/// Whether an expression is already in NNF (negation only on named
/// classes).
pub fn is_nnf(c: &ClassExpr) -> bool {
    match c {
        ClassExpr::Thing | ClassExpr::Nothing | ClassExpr::Class(_) => true,
        ClassExpr::Not(inner) => matches!(inner.as_ref(), ClassExpr::Class(_)),
        ClassExpr::And(cs) | ClassExpr::Or(cs) => cs.iter().all(is_nnf),
        ClassExpr::Some(_, inner) | ClassExpr::All(_, inner) => is_nnf(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{BasicRole, ConceptId, RoleId};

    fn a() -> ClassExpr {
        ClassExpr::Class(ConceptId(0))
    }
    fn b() -> ClassExpr {
        ClassExpr::Class(ConceptId(1))
    }
    fn p() -> BasicRole {
        BasicRole::Direct(RoleId(0))
    }

    #[test]
    fn double_negation_cancels() {
        let c = ClassExpr::not(ClassExpr::not(a()));
        assert_eq!(nnf(&c), a());
    }

    #[test]
    fn de_morgan() {
        let c = ClassExpr::not(ClassExpr::and(a(), b()));
        assert_eq!(
            nnf(&c),
            ClassExpr::or(ClassExpr::not(a()), ClassExpr::not(b()))
        );
        let d = ClassExpr::not(ClassExpr::or(a(), b()));
        assert_eq!(
            nnf(&d),
            ClassExpr::and(ClassExpr::not(a()), ClassExpr::not(b()))
        );
    }

    #[test]
    fn quantifier_duality() {
        let c = ClassExpr::not(ClassExpr::some(p(), a()));
        assert_eq!(nnf(&c), ClassExpr::all(p(), ClassExpr::not(a())));
        let d = ClassExpr::not(ClassExpr::all(p(), a()));
        assert_eq!(nnf(&d), ClassExpr::some(p(), ClassExpr::not(a())));
    }

    #[test]
    fn constants_flip() {
        assert_eq!(nnf(&ClassExpr::not(ClassExpr::Thing)), ClassExpr::Nothing);
        assert_eq!(nnf(&ClassExpr::not(ClassExpr::Nothing)), ClassExpr::Thing);
    }

    #[test]
    fn nnf_is_idempotent_and_detected() {
        let c = ClassExpr::not(ClassExpr::and(
            a(),
            ClassExpr::some(p(), ClassExpr::not(ClassExpr::or(a(), b()))),
        ));
        let n = nnf(&c);
        assert!(is_nnf(&n));
        assert!(!is_nnf(&c));
        assert_eq!(nnf(&n), n);
    }
}
