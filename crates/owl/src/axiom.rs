//! OWL axioms and the [`Ontology`] container.

use obda_dllite::{AttributeId, ConceptId, RoleId, Signature};

use crate::expr::{ClassExpr, ObjectProperty};

/// An OWL axiom of the ALCHI fragment (plus minimal data-property
/// support, mirroring DL-Lite_A attributes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OwlAxiom {
    /// `SubClassOf(C D)`.
    SubClassOf(ClassExpr, ClassExpr),
    /// `EquivalentClasses(C₁ … Cₙ)`, n ≥ 2.
    EquivalentClasses(Vec<ClassExpr>),
    /// `DisjointClasses(C₁ … Cₙ)`, n ≥ 2 (pairwise disjointness).
    DisjointClasses(Vec<ClassExpr>),
    /// `SubObjectPropertyOf(R S)`.
    SubObjectPropertyOf(ObjectProperty, ObjectProperty),
    /// `EquivalentObjectProperties(R S)`.
    EquivalentObjectProperties(ObjectProperty, ObjectProperty),
    /// `InverseObjectProperties(P Q)`: `P ≡ Q⁻`.
    InverseObjectProperties(RoleId, RoleId),
    /// `DisjointObjectProperties(R S)`.
    DisjointObjectProperties(ObjectProperty, ObjectProperty),
    /// `ObjectPropertyDomain(R C)`: `∃R.⊤ ⊑ C`.
    ObjectPropertyDomain(ObjectProperty, ClassExpr),
    /// `ObjectPropertyRange(R C)`: `∃R⁻.⊤ ⊑ C`.
    ObjectPropertyRange(ObjectProperty, ClassExpr),
    /// `SubDataPropertyOf(U W)`.
    SubDataPropertyOf(AttributeId, AttributeId),
    /// `DisjointDataProperties(U W)`.
    DisjointDataProperties(AttributeId, AttributeId),
    /// `DataPropertyDomain(U C)`: `δ(U) ⊑ C`.
    DataPropertyDomain(AttributeId, ClassExpr),
}

impl OwlAxiom {
    /// Rewrites the axiom into an equivalent list of `SubClassOf` /
    /// `SubObjectPropertyOf` / data-property axioms (the normal form the
    /// tableau reasoner and the approximation pipeline consume).
    ///
    /// * `EquivalentClasses(C₁ … Cₙ)` → pairwise bidirectional
    ///   `SubClassOf`;
    /// * `DisjointClasses(…)` → pairwise `SubClassOf(Cᵢ, ¬Cⱼ)`;
    /// * `InverseObjectProperties(P, Q)` → `P ⊑ Q⁻`, `Q⁻ ⊑ P`;
    /// * `Disjoint/Domain/Range` → their standard `SubClassOf` forms with
    ///   `DisjointObjectProperties(R, S)` expressed as
    ///   `∃R.⊤ ⊓ ∃S.⊤`-free form `SubClassOf` over a fresh-free encoding:
    ///   it stays a property axiom (returned unchanged) since ALCHI class
    ///   expressions cannot express role disjointness.
    pub fn normalize(&self) -> Vec<OwlAxiom> {
        match self {
            OwlAxiom::EquivalentClasses(cs) => {
                let mut out = Vec::new();
                for i in 0..cs.len() {
                    for j in 0..cs.len() {
                        if i != j {
                            out.push(OwlAxiom::SubClassOf(cs[i].clone(), cs[j].clone()));
                        }
                    }
                }
                out
            }
            OwlAxiom::DisjointClasses(cs) => {
                let mut out = Vec::new();
                for i in 0..cs.len() {
                    for j in (i + 1)..cs.len() {
                        out.push(OwlAxiom::SubClassOf(
                            cs[i].clone(),
                            ClassExpr::not(cs[j].clone()),
                        ));
                    }
                }
                out
            }
            OwlAxiom::EquivalentObjectProperties(r, s) => vec![
                OwlAxiom::SubObjectPropertyOf(*r, *s),
                OwlAxiom::SubObjectPropertyOf(*s, *r),
            ],
            OwlAxiom::InverseObjectProperties(p, q) => vec![
                OwlAxiom::SubObjectPropertyOf(
                    ObjectProperty::Direct(*p),
                    ObjectProperty::Inverse(*q),
                ),
                OwlAxiom::SubObjectPropertyOf(
                    ObjectProperty::Inverse(*q),
                    ObjectProperty::Direct(*p),
                ),
            ],
            OwlAxiom::ObjectPropertyDomain(r, c) => {
                vec![OwlAxiom::SubClassOf(ClassExpr::some_thing(*r), c.clone())]
            }
            OwlAxiom::ObjectPropertyRange(r, c) => vec![OwlAxiom::SubClassOf(
                ClassExpr::some_thing(r.inverse()),
                c.clone(),
            )],
            other => vec![other.clone()],
        }
    }

    /// Collects the named signature of the axiom.
    pub fn collect_signature(
        &self,
        classes: &mut Vec<ConceptId>,
        props: &mut Vec<RoleId>,
        attrs: &mut Vec<AttributeId>,
    ) {
        match self {
            OwlAxiom::SubClassOf(c, d) => {
                c.collect_signature(classes, props);
                d.collect_signature(classes, props);
            }
            OwlAxiom::EquivalentClasses(cs) | OwlAxiom::DisjointClasses(cs) => {
                for c in cs {
                    c.collect_signature(classes, props);
                }
            }
            OwlAxiom::SubObjectPropertyOf(r, s)
            | OwlAxiom::EquivalentObjectProperties(r, s)
            | OwlAxiom::DisjointObjectProperties(r, s) => {
                props.push(r.role());
                props.push(s.role());
            }
            OwlAxiom::InverseObjectProperties(p, q) => {
                props.push(*p);
                props.push(*q);
            }
            OwlAxiom::ObjectPropertyDomain(r, c) | OwlAxiom::ObjectPropertyRange(r, c) => {
                props.push(r.role());
                c.collect_signature(classes, props);
            }
            OwlAxiom::SubDataPropertyOf(u, w) | OwlAxiom::DisjointDataProperties(u, w) => {
                attrs.push(*u);
                attrs.push(*w);
            }
            OwlAxiom::DataPropertyDomain(u, c) => {
                attrs.push(*u);
                c.collect_signature(classes, props);
            }
        }
    }
}

/// An OWL ontology: a shared signature plus axioms, duplicate-free.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    /// Interned names (classes ↔ concepts, object properties ↔ roles,
    /// data properties ↔ attributes).
    pub sig: Signature,
    axioms: Vec<OwlAxiom>,
    seen: std::collections::HashSet<OwlAxiom>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ontology over an existing signature.
    pub fn with_signature(sig: Signature) -> Self {
        Ontology {
            sig,
            ..Self::default()
        }
    }

    /// Adds an axiom, ignoring exact duplicates; returns `true` if new.
    pub fn add(&mut self, ax: OwlAxiom) -> bool {
        if self.seen.insert(ax.clone()) {
            self.axioms.push(ax);
            true
        } else {
            false
        }
    }

    /// All axioms in insertion order.
    pub fn axioms(&self) -> &[OwlAxiom] {
        &self.axioms
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether there are no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// All axioms rewritten to the `SubClassOf`/`SubObjectPropertyOf`
    /// normal form (see [`OwlAxiom::normalize`]).
    pub fn normalized_axioms(&self) -> Vec<OwlAxiom> {
        self.axioms.iter().flat_map(OwlAxiom::normalize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_classes_normalize_to_both_directions() {
        let a = ClassExpr::Class(ConceptId(0));
        let b = ClassExpr::Class(ConceptId(1));
        let norm = OwlAxiom::EquivalentClasses(vec![a.clone(), b.clone()]).normalize();
        assert_eq!(norm.len(), 2);
        assert!(norm.contains(&OwlAxiom::SubClassOf(a.clone(), b.clone())));
        assert!(norm.contains(&OwlAxiom::SubClassOf(b, a)));
    }

    #[test]
    fn disjoint_classes_normalize_pairwise() {
        let cs: Vec<ClassExpr> = (0..3).map(|i| ClassExpr::Class(ConceptId(i))).collect();
        let norm = OwlAxiom::DisjointClasses(cs).normalize();
        assert_eq!(norm.len(), 3); // C(3,2) pairs
    }

    #[test]
    fn domain_and_range_become_subclassof() {
        let r = ObjectProperty::Direct(RoleId(0));
        let c = ClassExpr::Class(ConceptId(0));
        let dom = OwlAxiom::ObjectPropertyDomain(r, c.clone()).normalize();
        assert_eq!(
            dom,
            vec![OwlAxiom::SubClassOf(ClassExpr::some_thing(r), c.clone())]
        );
        let rng = OwlAxiom::ObjectPropertyRange(r, c.clone()).normalize();
        assert_eq!(
            rng,
            vec![OwlAxiom::SubClassOf(ClassExpr::some_thing(r.inverse()), c)]
        );
    }

    #[test]
    fn inverse_properties_normalize_to_two_inclusions() {
        let norm = OwlAxiom::InverseObjectProperties(RoleId(0), RoleId(1)).normalize();
        assert_eq!(norm.len(), 2);
    }

    #[test]
    fn ontology_deduplicates() {
        let mut o = Ontology::new();
        let a = o.sig.concept("A");
        let b = o.sig.concept("B");
        let ax = OwlAxiom::SubClassOf(ClassExpr::Class(a), ClassExpr::Class(b));
        assert!(o.add(ax.clone()));
        assert!(!o.add(ax));
        assert_eq!(o.len(), 1);
    }
}
