//! OWL class and property expressions (ALCHI scale).
//!
//! The expression language covers what the paper's Section 7 needs from
//! "expressive languages (i.e. OWL)": boolean class constructors,
//! qualified existential and universal restrictions, and inverse
//! properties — i.e. the DL **ALCHI**, which strictly contains DL-Lite_R.
//! Names are interned in an [`obda_dllite::Signature`] (classes ↔ atomic
//! concepts, object properties ↔ atomic roles, data properties ↔
//! attributes) so OWL↔DL-Lite conversions never re-intern.

use obda_dllite::{BasicRole, ConceptId, RoleId};

/// An object-property expression: a named property or its inverse.
///
/// Structurally identical to [`obda_dllite::BasicRole`]; kept as an alias
/// so OWL code reads naturally.
pub type ObjectProperty = BasicRole;

/// An OWL class expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClassExpr {
    /// `owl:Thing` (⊤).
    Thing,
    /// `owl:Nothing` (⊥).
    Nothing,
    /// A named class.
    Class(ConceptId),
    /// `ObjectComplementOf` (¬C).
    Not(Box<ClassExpr>),
    /// `ObjectIntersectionOf` (C₁ ⊓ … ⊓ Cₙ), n ≥ 2.
    And(Vec<ClassExpr>),
    /// `ObjectUnionOf` (C₁ ⊔ … ⊔ Cₙ), n ≥ 2.
    Or(Vec<ClassExpr>),
    /// `ObjectSomeValuesFrom` (∃R.C).
    Some(ObjectProperty, Box<ClassExpr>),
    /// `ObjectAllValuesFrom` (∀R.C).
    All(ObjectProperty, Box<ClassExpr>),
}

impl ClassExpr {
    /// `∃R.⊤`, the OWL spelling of the DL-Lite unqualified existential.
    pub fn some_thing(r: ObjectProperty) -> ClassExpr {
        ClassExpr::Some(r, Box::new(ClassExpr::Thing))
    }

    /// Convenience constructor for `∃R.C`.
    pub fn some(r: ObjectProperty, c: ClassExpr) -> ClassExpr {
        ClassExpr::Some(r, Box::new(c))
    }

    /// Convenience constructor for `∀R.C`.
    pub fn all(r: ObjectProperty, c: ClassExpr) -> ClassExpr {
        ClassExpr::All(r, Box::new(c))
    }

    /// Convenience constructor for `¬C`.
    #[allow(clippy::should_implement_trait)] // builder-style constructor, not ops::Not
    pub fn not(c: ClassExpr) -> ClassExpr {
        ClassExpr::Not(Box::new(c))
    }

    /// Convenience constructor for a binary intersection.
    pub fn and(a: ClassExpr, b: ClassExpr) -> ClassExpr {
        ClassExpr::And(vec![a, b])
    }

    /// Convenience constructor for a binary union.
    pub fn or(a: ClassExpr, b: ClassExpr) -> ClassExpr {
        ClassExpr::Or(vec![a, b])
    }

    /// Structural size (number of constructors and names), used by
    /// generators and benchmark reports.
    pub fn size(&self) -> usize {
        match self {
            ClassExpr::Thing | ClassExpr::Nothing | ClassExpr::Class(_) => 1,
            ClassExpr::Not(c) => 1 + c.size(),
            ClassExpr::And(cs) | ClassExpr::Or(cs) => {
                1 + cs.iter().map(ClassExpr::size).sum::<usize>()
            }
            ClassExpr::Some(_, c) | ClassExpr::All(_, c) => 1 + c.size(),
        }
    }

    /// Collects the named classes and properties occurring in the
    /// expression into the provided sinks (deduplication is the caller's
    /// concern).
    pub fn collect_signature(&self, classes: &mut Vec<ConceptId>, props: &mut Vec<RoleId>) {
        match self {
            ClassExpr::Thing | ClassExpr::Nothing => {}
            ClassExpr::Class(a) => classes.push(*a),
            ClassExpr::Not(c) => c.collect_signature(classes, props),
            ClassExpr::And(cs) | ClassExpr::Or(cs) => {
                for c in cs {
                    c.collect_signature(classes, props);
                }
            }
            ClassExpr::Some(r, c) | ClassExpr::All(r, c) => {
                props.push(r.role());
                c.collect_signature(classes, props);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_constructors() {
        let c = ClassExpr::and(
            ClassExpr::Class(ConceptId(0)),
            ClassExpr::some(BasicRole::Direct(RoleId(0)), ClassExpr::Thing),
        );
        // And + Class + Some + Thing = 4.
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn collect_signature_visits_everything() {
        let c = ClassExpr::or(
            ClassExpr::not(ClassExpr::Class(ConceptId(1))),
            ClassExpr::all(
                BasicRole::Inverse(RoleId(2)),
                ClassExpr::Class(ConceptId(3)),
            ),
        );
        let mut classes = Vec::new();
        let mut props = Vec::new();
        c.collect_signature(&mut classes, &mut props);
        assert_eq!(classes, vec![ConceptId(1), ConceptId(3)]);
        assert_eq!(props, vec![RoleId(2)]);
    }
}
