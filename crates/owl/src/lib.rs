//! # obda-owl
//!
//! An OWL 2 object model at **ALCHI** scale — the "expressive language"
//! side of the paper's Section 7 (ontology approximation) and the input
//! language of the tableau baselines in `obda-reasoners`.
//!
//! Contents:
//!
//! * [`expr`]: class expressions (`⊤ ⊥ ¬ ⊓ ⊔ ∃ ∀`, inverse properties);
//! * [`axiom`]: OWL axioms, normalization to `SubClassOf` form, and the
//!   [`Ontology`] container;
//! * [`parser`] / [`printer`]: a functional-style-syntax subset;
//! * [`nnf`]: negation normal form (for the tableau);
//! * [`profile`]: the OWL 2 QL profile checker and strict OWL → DL-Lite
//!   conversion;
//! * [`convert`]: total DL-Lite → OWL conversion.
//!
//! Names are interned in an [`obda_dllite::Signature`], so conversions
//! between the two worlds preserve ids.

pub mod axiom;
pub mod convert;
pub mod expr;
pub mod nnf;
pub mod parser;
pub mod printer;
pub mod profile;

pub use axiom::{Ontology, OwlAxiom};
pub use convert::{axiom_is_convertible, axiom_to_owl, tbox_to_owl};
pub use expr::{ClassExpr, ObjectProperty};
pub use nnf::{is_nnf, nnf};
pub use parser::{parse_owl, OwlParseError};
pub use profile::{axiom_is_ql, axiom_to_dllite, ontology_to_dllite, split_ql, QlViolation};
