//! DL-Lite → OWL conversion (the inverse direction of
//! [`crate::profile`]).
//!
//! Every DL-Lite_R/A axiom is expressible in this crate's OWL fragment, so
//! the conversion is total. It is used by the approximation pipeline (to
//! feed DL-Lite candidates to the tableau oracle) and by tests that
//! cross-check the graph-based reasoner against the tableau.

use obda_dllite::{Axiom, BasicConcept, GeneralConcept, GeneralRole, Tbox};

use crate::axiom::{Ontology, OwlAxiom};
use crate::expr::ClassExpr;

/// Converts a basic concept to its OWL class expression.
///
/// `δ(U)` has no class-expression form in this OWL fragment; axioms
/// involving it are mapped at the axiom level (see [`axiom_to_owl`]), and
/// this function maps it to `owl:Thing`-free placeholder by panicking —
/// callers must handle attribute domains first.
fn basic_to_class(b: BasicConcept) -> ClassExpr {
    match b {
        BasicConcept::Atomic(a) => ClassExpr::Class(a),
        BasicConcept::Exists(q) => ClassExpr::some_thing(q),
        BasicConcept::AttrDomain(_) => {
            unreachable!("attribute domains are handled at the axiom level")
        }
    }
}

/// Converts a single DL-Lite axiom into an OWL axiom.
pub fn axiom_to_owl(ax: &Axiom) -> OwlAxiom {
    match *ax {
        Axiom::ConceptIncl(BasicConcept::AttrDomain(u), rhs) => {
            // δ(U) ⊑ C → DataPropertyDomain(U, C); negative and qualified
            // right-hand sides embed as class expressions.
            let c = general_to_class(rhs);
            OwlAxiom::DataPropertyDomain(u, c)
        }
        Axiom::ConceptIncl(lhs, rhs) => {
            OwlAxiom::SubClassOf(basic_to_class(lhs), general_to_class(rhs))
        }
        Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) => OwlAxiom::SubObjectPropertyOf(q1, q2),
        Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) => OwlAxiom::DisjointObjectProperties(q1, q2),
        Axiom::AttrIncl(u, w) => OwlAxiom::SubDataPropertyOf(u, w),
        Axiom::AttrNegIncl(u, w) => OwlAxiom::DisjointDataProperties(u, w),
    }
}

fn general_to_class(g: GeneralConcept) -> ClassExpr {
    match g {
        GeneralConcept::Basic(BasicConcept::AttrDomain(_))
        | GeneralConcept::Neg(BasicConcept::AttrDomain(_)) => {
            // δ(U) on the right-hand side cannot be expressed as a class
            // expression in this fragment; the tableau oracle never needs
            // it (attribute reasoning is structural), so reject loudly.
            unimplemented!("attribute domain on the right-hand side has no OWL class form here")
        }
        GeneralConcept::Basic(b) => basic_to_class(b),
        GeneralConcept::Neg(b) => ClassExpr::not(basic_to_class(b)),
        GeneralConcept::QualExists(q, a) => ClassExpr::some(q, ClassExpr::Class(a)),
    }
}

/// Whether a DL-Lite axiom is convertible by [`axiom_to_owl`] (everything
/// except `δ(U)` on a right-hand side).
pub fn axiom_is_convertible(ax: &Axiom) -> bool {
    !matches!(
        ax,
        Axiom::ConceptIncl(
            _,
            GeneralConcept::Basic(BasicConcept::AttrDomain(_))
                | GeneralConcept::Neg(BasicConcept::AttrDomain(_)),
        )
    )
}

/// Converts a whole TBox into an OWL ontology over the same signature.
///
/// # Panics
/// Panics if some axiom has `δ(U)` on its right-hand side (check with
/// [`axiom_is_convertible`] first when that shape can occur).
pub fn tbox_to_owl(t: &Tbox) -> Ontology {
    let mut o = Ontology::with_signature(t.sig.clone());
    for ax in t.axioms() {
        o.add(axiom_to_owl(ax));
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ontology_to_dllite;
    use obda_dllite::parse_tbox;

    #[test]
    fn roundtrip_dllite_owl_dllite() {
        let src = "concept A B C\nrole p r\nattribute u w\n\
                   A [= B\nA [= not B\nA [= exists p\nexists inv(p) [= A\n\
                   A [= exists p . B\np [= r\np [= not inv(r)\nu [= w\nu [= not w\n\
                   domain(u) [= A";
        let t1 = parse_tbox(src).unwrap();
        let o = tbox_to_owl(&t1);
        let t2 = ontology_to_dllite(&o).unwrap();
        // Same signature and same axiom set (order may differ).
        assert_eq!(t1.sig, t2.sig);
        let mut a1 = t1.axioms().to_vec();
        let mut a2 = t2.axioms().to_vec();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }

    #[test]
    fn convertibility_detects_attr_domain_rhs() {
        let t = parse_tbox("concept A\nattribute u\nA [= domain(u)").unwrap();
        assert!(!axiom_is_convertible(&t.axioms()[0]));
        let t2 = parse_tbox("concept A\nattribute u\ndomain(u) [= A").unwrap();
        assert!(axiom_is_convertible(&t2.axioms()[0]));
    }
}
