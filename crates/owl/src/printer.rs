//! Functional-style-syntax printer (inverse of [`crate::parser`]).

use std::fmt::Write as _;

use obda_dllite::Signature;

use crate::axiom::{Ontology, OwlAxiom};
use crate::expr::{ClassExpr, ObjectProperty};

/// Renders an object-property expression.
pub fn property(r: ObjectProperty, sig: &Signature) -> String {
    let name = sig.role_name(r.role());
    if r.is_inverse() {
        format!("ObjectInverseOf(:{name})")
    } else {
        format!(":{name}")
    }
}

/// Renders a class expression.
pub fn class_expr(c: &ClassExpr, sig: &Signature) -> String {
    match c {
        ClassExpr::Thing => "owl:Thing".to_owned(),
        ClassExpr::Nothing => "owl:Nothing".to_owned(),
        ClassExpr::Class(a) => format!(":{}", sig.concept_name(*a)),
        ClassExpr::Not(inner) => format!("ObjectComplementOf({})", class_expr(inner, sig)),
        ClassExpr::And(cs) => format!(
            "ObjectIntersectionOf({})",
            cs.iter()
                .map(|c| class_expr(c, sig))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        ClassExpr::Or(cs) => format!(
            "ObjectUnionOf({})",
            cs.iter()
                .map(|c| class_expr(c, sig))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        ClassExpr::Some(r, inner) => format!(
            "ObjectSomeValuesFrom({} {})",
            property(*r, sig),
            class_expr(inner, sig)
        ),
        ClassExpr::All(r, inner) => format!(
            "ObjectAllValuesFrom({} {})",
            property(*r, sig),
            class_expr(inner, sig)
        ),
    }
}

/// Renders a single axiom.
pub fn axiom(ax: &OwlAxiom, sig: &Signature) -> String {
    match ax {
        OwlAxiom::SubClassOf(c, d) => {
            format!("SubClassOf({} {})", class_expr(c, sig), class_expr(d, sig))
        }
        OwlAxiom::EquivalentClasses(cs) => format!(
            "EquivalentClasses({})",
            cs.iter()
                .map(|c| class_expr(c, sig))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        OwlAxiom::DisjointClasses(cs) => format!(
            "DisjointClasses({})",
            cs.iter()
                .map(|c| class_expr(c, sig))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        OwlAxiom::SubObjectPropertyOf(r, s) => format!(
            "SubObjectPropertyOf({} {})",
            property(*r, sig),
            property(*s, sig)
        ),
        OwlAxiom::EquivalentObjectProperties(r, s) => format!(
            "EquivalentObjectProperties({} {})",
            property(*r, sig),
            property(*s, sig)
        ),
        OwlAxiom::InverseObjectProperties(p, q) => format!(
            "InverseObjectProperties(:{} :{})",
            sig.role_name(*p),
            sig.role_name(*q)
        ),
        OwlAxiom::DisjointObjectProperties(r, s) => format!(
            "DisjointObjectProperties({} {})",
            property(*r, sig),
            property(*s, sig)
        ),
        OwlAxiom::ObjectPropertyDomain(r, c) => format!(
            "ObjectPropertyDomain({} {})",
            property(*r, sig),
            class_expr(c, sig)
        ),
        OwlAxiom::ObjectPropertyRange(r, c) => format!(
            "ObjectPropertyRange({} {})",
            property(*r, sig),
            class_expr(c, sig)
        ),
        OwlAxiom::SubDataPropertyOf(u, w) => format!(
            "SubDataPropertyOf(:{} :{})",
            sig.attribute_name(*u),
            sig.attribute_name(*w)
        ),
        OwlAxiom::DisjointDataProperties(u, w) => format!(
            "DisjointDataProperties(:{} :{})",
            sig.attribute_name(*u),
            sig.attribute_name(*w)
        ),
        OwlAxiom::DataPropertyDomain(u, c) => format!(
            "DataPropertyDomain(:{} {})",
            sig.attribute_name(*u),
            class_expr(c, sig)
        ),
    }
}

/// Renders a whole ontology wrapped in `Ontology( … )`, with declarations
/// for every interned name (so the output parses back to an identical
/// signature).
pub fn ontology(o: &Ontology) -> String {
    let mut out = String::from("Ontology(<http://obda-rs.example/generated>\n");
    for a in o.sig.concepts() {
        let _ = writeln!(out, "  Declaration(Class(:{}))", o.sig.concept_name(a));
    }
    for r in o.sig.roles() {
        let _ = writeln!(
            out,
            "  Declaration(ObjectProperty(:{}))",
            o.sig.role_name(r)
        );
    }
    for u in o.sig.attributes() {
        let _ = writeln!(
            out,
            "  Declaration(DataProperty(:{}))",
            o.sig.attribute_name(u)
        );
    }
    for ax in o.axioms() {
        let _ = writeln!(out, "  {}", axiom(ax, &o.sig));
    }
    out.push_str(")\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_owl;

    #[test]
    fn roundtrip_through_printer() {
        let src = r#"
            SubClassOf(A ObjectIntersectionOf(B ObjectComplementOf(ObjectSomeValuesFrom(p owl:Thing))))
            SubClassOf(ObjectUnionOf(A B) ObjectAllValuesFrom(ObjectInverseOf(p) C))
            DisjointClasses(A B)
            InverseObjectProperties(p r)
            ObjectPropertyDomain(p A)
            SubDataPropertyOf(u w)
            DataPropertyDomain(u A)
        "#;
        let o1 = parse_owl(src).unwrap();
        let printed = ontology(&o1);
        let o2 = parse_owl(&printed).unwrap();
        assert_eq!(o1.axioms(), o2.axioms());
        assert_eq!(o1.sig, o2.sig);
    }
}
