//! OWL 2 QL profile checking and the strict OWL → DL-Lite_R/A conversion.
//!
//! The QL profile (restricted to this crate's constructs) allows:
//!
//! * **subclass position** (left of `⊑`): a named class, `∃R.⊤`, or
//!   `owl:Nothing`;
//! * **superclass position**: a named class, `owl:Thing`, `owl:Nothing`,
//!   `∃R.⊤`, `∃R.A` with `A` named, the complement of a subclass
//!   expression, or an intersection of superclass expressions;
//! * property axioms: `SubObjectPropertyOf`, `EquivalentObjectProperties`,
//!   `InverseObjectProperties`, `DisjointObjectProperties`,
//!   `ObjectPropertyDomain/Range` (with a superclass expression), and all
//!   data-property axioms of this crate.
//!
//! [`ontology_to_dllite`] converts a QL ontology into an
//! [`obda_dllite::Tbox`] over the *same* signature ids (both sides intern
//! through [`obda_dllite::Signature`]); non-QL axioms are reported, not
//! silently dropped — dropping is the job of the *syntactic approximation*
//! in `obda-approx`.

use obda_dllite::{Axiom, BasicConcept, GeneralConcept, GeneralRole, Tbox};

use crate::axiom::{Ontology, OwlAxiom};
use crate::expr::ClassExpr;

/// Why an axiom falls outside OWL 2 QL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QlViolation {
    /// Index of the axiom in the source ontology (when known).
    pub axiom_index: Option<usize>,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for QlViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.axiom_index {
            Some(i) => write!(f, "axiom {}: {}", i, self.reason),
            None => f.write_str(&self.reason),
        }
    }
}

fn violation<T>(reason: impl Into<String>) -> Result<T, QlViolation> {
    Err(QlViolation {
        axiom_index: None,
        reason: reason.into(),
    })
}

/// Converts a QL *subclass* expression to a basic concept.
/// `owl:Nothing` has no basic-concept form and is handled by the axiom
/// converters directly.
pub fn subclass_to_basic(c: &ClassExpr) -> Result<BasicConcept, QlViolation> {
    match c {
        ClassExpr::Class(a) => Ok(BasicConcept::Atomic(*a)),
        ClassExpr::Some(r, inner) if **inner == ClassExpr::Thing => Ok(BasicConcept::Exists(*r)),
        ClassExpr::Thing => violation("owl:Thing is not a QL subclass expression"),
        ClassExpr::Nothing => {
            violation("owl:Nothing needs axiom-level handling, not a basic concept")
        }
        other => violation(format!(
            "not a QL subclass expression: {}",
            kind_name(other)
        )),
    }
}

/// Converts a QL *superclass* expression into the conjunct list of general
/// concepts it denotes (an intersection flattens; `owl:Thing` contributes
/// nothing; `owl:Nothing` is returned as `None` in the conjunct slot via
/// the dedicated variant below).
enum SuperConjunct {
    General(GeneralConcept),
    /// `owl:Nothing`: the axiom's left side is unsatisfiable.
    Nothing,
}

fn superclass_to_conjuncts(c: &ClassExpr, out: &mut Vec<SuperConjunct>) -> Result<(), QlViolation> {
    match c {
        ClassExpr::Thing => Ok(()),
        ClassExpr::Nothing => {
            out.push(SuperConjunct::Nothing);
            Ok(())
        }
        ClassExpr::Class(a) => {
            out.push(SuperConjunct::General(GeneralConcept::Basic(
                BasicConcept::Atomic(*a),
            )));
            Ok(())
        }
        ClassExpr::Some(r, inner) => match inner.as_ref() {
            ClassExpr::Thing => {
                out.push(SuperConjunct::General(GeneralConcept::Basic(
                    BasicConcept::Exists(*r),
                )));
                Ok(())
            }
            ClassExpr::Class(a) => {
                out.push(SuperConjunct::General(GeneralConcept::QualExists(*r, *a)));
                Ok(())
            }
            other => violation(format!(
                "QL existential fillers must be named classes or owl:Thing, found {}",
                kind_name(other)
            )),
        },
        ClassExpr::Not(inner) => {
            let b = subclass_to_basic(inner)?;
            out.push(SuperConjunct::General(GeneralConcept::Neg(b)));
            Ok(())
        }
        ClassExpr::And(cs) => {
            for c in cs {
                superclass_to_conjuncts(c, out)?;
            }
            Ok(())
        }
        other => violation(format!(
            "not a QL superclass expression: {}",
            kind_name(other)
        )),
    }
}

fn kind_name(c: &ClassExpr) -> &'static str {
    match c {
        ClassExpr::Thing => "owl:Thing",
        ClassExpr::Nothing => "owl:Nothing",
        ClassExpr::Class(_) => "a named class",
        ClassExpr::Not(_) => "ObjectComplementOf",
        ClassExpr::And(_) => "ObjectIntersectionOf",
        ClassExpr::Or(_) => "ObjectUnionOf",
        ClassExpr::Some(_, _) => "ObjectSomeValuesFrom",
        ClassExpr::All(_, _) => "ObjectAllValuesFrom",
    }
}

/// Converts a single OWL axiom into the DL-Lite axioms it denotes, or
/// reports why it is not in QL. `SubClassOf(X, owl:Nothing)` becomes the
/// DL-Lite-expressible self-disjointness `X ⊑ ¬X`;
/// `SubClassOf(owl:Nothing, …)` is a tautology and converts to nothing.
pub fn axiom_to_dllite(ax: &OwlAxiom) -> Result<Vec<Axiom>, QlViolation> {
    let mut out = Vec::new();
    match ax {
        OwlAxiom::SubClassOf(sub, sup) => {
            if *sub == ClassExpr::Nothing {
                return Ok(out);
            }
            let lhs = subclass_to_basic(sub)?;
            let mut conjuncts = Vec::new();
            superclass_to_conjuncts(sup, &mut conjuncts)?;
            for conj in conjuncts {
                match conj {
                    SuperConjunct::General(g) => out.push(Axiom::ConceptIncl(lhs, g)),
                    SuperConjunct::Nothing => {
                        out.push(Axiom::ConceptIncl(lhs, GeneralConcept::Neg(lhs)))
                    }
                }
            }
            Ok(out)
        }
        OwlAxiom::EquivalentClasses(_)
        | OwlAxiom::DisjointClasses(_)
        | OwlAxiom::EquivalentObjectProperties(_, _)
        | OwlAxiom::InverseObjectProperties(_, _)
        | OwlAxiom::ObjectPropertyDomain(_, _)
        | OwlAxiom::ObjectPropertyRange(_, _) => {
            for n in ax.normalize() {
                out.extend(axiom_to_dllite(&n)?);
            }
            Ok(out)
        }
        OwlAxiom::SubObjectPropertyOf(r, s) => {
            out.push(Axiom::RoleIncl(*r, GeneralRole::Basic(*s)));
            Ok(out)
        }
        OwlAxiom::DisjointObjectProperties(r, s) => {
            out.push(Axiom::RoleIncl(*r, GeneralRole::Neg(*s)));
            Ok(out)
        }
        OwlAxiom::SubDataPropertyOf(u, w) => {
            out.push(Axiom::AttrIncl(*u, *w));
            Ok(out)
        }
        OwlAxiom::DisjointDataProperties(u, w) => {
            out.push(Axiom::AttrNegIncl(*u, *w));
            Ok(out)
        }
        OwlAxiom::DataPropertyDomain(u, c) => {
            let lhs = BasicConcept::AttrDomain(*u);
            let mut conjuncts = Vec::new();
            superclass_to_conjuncts(c, &mut conjuncts)?;
            for conj in conjuncts {
                match conj {
                    SuperConjunct::General(g) => out.push(Axiom::ConceptIncl(lhs, g)),
                    SuperConjunct::Nothing => {
                        out.push(Axiom::ConceptIncl(lhs, GeneralConcept::Neg(lhs)))
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Whether a single axiom lies in the QL profile.
pub fn axiom_is_ql(ax: &OwlAxiom) -> bool {
    axiom_to_dllite(ax).is_ok()
}

/// Converts a whole QL ontology into a DL-Lite TBox over the same
/// signature. The first non-QL axiom aborts the conversion with its index.
pub fn ontology_to_dllite(onto: &Ontology) -> Result<Tbox, QlViolation> {
    let mut tbox = Tbox::with_signature(onto.sig.clone());
    for (i, ax) in onto.axioms().iter().enumerate() {
        let converted = axiom_to_dllite(ax).map_err(|mut v| {
            v.axiom_index = Some(i);
            v
        })?;
        for a in converted {
            tbox.add(a);
        }
    }
    Ok(tbox)
}

/// Splits an ontology into its QL part (converted to a TBox) and the list
/// of non-QL axiom indices — the primitive used by syntactic
/// approximation.
pub fn split_ql(onto: &Ontology) -> (Tbox, Vec<usize>) {
    let mut tbox = Tbox::with_signature(onto.sig.clone());
    let mut rejected = Vec::new();
    for (i, ax) in onto.axioms().iter().enumerate() {
        match axiom_to_dllite(ax) {
            Ok(axs) => {
                for a in axs {
                    tbox.add(a);
                }
            }
            Err(_) => rejected.push(i),
        }
    }
    (tbox, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_owl;
    use obda_dllite::printer::{self, Style};

    fn convert(src: &str) -> Result<Vec<String>, QlViolation> {
        let o = parse_owl(src).unwrap();
        let t = ontology_to_dllite(&o)?;
        Ok(t.axioms()
            .iter()
            .map(|ax| printer::axiom(ax, &t.sig, Style::Display))
            .collect())
    }

    #[test]
    fn figure2_converts() {
        let axs = convert(
            "SubClassOf(County ObjectSomeValuesFrom(isPartOf State))\n\
             SubClassOf(State ObjectSomeValuesFrom(ObjectInverseOf(isPartOf) County))",
        )
        .unwrap();
        assert_eq!(
            axs,
            vec!["County ⊑ ∃isPartOf.State", "State ⊑ ∃isPartOf⁻.County"]
        );
    }

    #[test]
    fn intersection_superclass_splits() {
        let axs = convert("SubClassOf(A ObjectIntersectionOf(B ObjectComplementOf(C)))").unwrap();
        assert_eq!(axs, vec!["A ⊑ B", "A ⊑ ¬C"]);
    }

    #[test]
    fn domain_range_disjointness_convert() {
        let axs = convert(
            "ObjectPropertyDomain(p A)\nObjectPropertyRange(p B)\nDisjointObjectProperties(p r)\nDisjointClasses(A B)",
        )
        .unwrap();
        assert_eq!(axs, vec!["∃p ⊑ A", "∃p⁻ ⊑ B", "p ⊑ ¬r", "A ⊑ ¬B"]);
    }

    #[test]
    fn nothing_superclass_becomes_self_disjointness() {
        let axs = convert("SubClassOf(A owl:Nothing)").unwrap();
        assert_eq!(axs, vec!["A ⊑ ¬A"]);
    }

    #[test]
    fn nothing_subclass_is_tautology() {
        let axs = convert("SubClassOf(owl:Nothing A)").unwrap();
        assert!(axs.is_empty());
    }

    #[test]
    fn union_on_lhs_is_rejected() {
        let err = convert("SubClassOf(ObjectUnionOf(A B) C)").unwrap_err();
        assert!(err.reason.contains("ObjectUnionOf"));
        assert_eq!(err.axiom_index, Some(0));
    }

    #[test]
    fn universal_restriction_is_rejected() {
        assert!(convert("SubClassOf(A ObjectAllValuesFrom(p B))").is_err());
    }

    #[test]
    fn qualified_lhs_is_rejected() {
        assert!(convert("SubClassOf(ObjectSomeValuesFrom(p B) C)").is_err());
    }

    #[test]
    fn data_property_axioms_convert() {
        let axs =
            convert("SubDataPropertyOf(u w)\nDisjointDataProperties(u w)\nDataPropertyDomain(u A)")
                .unwrap();
        assert_eq!(axs, vec!["u ⊑ w", "u ⊑ ¬w", "δ(u) ⊑ A"]);
    }

    #[test]
    fn split_ql_partitions() {
        let o = parse_owl(
            "SubClassOf(A B)\nSubClassOf(ObjectUnionOf(A B) C)\nSubClassOf(B ObjectAllValuesFrom(p A))",
        )
        .unwrap();
        let (tbox, rejected) = split_ql(&o);
        assert_eq!(tbox.len(), 1);
        assert_eq!(rejected, vec![1, 2]);
    }

    #[test]
    fn equivalent_classes_of_basics_convert() {
        let axs = convert("EquivalentClasses(A ObjectSomeValuesFrom(p owl:Thing))").unwrap();
        assert_eq!(axs, vec!["A ⊑ ∃p", "∃p ⊑ A"]);
    }
}
