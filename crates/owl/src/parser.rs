//! Parser for a subset of the OWL 2 functional-style syntax.
//!
//! Supported structure (whitespace-insensitive, `#`-to-end-of-line
//! comments, optional `Ontology( … )` wrapper, `Prefix(…)` lines ignored):
//!
//! ```text
//! Ontology(<http://example.org/geo>
//!   Declaration(Class(:County))
//!   Declaration(ObjectProperty(:isPartOf))
//!   Declaration(DataProperty(:population))
//!   SubClassOf(:County ObjectSomeValuesFrom(:isPartOf :State))
//!   SubClassOf(ObjectUnionOf(:A :B) :C)
//!   EquivalentClasses(:A :B)
//!   DisjointClasses(:A :B :C)
//!   SubObjectPropertyOf(:p :r)
//!   SubObjectPropertyOf(ObjectInverseOf(:p) :r)
//!   InverseObjectProperties(:p :q)
//!   DisjointObjectProperties(:p :q)
//!   ObjectPropertyDomain(:p :A)
//!   ObjectPropertyRange(:p :B)
//!   SubDataPropertyOf(:u :w)
//!   DataPropertyDomain(:u :A)
//! )
//! ```
//!
//! Class expressions: named classes, `owl:Thing`, `owl:Nothing`,
//! `ObjectComplementOf`, `ObjectIntersectionOf`, `ObjectUnionOf`,
//! `ObjectSomeValuesFrom`, `ObjectAllValuesFrom`, `ObjectInverseOf` in
//! property position. Undeclared names are interned on first use (OWL
//! files in the wild often omit declarations).

use std::fmt;

use obda_dllite::BasicRole;

use crate::axiom::{Ontology, OwlAxiom};
use crate::expr::{ClassExpr, ObjectProperty};

/// Parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwlParseError {
    /// Byte offset into the source where the problem was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for OwlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for OwlParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    /// Bare or `:`-prefixed identifier; `owl:Thing`/`owl:Nothing` keep the
    /// prefix.
    Word(String),
    /// `<…>` IRI (only allowed right after `Ontology(`, otherwise ignored
    /// content).
    Iri(String),
    /// `=`, only valid inside `Prefix(:=<…>)` headers.
    Eq,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, OwlParseError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            '<' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'>' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(OwlParseError {
                        offset: i,
                        message: "unterminated IRI".into(),
                    });
                }
                toks.push((i, Tok::Iri(src[start..j].to_owned())));
                i = j + 1;
            }
            ':' | '_' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '-' || b == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = src[start..i].trim_start_matches(':').to_owned();
                toks.push((start, Tok::Word(word)));
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '-' || b == '.' || b == ':' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((start, Tok::Word(src[start..i].to_owned())));
            }
            other => {
                return Err(OwlParseError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

struct P<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
    onto: Ontology,
}

impl<'a> P<'a> {
    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|t| t.0).unwrap_or(usize::MAX)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, OwlParseError> {
        Err(OwlParseError {
            offset: self.offset(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.1)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.1);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_lparen(&mut self) -> Result<(), OwlParseError> {
        match self.next() {
            Some(Tok::LParen) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected `(`")
            }
        }
    }

    fn expect_rparen(&mut self) -> Result<(), OwlParseError> {
        match self.next() {
            Some(Tok::RParen) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected `)`")
            }
        }
    }

    fn word(&mut self, what: &str) -> Result<String, OwlParseError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {what}"))
            }
        }
    }

    fn parse_property(&mut self) -> Result<ObjectProperty, OwlParseError> {
        match self.peek() {
            Some(Tok::Word(w)) if w == "ObjectInverseOf" => {
                self.next();
                self.expect_lparen()?;
                let name = self.word("property name")?;
                self.expect_rparen()?;
                Ok(BasicRole::Inverse(self.onto.sig.role(&name)))
            }
            Some(Tok::Word(_)) => {
                let name = self.word("property name")?;
                Ok(BasicRole::Direct(self.onto.sig.role(&name)))
            }
            _ => self.err("expected object property expression"),
        }
    }

    fn parse_class(&mut self) -> Result<ClassExpr, OwlParseError> {
        let word = self.word("class expression")?;
        match word.as_str() {
            "owl:Thing" => Ok(ClassExpr::Thing),
            "owl:Nothing" => Ok(ClassExpr::Nothing),
            "ObjectComplementOf" => {
                self.expect_lparen()?;
                let c = self.parse_class()?;
                self.expect_rparen()?;
                Ok(ClassExpr::Not(Box::new(c)))
            }
            "ObjectIntersectionOf" | "ObjectUnionOf" => {
                self.expect_lparen()?;
                let mut cs = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    cs.push(self.parse_class()?);
                }
                self.expect_rparen()?;
                if cs.len() < 2 {
                    return self.err(format!("{word} needs at least two operands"));
                }
                Ok(if word == "ObjectIntersectionOf" {
                    ClassExpr::And(cs)
                } else {
                    ClassExpr::Or(cs)
                })
            }
            "ObjectSomeValuesFrom" | "ObjectAllValuesFrom" => {
                self.expect_lparen()?;
                let r = self.parse_property()?;
                let c = self.parse_class()?;
                self.expect_rparen()?;
                Ok(if word == "ObjectSomeValuesFrom" {
                    ClassExpr::Some(r, Box::new(c))
                } else {
                    ClassExpr::All(r, Box::new(c))
                })
            }
            name => Ok(ClassExpr::Class(self.onto.sig.concept(name))),
        }
    }

    fn parse_axiom(&mut self, head: &str) -> Result<(), OwlParseError> {
        self.expect_lparen()?;
        match head {
            "Declaration" => {
                let kind = self.word("declaration kind")?;
                self.expect_lparen()?;
                let name = self.word("declared name")?;
                self.expect_rparen()?;
                match kind.as_str() {
                    "Class" => {
                        self.onto.sig.concept(&name);
                    }
                    "ObjectProperty" => {
                        self.onto.sig.role(&name);
                    }
                    "DataProperty" => {
                        self.onto.sig.attribute(&name);
                    }
                    other => return self.err(format!("unsupported declaration `{other}`")),
                }
            }
            "SubClassOf" => {
                let c = self.parse_class()?;
                let d = self.parse_class()?;
                self.onto.add(OwlAxiom::SubClassOf(c, d));
            }
            "EquivalentClasses" | "DisjointClasses" => {
                let mut cs = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    cs.push(self.parse_class()?);
                }
                if cs.len() < 2 {
                    return self.err(format!("{head} needs at least two operands"));
                }
                self.onto.add(if head == "EquivalentClasses" {
                    OwlAxiom::EquivalentClasses(cs)
                } else {
                    OwlAxiom::DisjointClasses(cs)
                });
            }
            "SubObjectPropertyOf" => {
                let r = self.parse_property()?;
                let s = self.parse_property()?;
                self.onto.add(OwlAxiom::SubObjectPropertyOf(r, s));
            }
            "EquivalentObjectProperties" => {
                let r = self.parse_property()?;
                let s = self.parse_property()?;
                self.onto.add(OwlAxiom::EquivalentObjectProperties(r, s));
            }
            "InverseObjectProperties" => {
                let p = self.word("property name")?;
                let q = self.word("property name")?;
                let p = self.onto.sig.role(&p);
                let q = self.onto.sig.role(&q);
                self.onto.add(OwlAxiom::InverseObjectProperties(p, q));
            }
            "DisjointObjectProperties" => {
                let r = self.parse_property()?;
                let s = self.parse_property()?;
                self.onto.add(OwlAxiom::DisjointObjectProperties(r, s));
            }
            "ObjectPropertyDomain" => {
                let r = self.parse_property()?;
                let c = self.parse_class()?;
                self.onto.add(OwlAxiom::ObjectPropertyDomain(r, c));
            }
            "ObjectPropertyRange" => {
                let r = self.parse_property()?;
                let c = self.parse_class()?;
                self.onto.add(OwlAxiom::ObjectPropertyRange(r, c));
            }
            "SubDataPropertyOf" | "DisjointDataProperties" => {
                let u = self.word("data property name")?;
                let w = self.word("data property name")?;
                let u = self.onto.sig.attribute(&u);
                let w = self.onto.sig.attribute(&w);
                self.onto.add(if head == "SubDataPropertyOf" {
                    OwlAxiom::SubDataPropertyOf(u, w)
                } else {
                    OwlAxiom::DisjointDataProperties(u, w)
                });
            }
            "DataPropertyDomain" => {
                let u = self.word("data property name")?;
                let u = self.onto.sig.attribute(&u);
                let c = self.parse_class()?;
                self.onto.add(OwlAxiom::DataPropertyDomain(u, c));
            }
            other => return self.err(format!("unsupported axiom `{other}`")),
        }
        self.expect_rparen()
    }
}

/// Parses an ontology in the functional-style subset described in the
/// module docs.
pub fn parse_owl(src: &str) -> Result<Ontology, OwlParseError> {
    let toks = tokenize(src)?;
    let mut p = P {
        toks: &toks,
        pos: 0,
        onto: Ontology::new(),
    };
    let mut wrapped = false;
    // Skip Prefix(...) headers.
    loop {
        match p.peek() {
            Some(Tok::Word(w)) if w == "Prefix" => {
                p.next();
                p.expect_lparen()?;
                let mut depth = 1;
                while depth > 0 {
                    match p.next() {
                        Some(Tok::LParen) => depth += 1,
                        Some(Tok::RParen) => depth -= 1,
                        Some(_) => {}
                        None => return p.err("unterminated Prefix"),
                    }
                }
            }
            Some(Tok::Word(w)) if w == "Ontology" => {
                p.next();
                p.expect_lparen()?;
                wrapped = true;
                if let Some(Tok::Iri(_)) = p.peek() {
                    p.next();
                }
                break;
            }
            _ => break,
        }
    }
    loop {
        match p.peek() {
            None => break,
            Some(Tok::RParen) if wrapped => {
                p.next();
                wrapped = false;
            }
            Some(Tok::Word(_)) => {
                let head = p.word("axiom head")?;
                p.parse_axiom(&head)?;
            }
            _ => return p.err("expected axiom"),
        }
    }
    if wrapped {
        return p.err("missing `)` closing Ontology(");
    }
    Ok(p.onto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::ConceptId;

    #[test]
    fn parses_wrapped_ontology() {
        let src = r#"
            Prefix(:=<http://example.org/>)
            Ontology(<http://example.org/geo>
              Declaration(Class(:County))
              Declaration(Class(:State))
              Declaration(ObjectProperty(:isPartOf))
              SubClassOf(:County ObjectSomeValuesFrom(:isPartOf :State))
            )
        "#;
        let o = parse_owl(src).unwrap();
        assert_eq!(o.len(), 1);
        assert_eq!(o.sig.num_concepts(), 2);
        assert_eq!(o.sig.num_roles(), 1);
    }

    #[test]
    fn parses_bare_axiom_list_with_all_constructors() {
        let src = r#"
            SubClassOf(A ObjectIntersectionOf(B ObjectComplementOf(C)))
            SubClassOf(ObjectUnionOf(A B) owl:Thing)
            SubClassOf(owl:Nothing A)
            SubClassOf(A ObjectAllValuesFrom(ObjectInverseOf(p) B))
            EquivalentClasses(A B)
            DisjointClasses(A B C)
            SubObjectPropertyOf(p r)
            EquivalentObjectProperties(p r)
            InverseObjectProperties(p r)
            DisjointObjectProperties(p ObjectInverseOf(r))
            ObjectPropertyDomain(p A)
            ObjectPropertyRange(p B)
            SubDataPropertyOf(u w)
            DataPropertyDomain(u A)
        "#;
        let o = parse_owl(src).unwrap();
        assert_eq!(o.len(), 14);
        assert_eq!(o.sig.num_attributes(), 2);
    }

    #[test]
    fn undeclared_names_are_interned() {
        let o = parse_owl("SubClassOf(X Y)").unwrap();
        assert!(o.sig.find_concept("X").is_some());
        assert!(o.sig.find_concept("Y").is_some());
    }

    #[test]
    fn thing_and_nothing_are_not_interned_as_classes() {
        let o = parse_owl("SubClassOf(owl:Nothing owl:Thing)").unwrap();
        assert_eq!(o.sig.num_concepts(), 0);
        assert_eq!(
            o.axioms()[0],
            OwlAxiom::SubClassOf(ClassExpr::Nothing, ClassExpr::Thing)
        );
    }

    #[test]
    fn nested_expression_shapes() {
        let o = parse_owl(
            "SubClassOf(A ObjectSomeValuesFrom(p ObjectUnionOf(B ObjectSomeValuesFrom(r C))))",
        )
        .unwrap();
        match &o.axioms()[0] {
            OwlAxiom::SubClassOf(ClassExpr::Class(ConceptId(0)), ClassExpr::Some(_, inner)) => {
                match inner.as_ref() {
                    ClassExpr::Or(cs) => assert_eq!(cs.len(), 2),
                    other => panic!("unexpected inner {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_owl("SubClassOf(A").unwrap_err();
        assert!(e.message.contains("expected"));
        let e2 = parse_owl("FancyAxiom(A B)").unwrap_err();
        assert!(e2.message.contains("unsupported axiom"));
    }

    #[test]
    fn comments_are_skipped() {
        let o = parse_owl("# header\nSubClassOf(A B) # trailing\n").unwrap();
        assert_eq!(o.len(), 1);
    }
}
