//! Two-dimensional modularization (Section 6, "Scalability and
//! modularization"): **horizontal** — dividing the ontology into separate
//! domains — and **vertical** — views of growing detail over the same
//! domain.

use std::collections::{HashMap, HashSet};

use obda_dllite::{Axiom, GeneralConcept, NamedPredicate, Tbox};

/// One horizontal module: a name and the sub-TBox of its domain.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (derived from its lexicographically first predicate).
    pub name: String,
    /// Axioms of the module (signature restricted to its predicates).
    pub tbox: Tbox,
}

/// Dense index for named predicates (union-find keys).
fn pred_index(t: &Tbox, p: NamedPredicate) -> usize {
    match p {
        NamedPredicate::Concept(a) => a.0 as usize,
        NamedPredicate::Role(r) => t.sig.num_concepts() + r.0 as usize,
        NamedPredicate::Attribute(u) => t.sig.num_concepts() + t.sig.num_roles() + u.0 as usize,
    }
}

fn axiom_preds(_t: &Tbox, ax: &Axiom) -> Vec<NamedPredicate> {
    let sig = Tbox::axiom_signature(ax);
    let mut out: Vec<NamedPredicate> = sig
        .concepts
        .iter()
        .map(|&c| NamedPredicate::Concept(c))
        .collect();
    out.extend(sig.roles.iter().map(|&r| NamedPredicate::Role(r)));
    out.extend(sig.attributes.iter().map(|&u| NamedPredicate::Attribute(u)));
    out
}

/// Splits the TBox into its **horizontal modules**: the connected
/// components of the predicate co-occurrence graph (two predicates are
/// connected when they share an axiom). Predicates mentioned in no axiom
/// form singleton modules.
pub fn horizontal_modules(t: &Tbox) -> Vec<Module> {
    let n = t.sig.num_concepts() + t.sig.num_roles() + t.sig.num_attributes();
    // Union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for ax in t.axioms() {
        let preds = axiom_preds(t, ax);
        for w in preds.windows(2) {
            let a = find(&mut parent, pred_index(t, w[0]));
            let b = find(&mut parent, pred_index(t, w[1]));
            parent[a] = b;
        }
    }
    // Group axioms per component.
    let mut groups: HashMap<usize, Vec<&Axiom>> = HashMap::new();
    for ax in t.axioms() {
        let rep = find(&mut parent, pred_index(t, axiom_preds(t, ax)[0]));
        groups.entry(rep).or_default().push(ax);
    }
    let mut modules = Vec::new();
    for (_, axioms) in groups {
        let module = restrict(t, &axioms);
        let name = module_name(&module);
        modules.push(Module { name, tbox: module });
    }
    modules.sort_by(|a, b| a.name.cmp(&b.name));
    modules
}

/// Rebuilds the given axioms of `t` over a minimal signature containing
/// only the predicates they mention, remapping ids by name.
fn restrict(t: &Tbox, axioms: &[&Axiom]) -> Tbox {
    use obda_dllite::{BasicConcept, BasicRole, GeneralRole};
    let mut used_c = HashSet::new();
    let mut used_r = HashSet::new();
    let mut used_u = HashSet::new();
    for ax in axioms {
        let sig = Tbox::axiom_signature(ax);
        used_c.extend(sig.concepts);
        used_r.extend(sig.roles);
        used_u.extend(sig.attributes);
    }
    let mut out = Tbox::new();
    // Intern in original order for stable ids, then remap by name.
    let mut cmap: HashMap<u32, obda_dllite::ConceptId> = HashMap::new();
    let mut rmap: HashMap<u32, obda_dllite::RoleId> = HashMap::new();
    let mut umap: HashMap<u32, obda_dllite::AttributeId> = HashMap::new();
    for a in t.sig.concepts() {
        if used_c.contains(&a) {
            cmap.insert(a.0, out.sig.concept(t.sig.concept_name(a)));
        }
    }
    for r in t.sig.roles() {
        if used_r.contains(&r) {
            rmap.insert(r.0, out.sig.role(t.sig.role_name(r)));
        }
    }
    for u in t.sig.attributes() {
        if used_u.contains(&u) {
            umap.insert(u.0, out.sig.attribute(t.sig.attribute_name(u)));
        }
    }
    let role = |q: BasicRole| match q {
        BasicRole::Direct(p) => BasicRole::Direct(rmap[&p.0]),
        BasicRole::Inverse(p) => BasicRole::Inverse(rmap[&p.0]),
    };
    let basic = |b: BasicConcept| match b {
        BasicConcept::Atomic(a) => BasicConcept::Atomic(cmap[&a.0]),
        BasicConcept::Exists(q) => BasicConcept::Exists(role(q)),
        BasicConcept::AttrDomain(u) => BasicConcept::AttrDomain(umap[&u.0]),
    };
    for ax in axioms {
        let remapped = match **ax {
            Axiom::ConceptIncl(lhs, rhs) => Axiom::ConceptIncl(
                basic(lhs),
                match rhs {
                    GeneralConcept::Basic(b) => GeneralConcept::Basic(basic(b)),
                    GeneralConcept::Neg(b) => GeneralConcept::Neg(basic(b)),
                    GeneralConcept::QualExists(q, a) => {
                        GeneralConcept::QualExists(role(q), cmap[&a.0])
                    }
                },
            ),
            Axiom::RoleIncl(lhs, rhs) => Axiom::RoleIncl(
                role(lhs),
                match rhs {
                    GeneralRole::Basic(q) => GeneralRole::Basic(role(q)),
                    GeneralRole::Neg(q) => GeneralRole::Neg(role(q)),
                },
            ),
            Axiom::AttrIncl(u, w) => Axiom::AttrIncl(umap[&u.0], umap[&w.0]),
            Axiom::AttrNegIncl(u, w) => Axiom::AttrNegIncl(umap[&u.0], umap[&w.0]),
        };
        out.add(remapped);
    }
    out
}

fn module_name(t: &Tbox) -> String {
    let mut names: Vec<&str> = t.sig.concepts().map(|a| t.sig.concept_name(a)).collect();
    names.extend(t.sig.roles().map(|r| t.sig.role_name(r)));
    names.extend(t.sig.attributes().map(|u| t.sig.attribute_name(u)));
    names.sort_unstable();
    names
        .first()
        .map(|n| format!("module-{n}"))
        .unwrap_or_else(|| "module-empty".into())
}

/// Vertical detail levels of Section 6: "various representations, each of
/// growing detail".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetailLevel {
    /// Only the concept taxonomy (`A ⊑ B` between atomic concepts).
    Taxonomy,
    /// Taxonomy plus role/attribute hierarchies and typing
    /// (domain/range/attribute-domain axioms).
    Typing,
    /// Everything, including disjointness and qualified existentials.
    Full,
}

/// Extracts the vertical view of the TBox at the given detail level (the
/// signature is kept whole so views stay comparable).
pub fn vertical_view(t: &Tbox, level: DetailLevel) -> Tbox {
    let mut out = Tbox::with_signature(t.sig.clone());
    for ax in t.axioms() {
        let include = match level {
            DetailLevel::Full => true,
            DetailLevel::Taxonomy => matches!(
                ax,
                Axiom::ConceptIncl(
                    obda_dllite::BasicConcept::Atomic(_),
                    GeneralConcept::Basic(obda_dllite::BasicConcept::Atomic(_)),
                )
            ),
            DetailLevel::Typing => matches!(
                ax,
                Axiom::ConceptIncl(_, GeneralConcept::Basic(_))
                    | Axiom::RoleIncl(_, obda_dllite::GeneralRole::Basic(_))
                    | Axiom::AttrIncl(_, _)
            ),
        };
        if include {
            out.add(*ax);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    const TWO_DOMAINS: &str = "concept A B X Y\nrole p q\n\
         A [= B\nA [= exists p\nexists inv(p) [= B\n\
         X [= Y\nX [= exists q";

    #[test]
    fn horizontal_split_finds_components() {
        let t = parse_tbox(TWO_DOMAINS).unwrap();
        let modules = horizontal_modules(&t);
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[0].name, "module-A");
        assert_eq!(modules[1].name, "module-X");
        assert_eq!(modules[0].tbox.len(), 3);
        assert_eq!(modules[1].tbox.len(), 2);
        // The A-module's signature excludes X, Y, q.
        assert!(modules[0].tbox.sig.find_concept("X").is_none());
        assert!(modules[0].tbox.sig.find_role("q").is_none());
    }

    #[test]
    fn modules_union_covers_all_axioms() {
        let t = parse_tbox(TWO_DOMAINS).unwrap();
        let total: usize = horizontal_modules(&t).iter().map(|m| m.tbox.len()).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn vertical_views_grow() {
        let src = "concept A B C\nrole p r\nattribute u\n\
                   A [= B\nB [= not C\nA [= exists p . C\n\
                   exists p [= A\np [= r\ndomain(u) [= A";
        let t = parse_tbox(src).unwrap();
        let taxo = vertical_view(&t, DetailLevel::Taxonomy);
        let typing = vertical_view(&t, DetailLevel::Typing);
        let full = vertical_view(&t, DetailLevel::Full);
        assert_eq!(taxo.len(), 1); // A ⊑ B
        assert_eq!(typing.len(), 4); // + ∃p ⊑ A, p ⊑ r, δ(u) ⊑ A
        assert_eq!(full.len(), t.len());
        assert!(taxo.len() < typing.len() && typing.len() < full.len());
    }
}
