//! # obda-graphlang
//!
//! The paper's **graphical language for DL-Lite ontologies** (Section 6):
//! a diagram vocabulary of rectangles (concepts), diamonds (roles),
//! circles (attributes) and white/black squares (existential restrictions
//! on a role and its inverse, optionally *qualified* by a dotted scope
//! edge — Figure 2), with directed edges for inclusion assertions.
//!
//! * [`model`]: the diagram data model and the exact [`model::figure2`]
//!   diagram from the paper;
//! * [`validate`]: structural well-formedness;
//! * [`to_dllite`] / [`from_dllite`]: total translations diagram ⇄ TBox
//!   (property-tested to round-trip);
//! * [`dot`]: Graphviz export;
//! * [`modular`]: the two-dimensional modularization of Section 6
//!   (horizontal domain split, vertical detail levels);
//! * [`context`]: relevant-context extraction for large-ontology
//!   visualization.

pub mod context;
pub mod dot;
pub mod from_dllite;
pub mod model;
pub mod modular;
pub mod to_dllite;
pub mod validate;

pub use context::{relevant_context, Context};
pub use dot::to_dot;
pub use from_dllite::tbox_to_diagram;
pub use model::{figure2, Diagram, Edge, ElementId, Node, Shape};
pub use modular::{horizontal_modules, vertical_view, DetailLevel, Module};
pub use to_dllite::diagram_to_tbox;
pub use validate::{validate, ValidationError};
