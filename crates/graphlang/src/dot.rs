//! Graphviz (DOT) export of diagrams, for rendering with `dot -Tsvg`.

use std::fmt::Write as _;

use crate::model::{Diagram, Edge, Shape};

/// Renders the diagram as a Graphviz `digraph`.
///
/// Shape mapping: rectangles → `box`, diamonds → `diamond`, circles →
/// `ellipse`, white squares → small unfilled `square`, black squares →
/// small filled `square`, half squares → gray `square`. Inclusion edges
/// are solid arrows, disjointness edges are red arrows labelled `¬`,
/// role/scope links are dotted undirected (rendered with `dir=none`).
pub fn to_dot(d: &Diagram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", d.name);
    let _ = writeln!(out, "  rankdir=LR;");
    for n in d.nodes() {
        let (shape, extra) = match n.shape {
            Shape::Rectangle => ("box", String::new()),
            Shape::Diamond => ("diamond", String::new()),
            Shape::Circle => ("ellipse", String::new()),
            Shape::WhiteSquare => (
                "square",
                ", width=0.25, fixedsize=true, label=\"\"".to_owned(),
            ),
            Shape::BlackSquare => (
                "square",
                ", width=0.25, fixedsize=true, style=filled, fillcolor=black, label=\"\""
                    .to_owned(),
            ),
            Shape::HalfSquare => (
                "square",
                ", width=0.25, fixedsize=true, style=filled, fillcolor=gray, label=\"\"".to_owned(),
            ),
        };
        let label = match &n.label {
            Some(l) => format!(", label=\"{l}\""),
            None => String::new(),
        };
        let _ = writeln!(out, "  n{} [shape={shape}{label}{extra}];", n.id.0);
    }
    for e in d.edges() {
        match e {
            Edge::Inclusion { from, to } => {
                let _ = writeln!(out, "  n{} -> n{};", from.0, to.0);
            }
            Edge::InverseInclusion { from, to } => {
                let _ = writeln!(out, "  n{} -> n{} [label=\"⁻\", color=blue];", from.0, to.0);
            }
            Edge::Disjointness { from, to } => {
                let _ = writeln!(out, "  n{} -> n{} [label=\"¬\", color=red];", from.0, to.0);
            }
            Edge::RoleLink { square, role } => {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dotted, dir=none];",
                    square.0, role.0
                );
            }
            Edge::ScopeLink { square, scope } => {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dotted, dir=none, color=gray];",
                    square.0, scope.0
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::figure2;

    #[test]
    fn figure2_dot_mentions_all_elements() {
        let dot = to_dot(&figure2());
        assert!(dot.contains("digraph \"figure2\""));
        assert!(dot.contains("label=\"County\""));
        assert!(dot.contains("label=\"isPartOf\""));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.contains("style=dotted"));
        // 5 nodes, 6 edges.
        assert_eq!(dot.matches("shape=").count(), 5);
        assert_eq!(dot.matches(" -> ").count(), 6);
    }
}
