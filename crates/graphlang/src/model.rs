//! The diagram model of the paper's graphical language (Section 6).
//!
//! "Each graphical element in the diagram represents a specific term,
//! expression, or assertion":
//!
//! * terminal symbols — **rectangles** for atomic concepts, **diamonds**
//!   for atomic roles, **circles** for attributes;
//! * non-terminal symbols — a **white square** for the existential
//!   restriction on a role (`∃R`, or `∃R.C` when the square carries a
//!   dotted *scope* edge to a rectangle) and a **black square** for the
//!   restriction on the inverse (`∃R⁻` / `∃R⁻.C`); each square is linked
//!   to its role diamond by a non-directed dotted edge (Figure 2); a
//!   **half-filled square** plays the same roles for attribute domains
//!   (`δ(U)`), linked to a circle — our DL-Lite_A extension;
//! * assertions — a **directed solid edge** for an inclusion and a
//!   **directed struck edge** for a negative inclusion (disjointness, an
//!   extension the paper's modularization work needs).

use std::collections::HashMap;

/// Identifier of a diagram element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

/// Shape (and therefore meaning) of a diagram node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Atomic concept.
    Rectangle,
    /// Atomic role.
    Diamond,
    /// Attribute.
    Circle,
    /// Existential restriction on the direct role (`∃R[.C]`).
    WhiteSquare,
    /// Existential restriction on the inverse role (`∃R⁻[.C]`).
    BlackSquare,
    /// Attribute domain (`δ(U)`).
    HalfSquare,
}

impl Shape {
    /// Whether the shape denotes a concept-sorted expression.
    pub fn is_concept_sort(self) -> bool {
        matches!(
            self,
            Shape::Rectangle | Shape::WhiteSquare | Shape::BlackSquare | Shape::HalfSquare
        )
    }

    /// Whether the shape is a terminal (named) symbol.
    pub fn is_terminal(self) -> bool {
        matches!(self, Shape::Rectangle | Shape::Diamond | Shape::Circle)
    }
}

/// A node of the diagram. Terminal nodes carry a label; squares don't.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Identifier.
    pub id: ElementId,
    /// Shape.
    pub shape: Shape,
    /// Label (required for terminals, forbidden for squares).
    pub label: Option<String>,
}

/// An edge of the diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Directed solid edge: inclusion assertion `source ⊑ target`.
    Inclusion {
        /// Subsumee.
        from: ElementId,
        /// Subsumer.
        to: ElementId,
    },
    /// Directed struck edge: negative inclusion `source ⊑ ¬target`.
    Disjointness {
        /// Left side.
        from: ElementId,
        /// Negated right side.
        to: ElementId,
    },
    /// Directed solid edge with an inversion mark on its head: role
    /// inclusion `source ⊑ target⁻` (between diamonds only). This is the
    /// one DL-Lite_R role assertion Figure 2's vocabulary cannot draw
    /// otherwise.
    InverseInclusion {
        /// Subsumee diamond.
        from: ElementId,
        /// Subsumer diamond, read as its inverse.
        to: ElementId,
    },
    /// Non-directed dotted edge from a square to its role diamond or
    /// attribute circle.
    RoleLink {
        /// The square.
        square: ElementId,
        /// The diamond (white/black squares) or circle (half squares).
        role: ElementId,
    },
    /// Non-directed dotted edge from a square to the rectangle in the
    /// scope of the qualified restriction.
    ScopeLink {
        /// The square.
        square: ElementId,
        /// The filler rectangle.
        scope: ElementId,
    },
}

/// A diagram: named, with nodes and edges.
#[derive(Debug, Clone, Default)]
pub struct Diagram {
    /// Diagram name (used by modularization).
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_label: HashMap<(Shape, String), ElementId>,
}

impl Diagram {
    /// Creates an empty diagram.
    pub fn new(name: &str) -> Self {
        Diagram {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Adds a labelled terminal node (idempotent per `(shape, label)`).
    pub fn terminal(&mut self, shape: Shape, label: &str) -> ElementId {
        assert!(shape.is_terminal(), "terminal() needs a terminal shape");
        if let Some(&id) = self.by_label.get(&(shape, label.to_owned())) {
            return id;
        }
        let id = ElementId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            shape,
            label: Some(label.to_owned()),
        });
        self.by_label.insert((shape, label.to_owned()), id);
        id
    }

    /// Adds an unlabelled square node.
    pub fn square(&mut self, shape: Shape) -> ElementId {
        assert!(!shape.is_terminal(), "square() needs a square shape");
        let id = ElementId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            shape,
            label: None,
        });
        id
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, e: Edge) {
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// Convenience: a white/black square linked to a role diamond and
    /// optionally a scope rectangle.
    pub fn existential(
        &mut self,
        inverse: bool,
        role: ElementId,
        scope: Option<ElementId>,
    ) -> ElementId {
        let sq = self.square(if inverse {
            Shape::BlackSquare
        } else {
            Shape::WhiteSquare
        });
        self.add_edge(Edge::RoleLink { square: sq, role });
        if let Some(scope) = scope {
            self.add_edge(Edge::ScopeLink { square: sq, scope });
        }
        sq
    }

    /// Convenience: a half square linked to an attribute circle.
    pub fn attr_domain(&mut self, attribute: ElementId) -> ElementId {
        let sq = self.square(Shape::HalfSquare);
        self.add_edge(Edge::RoleLink {
            square: sq,
            role: attribute,
        });
        sq
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A node by id.
    pub fn node(&self, id: ElementId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Looks up a terminal by shape and label.
    pub fn find(&self, shape: Shape, label: &str) -> Option<ElementId> {
        self.by_label.get(&(shape, label.to_owned())).copied()
    }

    /// The role diamond (or attribute circle) a square is linked to.
    pub fn square_role(&self, sq: ElementId) -> Option<ElementId> {
        self.edges.iter().find_map(|e| match e {
            Edge::RoleLink { square, role } if *square == sq => Some(*role),
            _ => None,
        })
    }

    /// The scope rectangle of a square, if qualified.
    pub fn square_scope(&self, sq: ElementId) -> Option<ElementId> {
        self.edges.iter().find_map(|e| match e {
            Edge::ScopeLink { square, scope } if *square == sq => Some(*scope),
            _ => None,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the diagram has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds the exact diagram of **Figure 2** of the paper: `County ⊑
/// ∃isPartOf.State`, `State ⊑ ∃isPartOf⁻.County`.
pub fn figure2() -> Diagram {
    let mut d = Diagram::new("figure2");
    let county = d.terminal(Shape::Rectangle, "County");
    let state = d.terminal(Shape::Rectangle, "State");
    let is_part_of = d.terminal(Shape::Diamond, "isPartOf");
    let white = d.existential(false, is_part_of, Some(state));
    let black = d.existential(true, is_part_of, Some(county));
    d.add_edge(Edge::Inclusion {
        from: county,
        to: white,
    });
    d.add_edge(Edge::Inclusion {
        from: state,
        to: black,
    });
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_census() {
        let d = figure2();
        let count = |s: Shape| d.nodes().iter().filter(|n| n.shape == s).count();
        assert_eq!(count(Shape::Rectangle), 2);
        assert_eq!(count(Shape::Diamond), 1);
        assert_eq!(count(Shape::WhiteSquare), 1);
        assert_eq!(count(Shape::BlackSquare), 1);
        // 2 role links + 2 scope links + 2 inclusions.
        assert_eq!(d.edges().len(), 6);
    }

    #[test]
    fn terminals_are_idempotent() {
        let mut d = Diagram::new("t");
        let a = d.terminal(Shape::Rectangle, "A");
        assert_eq!(d.terminal(Shape::Rectangle, "A"), a);
        // Same label, different shape: different node.
        let p = d.terminal(Shape::Diamond, "A");
        assert_ne!(a, p);
    }

    #[test]
    fn square_links_resolve() {
        let d = figure2();
        let white = d
            .nodes()
            .iter()
            .find(|n| n.shape == Shape::WhiteSquare)
            .unwrap()
            .id;
        let role = d.square_role(white).unwrap();
        assert_eq!(d.node(role).label.as_deref(), Some("isPartOf"));
        let scope = d.square_scope(white).unwrap();
        assert_eq!(d.node(scope).label.as_deref(), Some("State"));
    }

    #[test]
    #[should_panic(expected = "terminal() needs a terminal shape")]
    fn terminal_rejects_squares() {
        Diagram::new("x").terminal(Shape::WhiteSquare, "bad");
    }
}
