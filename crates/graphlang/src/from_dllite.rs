//! The inverse translation: generating a diagram from a TBox, used to
//! visualize existing ontologies and to round-trip-test the language.
//!
//! Squares are shared: every distinct existential expression (role,
//! polarity, optional scope) gets exactly one square, so `A ⊑ ∃p.C` and
//! `B ⊑ ∃p.C` point at the same square, keeping diagrams compact.

use std::collections::HashMap;

use obda_dllite::{Axiom, BasicConcept, GeneralConcept, GeneralRole, Tbox};

use crate::model::{Diagram, Edge, ElementId, Shape};

/// Generates a diagram from a TBox. Total for the DL-Lite_R/A dialect of
/// this workspace, with one exception: role disjointness whose right side
/// is an inverse (`Q ⊑ ¬R⁻`) has no drawn form and is returned in the
/// second component.
pub fn tbox_to_diagram(t: &Tbox, name: &str) -> (Diagram, Vec<Axiom>) {
    let mut d = Diagram::new(name);
    let mut unsupported = Vec::new();
    // Declare every terminal up front so lone predicates still show up.
    for a in t.sig.concepts() {
        d.terminal(Shape::Rectangle, t.sig.concept_name(a));
    }
    for p in t.sig.roles() {
        d.terminal(Shape::Diamond, t.sig.role_name(p));
    }
    for u in t.sig.attributes() {
        d.terminal(Shape::Circle, t.sig.attribute_name(u));
    }
    // Shared squares per (role, inverse, scope) / attribute.
    let mut squares: HashMap<(u32, bool, Option<u32>), ElementId> = HashMap::new();
    let mut half_squares: HashMap<u32, ElementId> = HashMap::new();

    let concept_el = |b: BasicConcept,
                      scope: Option<obda_dllite::ConceptId>,
                      d: &mut Diagram,
                      squares: &mut HashMap<(u32, bool, Option<u32>), ElementId>,
                      half_squares: &mut HashMap<u32, ElementId>|
     -> ElementId {
        match b {
            BasicConcept::Atomic(a) => d
                .find(Shape::Rectangle, t.sig.concept_name(a))
                .expect("declared"),
            BasicConcept::Exists(q) => {
                let key = (q.role().0, q.is_inverse(), scope.map(|c| c.0));
                if let Some(&sq) = squares.get(&key) {
                    return sq;
                }
                let role_el = d
                    .find(Shape::Diamond, t.sig.role_name(q.role()))
                    .expect("declared");
                let scope_el = scope.map(|c| {
                    d.find(Shape::Rectangle, t.sig.concept_name(c))
                        .expect("declared")
                });
                let sq = d.existential(q.is_inverse(), role_el, scope_el);
                squares.insert(key, sq);
                sq
            }
            BasicConcept::AttrDomain(u) => {
                if let Some(&sq) = half_squares.get(&u.0) {
                    return sq;
                }
                let attr_el = d
                    .find(Shape::Circle, t.sig.attribute_name(u))
                    .expect("declared");
                let sq = d.attr_domain(attr_el);
                half_squares.insert(u.0, sq);
                sq
            }
        }
    };

    for ax in t.axioms() {
        match *ax {
            Axiom::ConceptIncl(lhs, rhs) => {
                let from = concept_el(lhs, None, &mut d, &mut squares, &mut half_squares);
                match rhs {
                    GeneralConcept::Basic(b) => {
                        let to = concept_el(b, None, &mut d, &mut squares, &mut half_squares);
                        d.add_edge(Edge::Inclusion { from, to });
                    }
                    GeneralConcept::Neg(b) => {
                        let to = concept_el(b, None, &mut d, &mut squares, &mut half_squares);
                        d.add_edge(Edge::Disjointness { from, to });
                    }
                    GeneralConcept::QualExists(q, a) => {
                        let to = concept_el(
                            BasicConcept::Exists(q),
                            Some(a),
                            &mut d,
                            &mut squares,
                            &mut half_squares,
                        );
                        d.add_edge(Edge::Inclusion { from, to });
                    }
                }
            }
            Axiom::RoleIncl(q1, rhs) => {
                // A diagrammed role inclusion reads its LHS as the direct
                // role; Q₁⁻ ⊑ Q₂ is equivalent to Q₁ ⊑ Q₂-with-flipped
                // polarity, so normalize the LHS to direct.
                let (lhs_role, flip) = (q1.role(), q1.is_inverse());
                let from = d
                    .find(Shape::Diamond, t.sig.role_name(lhs_role))
                    .expect("declared");
                match rhs {
                    GeneralRole::Basic(q2) => {
                        let q2 = if flip { q2.inverse() } else { q2 };
                        let to = d
                            .find(Shape::Diamond, t.sig.role_name(q2.role()))
                            .expect("declared");
                        if q2.is_inverse() {
                            d.add_edge(Edge::InverseInclusion { from, to });
                        } else {
                            d.add_edge(Edge::Inclusion { from, to });
                        }
                    }
                    GeneralRole::Neg(q2) => {
                        let q2 = if flip { q2.inverse() } else { q2 };
                        if q2.is_inverse() {
                            unsupported.push(*ax);
                        } else {
                            let to = d
                                .find(Shape::Diamond, t.sig.role_name(q2.role()))
                                .expect("declared");
                            d.add_edge(Edge::Disjointness { from, to });
                        }
                    }
                }
            }
            Axiom::AttrIncl(u1, u2) => {
                let from = d
                    .find(Shape::Circle, t.sig.attribute_name(u1))
                    .expect("declared");
                let to = d
                    .find(Shape::Circle, t.sig.attribute_name(u2))
                    .expect("declared");
                d.add_edge(Edge::Inclusion { from, to });
            }
            Axiom::AttrNegIncl(u1, u2) => {
                let from = d
                    .find(Shape::Circle, t.sig.attribute_name(u1))
                    .expect("declared");
                let to = d
                    .find(Shape::Circle, t.sig.attribute_name(u2))
                    .expect("declared");
                d.add_edge(Edge::Disjointness { from, to });
            }
        }
    }
    (d, unsupported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_dllite::diagram_to_tbox;
    use obda_dllite::parse_tbox;

    fn roundtrip(src: &str) {
        let t1 = parse_tbox(src).unwrap();
        let (d, unsupported) = tbox_to_diagram(&t1, "rt");
        assert!(unsupported.is_empty(), "{unsupported:?}");
        let t2 = diagram_to_tbox(&d).unwrap();
        let mut a1: Vec<String> = t1
            .axioms()
            .iter()
            .map(|ax| {
                obda_dllite::printer::axiom(ax, &t1.sig, obda_dllite::printer::Style::Display)
            })
            .collect();
        let mut a2: Vec<String> = t2
            .axioms()
            .iter()
            .map(|ax| {
                obda_dllite::printer::axiom(ax, &t2.sig, obda_dllite::printer::Style::Display)
            })
            .collect();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }

    #[test]
    fn roundtrip_figure2() {
        roundtrip(
            "concept County State\nrole isPartOf\n\
             County [= exists isPartOf . State\nState [= exists inv(isPartOf) . County",
        );
    }

    #[test]
    fn roundtrip_all_axiom_kinds() {
        roundtrip(
            "concept A B\nrole p r\nattribute u w\n\
             A [= B\nA [= not B\nA [= exists p\nexists inv(p) [= A\n\
             A [= exists inv(p) . B\np [= r\np [= inv(r)\np [= not r\n\
             u [= w\nu [= not w\ndomain(u) [= A",
        );
    }

    #[test]
    fn inverse_lhs_normalizes() {
        // inv(p) ⊑ r becomes p ⊑ r⁻ in the diagram and survives the
        // roundtrip up to that equivalence.
        let t1 = parse_tbox("role p r\ninv(p) [= r").unwrap();
        let (d, unsupported) = tbox_to_diagram(&t1, "rt");
        assert!(unsupported.is_empty());
        let t2 = diagram_to_tbox(&d).unwrap();
        let rendered = obda_dllite::printer::axiom(
            &t2.axioms()[0],
            &t2.sig,
            obda_dllite::printer::Style::Display,
        );
        assert_eq!(rendered, "p ⊑ r⁻");
    }

    #[test]
    fn inverse_role_disjointness_is_reported_unsupported() {
        let t1 = parse_tbox("role p r\np [= not inv(r)").unwrap();
        let (_, unsupported) = tbox_to_diagram(&t1, "rt");
        assert_eq!(unsupported.len(), 1);
    }

    #[test]
    fn squares_are_shared() {
        let t1 = parse_tbox("concept A B C\nrole p\nA [= exists p . C\nB [= exists p . C").unwrap();
        let (d, _) = tbox_to_diagram(&t1, "rt");
        let squares = d
            .nodes()
            .iter()
            .filter(|n| n.shape == Shape::WhiteSquare)
            .count();
        assert_eq!(squares, 1);
    }
}
