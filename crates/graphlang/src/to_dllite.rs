//! Translation of a validated diagram into DL-Lite axioms — step (ii) of
//! the paper's workflow: "translation of this graphical formalization of
//! the ontology into a set of processable logical axioms, through an
//! automated tool".

use obda_dllite::{Axiom, BasicConcept, BasicRole, GeneralConcept, GeneralRole, Tbox};

use crate::model::{Diagram, Edge, ElementId, Shape};
use crate::validate::{validate, ValidationError};

/// Translates a diagram into a TBox. Fails with the diagram's validation
/// errors if it is not well-formed.
pub fn diagram_to_tbox(d: &Diagram) -> Result<Tbox, Vec<ValidationError>> {
    let errors = validate(d);
    if !errors.is_empty() {
        return Err(errors);
    }
    let mut t = Tbox::new();
    // Declare terminals (in node order, for stable ids).
    for n in d.nodes() {
        if let Some(label) = &n.label {
            match n.shape {
                Shape::Rectangle => {
                    t.sig.concept(label);
                }
                Shape::Diamond => {
                    t.sig.role(label);
                }
                Shape::Circle => {
                    t.sig.attribute(label);
                }
                _ => unreachable!("validated: squares are unlabelled"),
            }
        }
    }
    // Element → basic concept (for concept-sorted elements).
    let basic = |id: ElementId, t: &Tbox| -> BasicConcept {
        let n = d.node(id);
        match n.shape {
            Shape::Rectangle => BasicConcept::Atomic(
                t.sig
                    .find_concept(n.label.as_deref().expect("validated"))
                    .expect("declared"),
            ),
            Shape::WhiteSquare | Shape::BlackSquare => {
                let role_el = d.square_role(id).expect("validated");
                let p = t
                    .sig
                    .find_role(d.node(role_el).label.as_deref().expect("validated"))
                    .expect("declared");
                BasicConcept::Exists(if n.shape == Shape::BlackSquare {
                    BasicRole::Inverse(p)
                } else {
                    BasicRole::Direct(p)
                })
            }
            Shape::HalfSquare => {
                let attr_el = d.square_role(id).expect("validated");
                let u = t
                    .sig
                    .find_attribute(d.node(attr_el).label.as_deref().expect("validated"))
                    .expect("declared");
                BasicConcept::AttrDomain(u)
            }
            other => unreachable!("not concept-sorted: {other:?}"),
        }
    };
    // Element → general concept for the right-hand side (qualification).
    let general = |id: ElementId, t: &Tbox| -> GeneralConcept {
        let n = d.node(id);
        if matches!(n.shape, Shape::WhiteSquare | Shape::BlackSquare) {
            if let Some(scope) = d.square_scope(id) {
                let role_el = d.square_role(id).expect("validated");
                let p = t
                    .sig
                    .find_role(d.node(role_el).label.as_deref().expect("validated"))
                    .expect("declared");
                let a = t
                    .sig
                    .find_concept(d.node(scope).label.as_deref().expect("validated"))
                    .expect("declared");
                let q = if n.shape == Shape::BlackSquare {
                    BasicRole::Inverse(p)
                } else {
                    BasicRole::Direct(p)
                };
                return GeneralConcept::QualExists(q, a);
            }
        }
        GeneralConcept::Basic(basic(id, t))
    };
    let role_of = |id: ElementId, t: &Tbox| -> obda_dllite::RoleId {
        t.sig
            .find_role(d.node(id).label.as_deref().expect("validated"))
            .expect("declared")
    };
    let attr_of = |id: ElementId, t: &Tbox| -> obda_dllite::AttributeId {
        t.sig
            .find_attribute(d.node(id).label.as_deref().expect("validated"))
            .expect("declared")
    };

    let mut axioms = Vec::new();
    for e in d.edges() {
        match e {
            Edge::Inclusion { from, to } => {
                let (sf, st) = (d.node(*from).shape, d.node(*to).shape);
                if sf.is_concept_sort() {
                    axioms.push(Axiom::ConceptIncl(basic(*from, &t), general(*to, &t)));
                } else if sf == Shape::Diamond && st == Shape::Diamond {
                    axioms.push(Axiom::RoleIncl(
                        BasicRole::Direct(role_of(*from, &t)),
                        GeneralRole::Basic(BasicRole::Direct(role_of(*to, &t))),
                    ));
                } else {
                    axioms.push(Axiom::AttrIncl(attr_of(*from, &t), attr_of(*to, &t)));
                }
            }
            Edge::InverseInclusion { from, to } => {
                axioms.push(Axiom::RoleIncl(
                    BasicRole::Direct(role_of(*from, &t)),
                    GeneralRole::Basic(BasicRole::Inverse(role_of(*to, &t))),
                ));
            }
            Edge::Disjointness { from, to } => {
                let (sf, st) = (d.node(*from).shape, d.node(*to).shape);
                if sf.is_concept_sort() {
                    axioms.push(Axiom::ConceptIncl(
                        basic(*from, &t),
                        GeneralConcept::Neg(basic(*to, &t)),
                    ));
                } else if sf == Shape::Diamond && st == Shape::Diamond {
                    axioms.push(Axiom::RoleIncl(
                        BasicRole::Direct(role_of(*from, &t)),
                        GeneralRole::Neg(BasicRole::Direct(role_of(*to, &t))),
                    ));
                } else {
                    axioms.push(Axiom::AttrNegIncl(attr_of(*from, &t), attr_of(*to, &t)));
                }
            }
            Edge::RoleLink { .. } | Edge::ScopeLink { .. } => {}
        }
    }
    for ax in axioms {
        t.add(ax);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::figure2;
    use obda_dllite::printer::{self, Style};

    #[test]
    fn figure2_translates_to_the_papers_axioms() {
        let t = diagram_to_tbox(&figure2()).unwrap();
        let rendered: Vec<String> = t
            .axioms()
            .iter()
            .map(|ax| printer::axiom(ax, &t.sig, Style::Display))
            .collect();
        assert_eq!(
            rendered,
            vec!["County ⊑ ∃isPartOf.State", "State ⊑ ∃isPartOf⁻.County"]
        );
    }

    #[test]
    fn role_attribute_and_disjointness_edges() {
        let mut d = Diagram::new("t");
        let p = d.terminal(Shape::Diamond, "p");
        let r = d.terminal(Shape::Diamond, "r");
        let s = d.terminal(Shape::Diamond, "s");
        let u = d.terminal(Shape::Circle, "u");
        let w = d.terminal(Shape::Circle, "w");
        let a = d.terminal(Shape::Rectangle, "A");
        let b = d.terminal(Shape::Rectangle, "B");
        d.add_edge(Edge::Inclusion { from: p, to: r });
        d.add_edge(Edge::InverseInclusion { from: p, to: s });
        d.add_edge(Edge::Inclusion { from: u, to: w });
        d.add_edge(Edge::Disjointness { from: a, to: b });
        d.add_edge(Edge::Disjointness { from: p, to: s });
        d.add_edge(Edge::Disjointness { from: u, to: w });
        // Domain typing: ∃p ⊑ A via an unqualified white square.
        let sq = d.existential(false, p, None);
        d.add_edge(Edge::Inclusion { from: sq, to: a });
        // δ(u) ⊑ B.
        let half = d.attr_domain(u);
        d.add_edge(Edge::Inclusion { from: half, to: b });
        let t = diagram_to_tbox(&d).unwrap();
        let rendered: Vec<String> = t
            .axioms()
            .iter()
            .map(|ax| printer::axiom(ax, &t.sig, Style::Display))
            .collect();
        assert_eq!(
            rendered,
            vec![
                "p ⊑ r",
                "p ⊑ s⁻",
                "u ⊑ w",
                "A ⊑ ¬B",
                "p ⊑ ¬s",
                "u ⊑ ¬w",
                "∃p ⊑ A",
                "δ(u) ⊑ B",
            ]
        );
    }

    #[test]
    fn invalid_diagram_reports_errors() {
        let mut d = Diagram::new("bad");
        d.square(Shape::WhiteSquare);
        assert!(diagram_to_tbox(&d).is_err());
    }
}
