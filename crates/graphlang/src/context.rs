//! Relevant-context extraction (Section 6, "Visualization"): identifying
//! "the relevant context of a concept or of a portion of the domain",
//! so a viewer can highlight the focused neighbourhood and push the rest
//! of a large ontology into the background.

use std::collections::{HashMap, HashSet, VecDeque};

use obda_dllite::{NamedPredicate, Tbox};

/// The context of a focus set: predicates ranked by co-occurrence
/// distance, and the induced sub-TBox.
#[derive(Debug, Clone)]
pub struct Context {
    /// Predicates within the radius, with their distance from the focus
    /// (0 = the focus itself).
    pub distances: HashMap<NamedPredicate, usize>,
    /// Axioms all of whose predicates lie within the radius.
    pub tbox: Tbox,
}

impl Context {
    /// Predicates at a given distance, sorted by name.
    pub fn ring(&self, t: &Tbox, distance: usize) -> Vec<String> {
        let mut out: Vec<String> = self
            .distances
            .iter()
            .filter(|(_, &d)| d == distance)
            .map(|(p, _)| obda_dllite::printer::named_predicate(*p, &t.sig))
            .collect();
        out.sort();
        out
    }
}

fn axiom_preds(ax: &obda_dllite::Axiom) -> Vec<NamedPredicate> {
    let sig = Tbox::axiom_signature(ax);
    let mut out: Vec<NamedPredicate> = sig
        .concepts
        .iter()
        .map(|&c| NamedPredicate::Concept(c))
        .collect();
    out.extend(sig.roles.iter().map(|&r| NamedPredicate::Role(r)));
    out.extend(sig.attributes.iter().map(|&u| NamedPredicate::Attribute(u)));
    out
}

/// Extracts the relevant context around `focus` (predicate names of any
/// sort) up to the given co-occurrence radius.
///
/// Distance is BFS depth in the bipartite predicate–axiom graph projected
/// to predicates: predicates sharing an axiom are at distance 1 from each
/// other. The context TBox keeps every axiom whose full signature lies
/// inside the radius.
pub fn relevant_context(t: &Tbox, focus: &[&str], radius: usize) -> Context {
    // Resolve focus names across sorts.
    let mut frontier: VecDeque<(NamedPredicate, usize)> = VecDeque::new();
    let mut distances: HashMap<NamedPredicate, usize> = HashMap::new();
    for name in focus {
        let mut hit = false;
        if let Some(a) = t.sig.find_concept(name) {
            frontier.push_back((NamedPredicate::Concept(a), 0));
            hit = true;
        }
        if let Some(r) = t.sig.find_role(name) {
            frontier.push_back((NamedPredicate::Role(r), 0));
            hit = true;
        }
        if let Some(u) = t.sig.find_attribute(name) {
            frontier.push_back((NamedPredicate::Attribute(u), 0));
            hit = true;
        }
        if !hit {
            // Unknown focus names simply contribute nothing.
        }
    }
    // Pre-index: predicate → axioms mentioning it.
    let mut by_pred: HashMap<NamedPredicate, Vec<usize>> = HashMap::new();
    for (i, ax) in t.axioms().iter().enumerate() {
        for p in axiom_preds(ax) {
            by_pred.entry(p).or_default().push(i);
        }
    }
    while let Some((p, d)) = frontier.pop_front() {
        match distances.entry(p) {
            std::collections::hash_map::Entry::Occupied(_) => continue,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(d);
            }
        }
        if d == radius {
            continue;
        }
        for &ai in by_pred.get(&p).into_iter().flatten() {
            for q in axiom_preds(&t.axioms()[ai]) {
                if !distances.contains_key(&q) {
                    frontier.push_back((q, d + 1));
                }
            }
        }
    }
    // Induced axioms.
    let selected: HashSet<NamedPredicate> = distances.keys().copied().collect();
    let mut carrier = Tbox::with_signature(t.sig.clone());
    for ax in t.axioms() {
        if axiom_preds(ax).iter().all(|p| selected.contains(p)) {
            carrier.add(*ax);
        }
    }
    let mut tbox = Tbox::new();
    tbox.merge(&carrier);
    Context { distances, tbox }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::parse_tbox;

    const SRC: &str = "concept A B C D E\nrole p\n\
        A [= B\nB [= C\nC [= D\nD [= E\nA [= exists p";

    #[test]
    fn radius_bounds_the_context() {
        let t = parse_tbox(SRC).unwrap();
        let ctx = relevant_context(&t, &["A"], 1);
        assert_eq!(ctx.ring(&t, 0), vec!["A"]);
        let ring1 = ctx.ring(&t, 1);
        assert!(ring1.contains(&"B".to_owned()));
        assert!(ring1.contains(&"p".to_owned()));
        assert!(!ctx
            .distances
            .keys()
            .any(|p| matches!(p, NamedPredicate::Concept(c) if t.sig.concept_name(*c) == "D")));
        // Axioms fully inside: A ⊑ B and A ⊑ ∃p.
        assert_eq!(ctx.tbox.len(), 2);
    }

    #[test]
    fn radius_two_reaches_further() {
        let t = parse_tbox(SRC).unwrap();
        let ctx = relevant_context(&t, &["A"], 2);
        assert_eq!(ctx.ring(&t, 2), vec!["C"]);
        assert_eq!(ctx.tbox.len(), 3);
    }

    #[test]
    fn focus_may_be_a_role() {
        let t = parse_tbox(SRC).unwrap();
        let ctx = relevant_context(&t, &["p"], 1);
        assert_eq!(ctx.ring(&t, 0), vec!["p"]);
        assert_eq!(ctx.ring(&t, 1), vec!["A"]);
    }

    #[test]
    fn unknown_focus_is_empty() {
        let t = parse_tbox(SRC).unwrap();
        let ctx = relevant_context(&t, &["Nope"], 3);
        assert!(ctx.distances.is_empty());
        assert!(ctx.tbox.is_empty());
    }

    #[test]
    fn whole_ontology_at_large_radius() {
        let t = parse_tbox(SRC).unwrap();
        let ctx = relevant_context(&t, &["A"], 10);
        assert_eq!(ctx.tbox.len(), t.len());
    }
}
