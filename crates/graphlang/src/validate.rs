//! Structural validation of diagrams: the well-formedness conditions that
//! make the translation to DL-Lite total.

use crate::model::{Diagram, Edge, ElementId, Shape};

/// A validation problem, with the offending element where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Offending element, if tied to one.
    pub element: Option<ElementId>,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.element {
            Some(e) => write!(f, "element {}: {}", e.0, self.message),
            None => f.write_str(&self.message),
        }
    }
}

/// Validates a diagram, returning every problem found.
///
/// Conditions:
/// 1. terminals carry labels, squares don't;
/// 2. every square has exactly one role link — white/black squares to a
///    diamond, half squares to a circle;
/// 3. scope links go from white/black squares to rectangles only;
/// 4. inclusion/disjointness edges connect same-sort elements
///    (concept-sort with concept-sort, diamonds with diamonds, circles
///    with circles);
/// 5. squares never appear on the left of an inclusion arrow *as
///    qualified restrictions* — `∃R.C` is only a right-hand side in
///    DL-Lite (unqualified squares may be subsumees).
pub fn validate(d: &Diagram) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut err = |element: Option<ElementId>, message: String| {
        errors.push(ValidationError { element, message });
    };

    for n in d.nodes() {
        match (n.shape.is_terminal(), &n.label) {
            (true, None) => err(Some(n.id), "terminal node without label".into()),
            (false, Some(_)) => err(Some(n.id), "square node must not carry a label".into()),
            _ => {}
        }
        if !n.shape.is_terminal() {
            let links: Vec<ElementId> = d
                .edges()
                .iter()
                .filter_map(|e| match e {
                    Edge::RoleLink { square, role } if *square == n.id => Some(*role),
                    _ => None,
                })
                .collect();
            match links.as_slice() {
                [] => err(Some(n.id), "square without role link".into()),
                [role] => {
                    let want = if n.shape == Shape::HalfSquare {
                        Shape::Circle
                    } else {
                        Shape::Diamond
                    };
                    if d.node(*role).shape != want {
                        err(
                            Some(n.id),
                            format!(
                                "square linked to {:?}, expected {want:?}",
                                d.node(*role).shape
                            ),
                        );
                    }
                }
                _ => err(Some(n.id), "square with multiple role links".into()),
            }
            let scopes = d
                .edges()
                .iter()
                .filter(|e| matches!(e, Edge::ScopeLink { square, .. } if *square == n.id))
                .count();
            if scopes > 1 {
                err(Some(n.id), "square with multiple scope links".into());
            }
            if scopes == 1 && n.shape == Shape::HalfSquare {
                err(
                    Some(n.id),
                    "attribute-domain squares cannot be qualified".into(),
                );
            }
        }
    }

    for e in d.edges() {
        match e {
            Edge::Inclusion { from, to } | Edge::Disjointness { from, to } => {
                let (sf, st) = (d.node(*from).shape, d.node(*to).shape);
                let same_sort = (sf.is_concept_sort() && st.is_concept_sort())
                    || (sf == Shape::Diamond && st == Shape::Diamond)
                    || (sf == Shape::Circle && st == Shape::Circle);
                if !same_sort {
                    err(
                        Some(*from),
                        format!("inclusion between different sorts: {sf:?} vs {st:?}"),
                    );
                }
                // Qualified squares only on the right of inclusions.
                if matches!(sf, Shape::WhiteSquare | Shape::BlackSquare)
                    && d.square_scope(*from).is_some()
                {
                    err(
                        Some(*from),
                        "qualified existential cannot be a subsumee in DL-Lite".into(),
                    );
                }
                // Negated qualified squares are not expressible either.
                if matches!(e, Edge::Disjointness { .. })
                    && matches!(st, Shape::WhiteSquare | Shape::BlackSquare)
                    && d.square_scope(*to).is_some()
                {
                    err(
                        Some(*to),
                        "negated qualified existential is not in DL-Lite_R".into(),
                    );
                }
            }
            Edge::InverseInclusion { from, to } => {
                if d.node(*from).shape != Shape::Diamond || d.node(*to).shape != Shape::Diamond {
                    err(
                        Some(*from),
                        "inverse inclusion must connect two diamonds".into(),
                    );
                }
            }
            Edge::RoleLink { square, role } => {
                if d.node(*square).shape.is_terminal() {
                    err(Some(*square), "role link source must be a square".into());
                }
                if !d.node(*role).shape.is_terminal() {
                    err(Some(*role), "role link target must be a terminal".into());
                }
            }
            Edge::ScopeLink { square, scope } => {
                if !matches!(
                    d.node(*square).shape,
                    Shape::WhiteSquare | Shape::BlackSquare
                ) {
                    err(
                        Some(*square),
                        "scope link source must be a white/black square".into(),
                    );
                }
                if d.node(*scope).shape != Shape::Rectangle {
                    err(Some(*scope), "scope link target must be a rectangle".into());
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::figure2;

    #[test]
    fn figure2_is_valid() {
        assert!(validate(&figure2()).is_empty());
    }

    #[test]
    fn detects_unlinked_square() {
        let mut d = Diagram::new("bad");
        d.square(Shape::WhiteSquare);
        let errs = validate(&d);
        assert!(errs.iter().any(|e| e.message.contains("without role link")));
    }

    #[test]
    fn detects_cross_sort_inclusion() {
        let mut d = Diagram::new("bad");
        let a = d.terminal(Shape::Rectangle, "A");
        let p = d.terminal(Shape::Diamond, "p");
        d.add_edge(Edge::Inclusion { from: a, to: p });
        let errs = validate(&d);
        assert!(errs.iter().any(|e| e.message.contains("different sorts")));
    }

    #[test]
    fn detects_qualified_square_on_lhs() {
        let mut d = Diagram::new("bad");
        let a = d.terminal(Shape::Rectangle, "A");
        let b = d.terminal(Shape::Rectangle, "B");
        let p = d.terminal(Shape::Diamond, "p");
        let sq = d.existential(false, p, Some(b));
        d.add_edge(Edge::Inclusion { from: sq, to: a });
        let errs = validate(&d);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("cannot be a subsumee")));
    }

    #[test]
    fn half_square_must_link_circle() {
        let mut d = Diagram::new("bad");
        let p = d.terminal(Shape::Diamond, "p");
        let sq = d.square(Shape::HalfSquare);
        d.add_edge(Edge::RoleLink {
            square: sq,
            role: p,
        });
        let errs = validate(&d);
        assert!(errs.iter().any(|e| e.message.contains("expected Circle")));
    }
}
