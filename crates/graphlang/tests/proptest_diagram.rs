//! Property-based round-trip: TBox → diagram → TBox preserves the axiom
//! set (up to the one documented unsupported shape), and generated
//! diagrams always validate.

use obda_dllite::{Axiom, BasicRole, GeneralRole, Tbox};
use obda_genont::random_tbox;
use obda_graphlang::{diagram_to_tbox, tbox_to_diagram, validate};
use proptest::prelude::*;

/// Drops the one undrawable shape (`Q ⊑ ¬R⁻` after LHS normalization).
fn drawable(t: &Tbox) -> Tbox {
    let mut out = Tbox::with_signature(t.sig.clone());
    for ax in t.axioms() {
        let undrawable = matches!(
            ax,
            Axiom::RoleIncl(q1, GeneralRole::Neg(q2))
                if matches!(
                    (q1.is_inverse(), q2),
                    (false, BasicRole::Inverse(_)) | (true, BasicRole::Direct(_))
                )
        );
        if !undrawable {
            out.add(*ax);
        }
    }
    out
}

proptest! {
    #[test]
    fn tbox_diagram_roundtrip(seed in 0u64..400) {
        let t = drawable(&random_tbox(seed, 4, 2, 2, 16));
        let (d, unsupported) = tbox_to_diagram(&t, "prop");
        prop_assert!(unsupported.is_empty(), "{unsupported:?}");
        prop_assert!(validate(&d).is_empty(), "{:?}", validate(&d));
        let back = diagram_to_tbox(&d).unwrap();
        // Compare rendered axiom strings modulo the inverse-LHS
        // normalization the diagram applies (Q⁻ ⊑ R ≡ Q ⊑ R⁻).
        let norm = |t: &Tbox| -> std::collections::BTreeSet<String> {
            t.axioms()
                .iter()
                .map(|ax| {
                    let normalized = match *ax {
                        Axiom::RoleIncl(q1, GeneralRole::Basic(q2)) if q1.is_inverse() => {
                            Axiom::RoleIncl(q1.inverse(), GeneralRole::Basic(q2.inverse()))
                        }
                        Axiom::RoleIncl(q1, GeneralRole::Neg(q2)) if q1.is_inverse() => {
                            Axiom::RoleIncl(q1.inverse(), GeneralRole::Neg(q2.inverse()))
                        }
                        other => other,
                    };
                    obda_dllite::printer::axiom(
                        &normalized,
                        &t.sig,
                        obda_dllite::printer::Style::Display,
                    )
                })
                .collect()
        };
        prop_assert_eq!(norm(&t), norm(&back));
    }
}
