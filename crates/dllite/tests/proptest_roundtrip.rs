//! Property-based tests for the DL-Lite model: parser/printer round-trip,
//! merge algebra, and model-checker coherence.

use obda_dllite::{
    parse_abox, parse_tbox, printer, Abox, Axiom, BasicConcept, BasicRole, GeneralConcept,
    GeneralRole, Tbox, Value,
};
use proptest::prelude::*;

const CONCEPTS: &[&str] = &["A", "B", "C", "D"];
const ROLES: &[&str] = &["p", "r"];
const ATTRS: &[&str] = &["u", "w"];

fn base_tbox() -> Tbox {
    let mut t = Tbox::new();
    for c in CONCEPTS {
        t.sig.concept(c);
    }
    for r in ROLES {
        t.sig.role(r);
    }
    for u in ATTRS {
        t.sig.attribute(u);
    }
    t
}

prop_compose! {
    fn arb_role()(i in 0..ROLES.len(), inv in any::<bool>()) -> BasicRole {
        let id = obda_dllite::RoleId(i as u32);
        if inv { BasicRole::Inverse(id) } else { BasicRole::Direct(id) }
    }
}

prop_compose! {
    fn arb_basic()(kind in 0..3, i in 0..4usize, q in arb_role()) -> BasicConcept {
        match kind {
            0 => BasicConcept::Atomic(obda_dllite::ConceptId((i % CONCEPTS.len()) as u32)),
            1 => BasicConcept::Exists(q),
            _ => BasicConcept::AttrDomain(obda_dllite::AttributeId((i % ATTRS.len()) as u32)),
        }
    }
}

fn arb_axiom() -> impl Strategy<Value = Axiom> {
    let concept_incl = (arb_basic(), arb_basic(), any::<bool>()).prop_map(|(b1, b2, neg)| {
        Axiom::ConceptIncl(
            b1,
            if neg {
                GeneralConcept::Neg(b2)
            } else {
                GeneralConcept::Basic(b2)
            },
        )
    });
    let qual = (arb_basic(), arb_role(), 0..CONCEPTS.len()).prop_map(|(b, q, a)| {
        Axiom::ConceptIncl(
            b,
            GeneralConcept::QualExists(q, obda_dllite::ConceptId(a as u32)),
        )
    });
    let role_incl = (arb_role(), arb_role(), any::<bool>()).prop_map(|(q1, q2, neg)| {
        Axiom::RoleIncl(
            q1,
            if neg {
                GeneralRole::Neg(q2)
            } else {
                GeneralRole::Basic(q2)
            },
        )
    });
    let attr = (0..ATTRS.len(), 0..ATTRS.len(), any::<bool>()).prop_map(|(u, w, neg)| {
        let (u, w) = (
            obda_dllite::AttributeId(u as u32),
            obda_dllite::AttributeId(w as u32),
        );
        if neg {
            Axiom::AttrNegIncl(u, w)
        } else {
            Axiom::AttrIncl(u, w)
        }
    });
    prop_oneof![concept_incl, qual, role_incl, attr]
}

proptest! {
    #[test]
    fn tbox_roundtrips_through_concrete_syntax(axioms in proptest::collection::vec(arb_axiom(), 0..20)) {
        let mut t = base_tbox();
        for ax in axioms {
            t.add(ax);
        }
        let printed = printer::tbox(&t, printer::Style::Concrete);
        let reparsed = parse_tbox(&printed).unwrap();
        prop_assert_eq!(&t.sig, &reparsed.sig);
        prop_assert_eq!(t.axioms(), reparsed.axioms());
    }

    #[test]
    fn add_is_idempotent(axioms in proptest::collection::vec(arb_axiom(), 0..20)) {
        let mut t = base_tbox();
        for ax in &axioms {
            t.add(*ax);
        }
        let len = t.len();
        for ax in &axioms {
            prop_assert!(!t.add(*ax), "re-adding must report duplicate");
        }
        prop_assert_eq!(t.len(), len);
    }

    #[test]
    fn merge_is_idempotent_and_monotone(
        axioms1 in proptest::collection::vec(arb_axiom(), 0..12),
        axioms2 in proptest::collection::vec(arb_axiom(), 0..12),
    ) {
        let mut t1 = base_tbox();
        for ax in axioms1 {
            t1.add(ax);
        }
        let mut t2 = base_tbox();
        for ax in axioms2 {
            t2.add(ax);
        }
        let mut merged = t1.clone();
        merged.merge(&t2);
        prop_assert!(merged.len() >= t1.len());
        prop_assert!(merged.len() >= t2.len());
        // Same signature names: every t2 axiom must appear unchanged.
        for ax in t2.axioms() {
            prop_assert!(merged.contains(ax));
        }
        // Merging again changes nothing.
        let before = merged.len();
        merged.merge(&t2);
        prop_assert_eq!(merged.len(), before);
    }

    #[test]
    fn stats_total_matches_len(axioms in proptest::collection::vec(arb_axiom(), 0..25)) {
        let mut t = base_tbox();
        for ax in axioms {
            t.add(ax);
        }
        prop_assert_eq!(t.stats().total_axioms(), t.len());
    }

    #[test]
    fn abox_roundtrips(
        concept_asserts in proptest::collection::vec((0..4usize, 0..5usize), 0..10),
        role_asserts in proptest::collection::vec((0..2usize, 0..5usize, 0..5usize), 0..10),
        attr_asserts in proptest::collection::vec((0..2usize, 0..5usize, -5i64..5), 0..10),
    ) {
        let t = base_tbox();
        let mut ab = Abox::new();
        for (c, i) in concept_asserts {
            ab.assert_concept(obda_dllite::ConceptId(c as u32), &format!("x{i}"));
        }
        for (r, s, o) in role_asserts {
            ab.assert_role(obda_dllite::RoleId(r as u32), &format!("x{s}"), &format!("x{o}"));
        }
        for (u, s, v) in attr_asserts {
            ab.assert_attribute(
                obda_dllite::AttributeId(u as u32),
                &format!("x{s}"),
                Value::Int(v),
            );
        }
        let printed = printer::abox(&ab, &t.sig);
        let reparsed = parse_abox(&printed, &t.sig).unwrap();
        prop_assert_eq!(ab.assertions(), reparsed.assertions());
    }
}
