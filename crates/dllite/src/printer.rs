//! Pretty-printing of DL-Lite expressions, axioms, TBoxes and ABoxes.
//!
//! Two flavours are provided:
//!
//! * the *concrete syntax* of [`crate::parser`] (so `print_tbox ∘
//!   parse_tbox` round-trips — property-tested in the crate tests), and
//! * a *display syntax* using DL glyphs (`⊑ ¬ ∃ ⁻ δ`) for reports and
//!   examples.

use std::fmt::Write as _;

use crate::abox::{Abox, Assertion};
use crate::axiom::Axiom;
use crate::expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole, NamedPredicate};
use crate::signature::Signature;
use crate::tbox::Tbox;

/// Which glyph set to print with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Parseable by [`crate::parser::parse_tbox`].
    Concrete,
    /// Human-oriented DL glyphs.
    Display,
}

/// Renders a basic role.
pub fn basic_role(q: BasicRole, sig: &Signature, style: Style) -> String {
    let name = sig.role_name(q.role());
    match (q.is_inverse(), style) {
        (false, _) => name.to_owned(),
        (true, Style::Concrete) => format!("inv({name})"),
        (true, Style::Display) => format!("{name}⁻"),
    }
}

/// Renders a basic concept.
pub fn basic_concept(b: BasicConcept, sig: &Signature, style: Style) -> String {
    match b {
        BasicConcept::Atomic(a) => sig.concept_name(a).to_owned(),
        BasicConcept::Exists(q) => match style {
            Style::Concrete => format!("exists {}", basic_role(q, sig, style)),
            Style::Display => format!("∃{}", basic_role(q, sig, style)),
        },
        BasicConcept::AttrDomain(u) => match style {
            Style::Concrete => format!("domain({})", sig.attribute_name(u)),
            Style::Display => format!("δ({})", sig.attribute_name(u)),
        },
    }
}

/// Renders a general concept.
pub fn general_concept(c: GeneralConcept, sig: &Signature, style: Style) -> String {
    match c {
        GeneralConcept::Basic(b) => basic_concept(b, sig, style),
        GeneralConcept::Neg(b) => match style {
            Style::Concrete => format!("not {}", basic_concept(b, sig, style)),
            Style::Display => format!("¬{}", basic_concept(b, sig, style)),
        },
        GeneralConcept::QualExists(q, a) => match style {
            Style::Concrete => format!(
                "exists {} . {}",
                basic_role(q, sig, style),
                sig.concept_name(a)
            ),
            Style::Display => {
                format!("∃{}.{}", basic_role(q, sig, style), sig.concept_name(a))
            }
        },
    }
}

/// Renders an axiom.
pub fn axiom(ax: &Axiom, sig: &Signature, style: Style) -> String {
    let sub = match style {
        Style::Concrete => "[=",
        Style::Display => "⊑",
    };
    let neg = match style {
        Style::Concrete => "not ",
        Style::Display => "¬",
    };
    match *ax {
        Axiom::ConceptIncl(lhs, rhs) => format!(
            "{} {} {}",
            basic_concept(lhs, sig, style),
            sub,
            general_concept(rhs, sig, style)
        ),
        Axiom::RoleIncl(lhs, rhs) => {
            let rhs_s = match rhs {
                GeneralRole::Basic(q) => basic_role(q, sig, style),
                GeneralRole::Neg(q) => format!("{neg}{}", basic_role(q, sig, style)),
            };
            format!("{} {} {}", basic_role(lhs, sig, style), sub, rhs_s)
        }
        Axiom::AttrIncl(u1, u2) => format!(
            "{} {} {}",
            sig.attribute_name(u1),
            sub,
            sig.attribute_name(u2)
        ),
        Axiom::AttrNegIncl(u1, u2) => format!(
            "{} {} {}{}",
            sig.attribute_name(u1),
            sub,
            neg,
            sig.attribute_name(u2)
        ),
    }
}

/// Renders a named predicate.
pub fn named_predicate(p: NamedPredicate, sig: &Signature) -> String {
    match p {
        NamedPredicate::Concept(a) => sig.concept_name(a).to_owned(),
        NamedPredicate::Role(r) => sig.role_name(r).to_owned(),
        NamedPredicate::Attribute(u) => sig.attribute_name(u).to_owned(),
    }
}

/// Renders a whole TBox in the requested style. In [`Style::Concrete`] the
/// output starts with the declaration lines and parses back to an
/// equivalent TBox.
pub fn tbox(t: &Tbox, style: Style) -> String {
    let mut out = String::new();
    if style == Style::Concrete {
        if t.sig.num_concepts() > 0 {
            out.push_str("concept");
            for a in t.sig.concepts() {
                let _ = write!(out, " {}", t.sig.concept_name(a));
            }
            out.push('\n');
        }
        if t.sig.num_roles() > 0 {
            out.push_str("role");
            for r in t.sig.roles() {
                let _ = write!(out, " {}", t.sig.role_name(r));
            }
            out.push('\n');
        }
        if t.sig.num_attributes() > 0 {
            out.push_str("attribute");
            for u in t.sig.attributes() {
                let _ = write!(out, " {}", t.sig.attribute_name(u));
            }
            out.push('\n');
        }
    }
    for ax in t.axioms() {
        out.push_str(&axiom(ax, &t.sig, style));
        out.push('\n');
    }
    out
}

/// Renders an ABox in the concrete atom-per-line syntax.
pub fn abox(ab: &Abox, sig: &Signature) -> String {
    let mut out = String::new();
    for a in ab.assertions() {
        match a {
            Assertion::Concept(c, i) => {
                let _ = writeln!(out, "{}({})", sig.concept_name(*c), ab.individual_name(*i));
            }
            Assertion::Role(p, s, o) => {
                let _ = writeln!(
                    out,
                    "{}({}, {})",
                    sig.role_name(*p),
                    ab.individual_name(*s),
                    ab.individual_name(*o)
                );
            }
            Assertion::Attribute(u, s, v) => {
                let _ = writeln!(
                    out,
                    "{}({}, {})",
                    sig.attribute_name(*u),
                    ab.individual_name(*s),
                    v
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_abox, parse_tbox};

    const SRC: &str = r#"
        concept A B
        role p r
        attribute u w
        A [= B
        A [= not B
        A [= exists p
        exists inv(p) [= A
        A [= exists inv(p) . B
        p [= inv(r)
        p [= not r
        u [= w
        u [= not w
        domain(u) [= A
    "#;

    #[test]
    fn concrete_roundtrip() {
        let t1 = parse_tbox(SRC).unwrap();
        let printed = tbox(&t1, Style::Concrete);
        let t2 = parse_tbox(&printed).unwrap();
        assert_eq!(t1.axioms(), t2.axioms());
        assert_eq!(t1.sig, t2.sig);
    }

    #[test]
    fn display_glyphs() {
        let t = parse_tbox("concept A B\nrole p\nA [= exists inv(p) . B").unwrap();
        let s = axiom(&t.axioms()[0], &t.sig, Style::Display);
        assert_eq!(s, "A ⊑ ∃p⁻.B");
    }

    #[test]
    fn abox_roundtrip() {
        let t = parse_tbox("concept A\nrole p\nattribute u").unwrap();
        let ab1 = parse_abox("A(x)\np(x, y)\nu(x, 7)\nu(x, \"v\")", &t.sig).unwrap();
        let printed = abox(&ab1, &t.sig);
        let ab2 = parse_abox(&printed, &t.sig).unwrap();
        assert_eq!(ab1.assertions(), ab2.assertions());
    }
}
