//! Line-oriented concrete syntax for DL-Lite_R/A TBoxes and ABoxes.
//!
//! The TBox syntax mirrors the abstract grammar of the paper:
//!
//! ```text
//! # declarations (required before use; one kind per line, many names)
//! concept County State
//! role    isPartOf
//! attribute population
//!
//! # axioms: `[=` is ⊑, `not` is ¬, `exists` is ∃, `inv(p)` is p⁻,
//! # `domain(u)` is δ(u), and `exists q . A` is the qualified ∃q.A
//! County [= exists isPartOf . State
//! State  [= exists inv(isPartOf) . County
//! County [= not State
//! isPartOf [= locatedIn
//! domain(population) [= County
//! ```
//!
//! The ABox syntax is atom-per-line: `A(x)`, `p(x, y)`, `u(x, 42)`,
//! `u(x, "text")`.
//!
//! Blank lines and `#` comments are ignored everywhere.

use std::fmt;

use crate::abox::{Abox, Value};
use crate::axiom::Axiom;
use crate::expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole};
use crate::signature::Signature;
use crate::tbox::Tbox;

/// Error produced by [`parse_tbox`] / [`parse_abox`], with 1-based line
/// number and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Subsumes, // `[=`
    Not,
    Exists,
    Inv,    // `inv`
    Domain, // `domain`
    LParen,
    RParen,
    Dot,
    Comma,
    Int(i64),
    Str(String),
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '#' => break,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '[' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Subsumes);
                    i += 2;
                } else {
                    return err(lineno, "expected `[=`");
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return err(lineno, "unterminated string literal");
                }
                toks.push(Tok::Str(line[start..j].to_owned()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &line[start..i];
                match text.parse::<i64>() {
                    Ok(n) => toks.push(Tok::Int(n)),
                    Err(_) => return err(lineno, format!("bad integer literal `{text}`")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &line[start..i];
                toks.push(match word {
                    "not" => Tok::Not,
                    "exists" => Tok::Exists,
                    "inv" => Tok::Inv,
                    "domain" => Tok::Domain,
                    _ => Tok::Ident(word.to_owned()),
                });
            }
            other => return err(lineno, format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

/// Cursor over the token list of one line.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            _ => err(self.line, format!("expected {what}")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            _ => err(self.line, format!("expected {what}")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }
}

/// One side of an inclusion before sort resolution.
enum Side {
    Concept(BasicConcept),
    Role(BasicRole),
    Attribute(crate::signature::AttributeId),
    QualExists(BasicRole, crate::signature::ConceptId),
}

fn parse_role_expr(cur: &mut Cursor, sig: &Signature) -> Result<BasicRole, ParseError> {
    match cur.next() {
        Some(Tok::Inv) => {
            cur.expect(&Tok::LParen, "`(` after inv")?;
            let name = cur.ident("role name")?;
            cur.expect(&Tok::RParen, "`)`")?;
            match sig.find_role(&name) {
                Some(p) => Ok(BasicRole::Inverse(p)),
                None => err(cur.line, format!("undeclared role `{name}`")),
            }
        }
        Some(Tok::Ident(name)) => {
            let name = name.clone();
            match sig.find_role(&name) {
                Some(p) => Ok(BasicRole::Direct(p)),
                None => err(cur.line, format!("undeclared role `{name}`")),
            }
        }
        _ => err(cur.line, "expected role expression"),
    }
}

/// Parses a side of an inclusion: a basic concept, basic role, attribute,
/// or (on the right-hand side only) a qualified existential.
fn parse_side(cur: &mut Cursor, sig: &Signature) -> Result<Side, ParseError> {
    match cur.peek() {
        Some(Tok::Exists) => {
            cur.next();
            let q = parse_role_expr(cur, sig)?;
            if cur.peek() == Some(&Tok::Dot) {
                cur.next();
                let name = cur.ident("atomic concept after `.`")?;
                match sig.find_concept(&name) {
                    Some(a) => Ok(Side::QualExists(q, a)),
                    None => err(cur.line, format!("undeclared concept `{name}`")),
                }
            } else {
                Ok(Side::Concept(BasicConcept::Exists(q)))
            }
        }
        Some(Tok::Domain) => {
            cur.next();
            cur.expect(&Tok::LParen, "`(` after domain")?;
            let name = cur.ident("attribute name")?;
            cur.expect(&Tok::RParen, "`)`")?;
            match sig.find_attribute(&name) {
                Some(u) => Ok(Side::Concept(BasicConcept::AttrDomain(u))),
                None => err(cur.line, format!("undeclared attribute `{name}`")),
            }
        }
        Some(Tok::Inv) => Ok(Side::Role(parse_role_expr(cur, sig)?)),
        Some(Tok::Ident(name)) => {
            let name = name.clone();
            cur.next();
            if let Some(a) = sig.find_concept(&name) {
                Ok(Side::Concept(BasicConcept::Atomic(a)))
            } else if let Some(p) = sig.find_role(&name) {
                Ok(Side::Role(BasicRole::Direct(p)))
            } else if let Some(u) = sig.find_attribute(&name) {
                Ok(Side::Attribute(u))
            } else {
                err(cur.line, format!("undeclared name `{name}`"))
            }
        }
        _ => err(cur.line, "expected concept, role or attribute expression"),
    }
}

/// Parses a TBox from the concrete syntax described in the module docs.
pub fn parse_tbox(src: &str) -> Result<Tbox, ParseError> {
    let mut tbox = Tbox::new();
    // First pass: declarations (they may appear anywhere, but must precede
    // first use; processing declaration lines of the whole file up front
    // keeps the common "all decls at top" style working and also permits
    // interleaving).
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let toks = tokenize(raw, lineno)?;
        if toks.is_empty() {
            continue;
        }
        if let Tok::Ident(kw) = &toks[0] {
            let kind = kw.as_str();
            if matches!(kind, "concept" | "role" | "attribute") {
                if toks.len() < 2 {
                    return err(lineno, format!("`{kind}` needs at least one name"));
                }
                for t in &toks[1..] {
                    match t {
                        Tok::Ident(name) => {
                            match kind {
                                "concept" => {
                                    tbox.sig.concept(name);
                                }
                                "role" => {
                                    tbox.sig.role(name);
                                }
                                _ => {
                                    tbox.sig.attribute(name);
                                }
                            };
                        }
                        _ => return err(lineno, format!("bad name in `{kind}` declaration")),
                    }
                }
            }
        }
    }
    // Second pass: axioms.
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let toks = tokenize(raw, lineno)?;
        if toks.is_empty() {
            continue;
        }
        if let Tok::Ident(kw) = &toks[0] {
            if matches!(kw.as_str(), "concept" | "role" | "attribute") {
                continue;
            }
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        let lhs = parse_side(&mut cur, &tbox.sig)?;
        cur.expect(&Tok::Subsumes, "`[=`")?;
        let negated = if cur.peek() == Some(&Tok::Not) {
            cur.next();
            true
        } else {
            false
        };
        let rhs = parse_side(&mut cur, &tbox.sig)?;
        if !cur.at_end() {
            return err(lineno, "trailing tokens after axiom");
        }
        let ax = match (lhs, rhs, negated) {
            (Side::Concept(b1), Side::Concept(b2), false) => {
                Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2))
            }
            (Side::Concept(b1), Side::Concept(b2), true) => {
                Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2))
            }
            (Side::Concept(b1), Side::QualExists(q, a), false) => {
                Axiom::ConceptIncl(b1, GeneralConcept::QualExists(q, a))
            }
            (Side::Concept(_), Side::QualExists(_, _), true) => {
                return err(
                    lineno,
                    "negation of a qualified existential is not in DL-Lite_R",
                )
            }
            (Side::Role(q1), Side::Role(q2), false) => Axiom::RoleIncl(q1, GeneralRole::Basic(q2)),
            (Side::Role(q1), Side::Role(q2), true) => Axiom::RoleIncl(q1, GeneralRole::Neg(q2)),
            (Side::Attribute(u1), Side::Attribute(u2), false) => Axiom::AttrIncl(u1, u2),
            (Side::Attribute(u1), Side::Attribute(u2), true) => Axiom::AttrNegIncl(u1, u2),
            (Side::QualExists(_, _), _, _) => {
                return err(
                    lineno,
                    "qualified existential cannot appear on the left-hand side",
                )
            }
            _ => return err(lineno, "inclusion sides have different sorts"),
        };
        tbox.add(ax);
    }
    Ok(tbox)
}

/// Parses an ABox (atom per line) against an existing signature.
pub fn parse_abox(src: &str, sig: &Signature) -> Result<Abox, ParseError> {
    let mut abox = Abox::new();
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let toks = tokenize(raw, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        let pred = cur.ident("predicate name")?;
        cur.expect(&Tok::LParen, "`(`")?;
        let subj = cur.ident("individual name")?;
        if let Some(a) = sig.find_concept(&pred) {
            cur.expect(&Tok::RParen, "`)`")?;
            abox.assert_concept(a, &subj);
        } else if let Some(p) = sig.find_role(&pred) {
            cur.expect(&Tok::Comma, "`,`")?;
            let obj = cur.ident("individual name")?;
            cur.expect(&Tok::RParen, "`)`")?;
            abox.assert_role(p, &subj, &obj);
        } else if let Some(u) = sig.find_attribute(&pred) {
            cur.expect(&Tok::Comma, "`,`")?;
            let value = match cur.next() {
                Some(Tok::Int(n)) => Value::Int(*n),
                Some(Tok::Str(s)) => Value::Text(s.clone()),
                _ => return err(lineno, "expected integer or string value"),
            };
            cur.expect(&Tok::RParen, "`)`")?;
            abox.assert_attribute(u, &subj, value);
        } else {
            return err(lineno, format!("undeclared predicate `{pred}`"));
        }
        if !cur.at_end() {
            return err(lineno, "trailing tokens after assertion");
        }
    }
    Ok(abox)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str = r#"
        # Figure 2 of the paper
        concept County State
        role isPartOf

        County [= exists isPartOf . State
        State  [= exists inv(isPartOf) . County
    "#;

    #[test]
    fn parses_figure2() {
        let t = parse_tbox(FIGURE2).unwrap();
        assert_eq!(t.len(), 2);
        let county = t.sig.find_concept("County").unwrap();
        let state = t.sig.find_concept("State").unwrap();
        let p = t.sig.find_role("isPartOf").unwrap();
        assert_eq!(
            t.axioms()[0],
            Axiom::qual_exists(county, BasicRole::Direct(p), state)
        );
        assert_eq!(
            t.axioms()[1],
            Axiom::qual_exists(state, BasicRole::Inverse(p), county)
        );
    }

    #[test]
    fn parses_every_axiom_kind() {
        let src = r#"
            concept A B
            role p r
            attribute u w
            A [= B
            A [= not B
            A [= exists p
            exists inv(p) [= A
            A [= exists p . B
            p [= r
            p [= not inv(r)
            u [= w
            u [= not w
            domain(u) [= A
        "#;
        let t = parse_tbox(src).unwrap();
        assert_eq!(t.len(), 10);
        let s = t.stats();
        assert_eq!(s.concept_disjointness, 1);
        assert_eq!(s.role_disjointness, 1);
        assert_eq!(s.attribute_disjointness, 1);
        assert_eq!(s.qualified_existentials, 1);
    }

    #[test]
    fn rejects_undeclared_names() {
        let e = parse_tbox("A [= B").unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_mixed_sorts() {
        let e = parse_tbox("concept A\nrole p\nA [= p").unwrap_err();
        assert!(e.message.contains("different sorts"));
    }

    #[test]
    fn rejects_qualified_existential_on_lhs() {
        let e = parse_tbox("concept A B\nrole p\nexists p . A [= B").unwrap_err();
        assert!(e.message.contains("left-hand side"));
    }

    #[test]
    fn rejects_negated_qualified_existential() {
        let e = parse_tbox("concept A B\nrole p\nA [= not exists p . B").unwrap_err();
        assert!(e.message.contains("not in DL-Lite_R"));
    }

    #[test]
    fn parses_abox_atoms() {
        let t = parse_tbox("concept A\nrole p\nattribute u").unwrap();
        let ab = parse_abox("A(x)\np(x, y)\nu(x, 42)\nu(y, \"hello\")", &t.sig).unwrap();
        assert_eq!(ab.len(), 4);
        assert_eq!(ab.num_individuals(), 2);
    }

    #[test]
    fn abox_rejects_arity_mismatch() {
        let t = parse_tbox("concept A").unwrap();
        assert!(parse_abox("A(x, y)", &t.sig).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let e = parse_tbox("concept A\n\nA [= §").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
