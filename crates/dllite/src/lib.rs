//! # obda-dllite
//!
//! Object model for the *DL-Lite* family of description logics, in the
//! dialect used by the paper: **DL-Lite_R** extended with qualified
//! existential restrictions on the right-hand side of concept inclusions,
//! plus the attribute constructs of DL-Lite_A (attributes and attribute
//! domains) without functionality.
//!
//! The crate provides:
//!
//! * an interned [`Signature`] of atomic concepts, atomic roles and
//!   attributes (`signature`);
//! * the concept/role expression grammar of the paper (`expr`):
//!   basic concepts `B ::= A | ∃Q | δ(U)`, basic roles `Q ::= P | P⁻`,
//!   general concepts `C ::= B | ¬B | ∃Q.A` and general roles
//!   `R ::= Q | ¬Q`;
//! * TBox axioms `B ⊑ C`, `Q ⊑ R`, `U₁ ⊑ U₂`, `U₁ ⊑ ¬U₂` and the
//!   [`Tbox`] container (`axiom`, `tbox`);
//! * ABox assertions and the [`Abox`] container (`abox`);
//! * a line-oriented concrete syntax with parser and pretty-printer
//!   (`parser`, `printer`);
//! * finite interpretations with a model checker (`interp`), used by the
//!   property-test suites of the downstream reasoning crates to validate
//!   soundness of derived axioms.
//!
//! Everything downstream (the QuOnto-style classifier in `quonto`, the
//! baseline reasoners, the OBDA system `mastro`, the graphical language,
//! approximation, and the generators) builds on these types.

pub mod abox;
pub mod axiom;
pub mod expr;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod signature;
pub mod tbox;

pub use abox::{Abox, Assertion, IndividualId, Value};
pub use axiom::Axiom;
pub use expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole, NamedPredicate};
pub use interp::Interpretation;
pub use parser::{parse_abox, parse_tbox, ParseError};
pub use signature::{AttributeId, ConceptId, RoleId, Signature};
pub use tbox::{PiIndex, Tbox};
