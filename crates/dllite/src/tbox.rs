//! The [`Tbox`] container: a signature plus a set of axioms, and the
//! predicate-indexed view of its positive inclusions ([`PiIndex`]) that
//! the query rewriters use to find applicable axioms without scanning
//! the whole TBox per atom.

use std::collections::{HashMap, HashSet};

use crate::axiom::Axiom;
use crate::expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole};
use crate::signature::{AttributeId, ConceptId, RoleId, Signature};

/// A DL-Lite_R/A TBox: an interned [`Signature`] together with a duplicate-
/// free, insertion-ordered list of [`Axiom`]s.
///
/// ```
/// use obda_dllite::{Tbox, Axiom, BasicRole};
/// let mut t = Tbox::new();
/// let county = t.sig.concept("County");
/// let state = t.sig.concept("State");
/// let part_of = t.sig.role("isPartOf");
/// t.add(Axiom::qual_exists(county, BasicRole::Direct(part_of), state));
/// t.add(Axiom::qual_exists(state, BasicRole::Inverse(part_of), county));
/// assert_eq!(t.axioms().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tbox {
    /// The signature of atomic predicates used by the axioms.
    pub sig: Signature,
    axioms: Vec<Axiom>,
    seen: HashSet<Axiom>,
}

impl Tbox {
    /// Creates an empty TBox with an empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty TBox over an existing signature.
    pub fn with_signature(sig: Signature) -> Self {
        Tbox {
            sig,
            axioms: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Adds an axiom, ignoring exact duplicates. Returns `true` if the
    /// axiom was new.
    pub fn add(&mut self, ax: Axiom) -> bool {
        if self.seen.insert(ax) {
            self.axioms.push(ax);
            true
        } else {
            false
        }
    }

    /// Whether the TBox contains exactly this axiom (syntactically).
    pub fn contains(&self, ax: &Axiom) -> bool {
        self.seen.contains(ax)
    }

    /// All axioms, in insertion order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// The positive inclusions (used to build the digraph of Definition 1).
    pub fn positive_inclusions(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.is_positive())
    }

    /// The negative inclusions (used by `computeUnsat`).
    pub fn negative_inclusions(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| !a.is_positive())
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the TBox has no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Summary statistics, used by generators and benchmark reports.
    pub fn stats(&self) -> TboxStats {
        let mut s = TboxStats {
            concepts: self.sig.num_concepts(),
            roles: self.sig.num_roles(),
            attributes: self.sig.num_attributes(),
            ..TboxStats::default()
        };
        for ax in &self.axioms {
            match ax {
                Axiom::ConceptIncl(_, GeneralConcept::Basic(_)) => s.concept_inclusions += 1,
                Axiom::ConceptIncl(_, GeneralConcept::QualExists(_, _)) => {
                    s.qualified_existentials += 1
                }
                Axiom::ConceptIncl(_, GeneralConcept::Neg(_)) => s.concept_disjointness += 1,
                Axiom::RoleIncl(_, GeneralRole::Basic(_)) => s.role_inclusions += 1,
                Axiom::RoleIncl(_, GeneralRole::Neg(_)) => s.role_disjointness += 1,
                Axiom::AttrIncl(_, _) => s.attribute_inclusions += 1,
                Axiom::AttrNegIncl(_, _) => s.attribute_disjointness += 1,
            }
        }
        s
    }

    /// Merges another TBox into this one, remapping its signature.
    pub fn merge(&mut self, other: &Tbox) {
        let map = self.sig.merge(&other.sig);
        let remap_role = |q: BasicRole| match q {
            BasicRole::Direct(p) => BasicRole::Direct(map.role(p)),
            BasicRole::Inverse(p) => BasicRole::Inverse(map.role(p)),
        };
        let remap_basic = |b: BasicConcept| match b {
            BasicConcept::Atomic(a) => BasicConcept::Atomic(map.concept(a)),
            BasicConcept::Exists(q) => BasicConcept::Exists(remap_role(q)),
            BasicConcept::AttrDomain(u) => BasicConcept::AttrDomain(map.attribute(u)),
        };
        for ax in other.axioms() {
            let remapped = match *ax {
                Axiom::ConceptIncl(lhs, rhs) => {
                    let rhs = match rhs {
                        GeneralConcept::Basic(b) => GeneralConcept::Basic(remap_basic(b)),
                        GeneralConcept::Neg(b) => GeneralConcept::Neg(remap_basic(b)),
                        GeneralConcept::QualExists(q, a) => {
                            GeneralConcept::QualExists(remap_role(q), map.concept(a))
                        }
                    };
                    Axiom::ConceptIncl(remap_basic(lhs), rhs)
                }
                Axiom::RoleIncl(lhs, rhs) => {
                    let rhs = match rhs {
                        GeneralRole::Basic(q) => GeneralRole::Basic(remap_role(q)),
                        GeneralRole::Neg(q) => GeneralRole::Neg(remap_role(q)),
                    };
                    Axiom::RoleIncl(remap_role(lhs), rhs)
                }
                Axiom::AttrIncl(u1, u2) => Axiom::AttrIncl(map.attribute(u1), map.attribute(u2)),
                Axiom::AttrNegIncl(u1, u2) => {
                    Axiom::AttrNegIncl(map.attribute(u1), map.attribute(u2))
                }
            };
            self.add(remapped);
        }
    }

    /// Builds the predicate-indexed applicability map over this TBox's
    /// positive inclusions (see [`PiIndex`]). O(|TBox|); build it once
    /// per rewriting call rather than scanning the axiom list per atom.
    pub fn pi_index(&self) -> PiIndex {
        PiIndex::build(self)
    }

    /// The set of named predicates syntactically occurring in an axiom's
    /// signature (used by the approximation crate, which works per axiom).
    pub fn axiom_signature(ax: &Axiom) -> AxiomSignature {
        let mut s = AxiomSignature::default();
        let mut basic = |b: &BasicConcept| match *b {
            BasicConcept::Atomic(a) => s.concepts.push(a),
            BasicConcept::Exists(q) => s.roles.push(q.role()),
            BasicConcept::AttrDomain(u) => s.attributes.push(u),
        };
        match ax {
            Axiom::ConceptIncl(lhs, rhs) => {
                basic(lhs);
                match rhs {
                    GeneralConcept::Basic(b) | GeneralConcept::Neg(b) => basic(b),
                    GeneralConcept::QualExists(q, a) => {
                        s.roles.push(q.role());
                        s.concepts.push(*a);
                    }
                }
            }
            Axiom::RoleIncl(lhs, rhs) => {
                s.roles.push(lhs.role());
                match rhs {
                    GeneralRole::Basic(q) | GeneralRole::Neg(q) => s.roles.push(q.role()),
                }
            }
            Axiom::AttrIncl(u1, u2) | Axiom::AttrNegIncl(u1, u2) => {
                s.attributes.push(*u1);
                s.attributes.push(*u2);
            }
        }
        s.concepts.sort_unstable();
        s.concepts.dedup();
        s.roles.sort_unstable();
        s.roles.dedup();
        s.attributes.sort_unstable();
        s.attributes.dedup();
        s
    }
}

/// Counts of each axiom kind plus signature sizes; see [`Tbox::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TboxStats {
    /// Number of atomic concepts in the signature.
    pub concepts: usize,
    /// Number of atomic roles in the signature.
    pub roles: usize,
    /// Number of attributes in the signature.
    pub attributes: usize,
    /// `B ⊑ B'` axioms.
    pub concept_inclusions: usize,
    /// `B ⊑ ∃Q.A` axioms.
    pub qualified_existentials: usize,
    /// `B ⊑ ¬B'` axioms.
    pub concept_disjointness: usize,
    /// `Q ⊑ Q'` axioms.
    pub role_inclusions: usize,
    /// `Q ⊑ ¬Q'` axioms.
    pub role_disjointness: usize,
    /// `U ⊑ U'` axioms.
    pub attribute_inclusions: usize,
    /// `U ⊑ ¬U'` axioms.
    pub attribute_disjointness: usize,
}

impl TboxStats {
    /// Total number of axioms.
    pub fn total_axioms(&self) -> usize {
        self.concept_inclusions
            + self.qualified_existentials
            + self.concept_disjointness
            + self.role_inclusions
            + self.role_disjointness
            + self.attribute_inclusions
            + self.attribute_disjointness
    }
}

/// Predicate-indexed applicability map over a TBox's positive
/// inclusions: for each predicate that can appear in a query atom, the
/// axioms whose *right-hand side* mentions that predicate — exactly the
/// axioms a backward-rewriting step (PerfectRef applicability, the
/// qualified pair rule) can apply to an atom of that predicate.
///
/// * a concept atom `A(t)` can only be rewritten by `B ⊑ A` or
///   `B ⊑ ∃Q.A` (the filler rule);
/// * a role atom `P(s, o)` only by `B ⊑ ∃Q`, `B ⊑ ∃Q.A` (with
///   `Q ∈ {P, P⁻}`) or `Q₁ ⊑ Q₂` with `Q₂ ∈ {P, P⁻}`;
/// * an attribute atom `U(s, v)` only by `B ⊑ δ(U)` or `U' ⊑ U`.
///
/// Axiom order within each bucket follows TBox insertion order, so an
/// indexed rewriting loop visits applicable axioms in the same order as
/// the scanning loop (the two are cross-checked property-tested in
/// `mastro`).
#[derive(Debug, Clone, Default)]
pub struct PiIndex {
    by_concept: HashMap<ConceptId, Vec<Axiom>>,
    by_role: HashMap<RoleId, Vec<Axiom>>,
    by_attr: HashMap<AttributeId, Vec<Axiom>>,
    /// `B ⊑ ∃Q.A` axioms keyed by `Q`'s underlying role (pair rule).
    qual_by_role: HashMap<RoleId, Vec<Axiom>>,
}

impl PiIndex {
    /// Builds the index from a TBox (see [`Tbox::pi_index`]).
    pub fn build(tbox: &Tbox) -> PiIndex {
        let mut ix = PiIndex::default();
        for ax in tbox.positive_inclusions() {
            match ax {
                Axiom::ConceptIncl(_, GeneralConcept::Basic(BasicConcept::Atomic(a))) => {
                    ix.by_concept.entry(*a).or_default().push(*ax);
                }
                Axiom::ConceptIncl(_, GeneralConcept::Basic(BasicConcept::Exists(q))) => {
                    ix.by_role.entry(q.role()).or_default().push(*ax);
                }
                Axiom::ConceptIncl(_, GeneralConcept::Basic(BasicConcept::AttrDomain(u))) => {
                    ix.by_attr.entry(*u).or_default().push(*ax);
                }
                Axiom::ConceptIncl(_, GeneralConcept::QualExists(q, a)) => {
                    // Applicable both to role atoms of Q's role (as an
                    // unqualified existential) and to concept atoms of
                    // the filler A.
                    ix.by_role.entry(q.role()).or_default().push(*ax);
                    ix.by_concept.entry(*a).or_default().push(*ax);
                    ix.qual_by_role.entry(q.role()).or_default().push(*ax);
                }
                Axiom::RoleIncl(_, GeneralRole::Basic(q2)) => {
                    ix.by_role.entry(q2.role()).or_default().push(*ax);
                }
                Axiom::AttrIncl(_, u2) => {
                    ix.by_attr.entry(*u2).or_default().push(*ax);
                }
                // positive_inclusions() never yields negative axioms.
                Axiom::ConceptIncl(_, GeneralConcept::Neg(_))
                | Axiom::RoleIncl(_, GeneralRole::Neg(_))
                | Axiom::AttrNegIncl(_, _) => {}
            }
        }
        ix
    }

    /// Positive inclusions applicable to a concept atom of `a`.
    pub fn for_concept_atom(&self, a: ConceptId) -> &[Axiom] {
        self.by_concept.get(&a).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Positive inclusions applicable to a role atom of `p` (either
    /// orientation).
    pub fn for_role_atom(&self, p: RoleId) -> &[Axiom] {
        self.by_role.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Positive inclusions applicable to an attribute atom of `u`.
    pub fn for_attribute_atom(&self, u: AttributeId) -> &[Axiom] {
        self.by_attr.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Qualified existential axioms `B ⊑ ∃Q.A` whose `Q` is over role
    /// `p`, in either orientation (the pair rule's candidate set).
    pub fn quals_for_role(&self, p: RoleId) -> &[Axiom] {
        self.qual_by_role.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Sorted, deduplicated per-sort signature of a single axiom.
#[derive(Debug, Clone, Default)]
pub struct AxiomSignature {
    /// Atomic concepts occurring in the axiom.
    pub concepts: Vec<ConceptId>,
    /// Atomic roles occurring in the axiom.
    pub roles: Vec<RoleId>,
    /// Attributes occurring in the axiom.
    pub attributes: Vec<AttributeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tbox {
        let mut t = Tbox::new();
        let a = t.sig.concept("A");
        let b = t.sig.concept("B");
        let p = t.sig.role("p");
        t.add(Axiom::concept(a, b));
        t.add(Axiom::qual_exists(b, BasicRole::Direct(p), a));
        t.add(Axiom::concept_neg(a, BasicConcept::exists_inv(p)));
        t.add(Axiom::role(BasicRole::Direct(p), BasicRole::Inverse(p)));
        t
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut t = sample();
        let n = t.len();
        let a = t.sig.concept("A");
        let b = t.sig.concept("B");
        assert!(!t.add(Axiom::concept(a, b)));
        assert_eq!(t.len(), n);
    }

    #[test]
    fn polarity_partition_is_complete() {
        let t = sample();
        let pos = t.positive_inclusions().count();
        let neg = t.negative_inclusions().count();
        assert_eq!(pos + neg, t.len());
        assert_eq!(neg, 1);
    }

    #[test]
    fn stats_count_each_kind() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.concept_inclusions, 1);
        assert_eq!(s.qualified_existentials, 1);
        assert_eq!(s.concept_disjointness, 1);
        assert_eq!(s.role_inclusions, 1);
        assert_eq!(s.total_axioms(), t.len());
    }

    #[test]
    fn merge_unifies_names() {
        let mut t1 = sample();
        let mut t2 = Tbox::new();
        let b = t2.sig.concept("B");
        let c = t2.sig.concept("C");
        t2.add(Axiom::concept(b, c));
        t1.merge(&t2);
        // "B" must have been identified with t1's existing "B".
        assert_eq!(t1.sig.num_concepts(), 3);
        assert_eq!(t1.len(), 5);
    }

    #[test]
    fn pi_index_buckets_by_rhs_predicate() {
        let t = sample();
        let ix = t.pi_index();
        let a = t.sig.find_concept("A").unwrap();
        let b = t.sig.find_concept("B").unwrap();
        let p = t.sig.find_role("p").unwrap();
        // A ⊑ B lands in B's concept bucket; the qualified axiom
        // B ⊑ ∃p.A lands in A's concept bucket, p's role bucket, and
        // p's qual bucket; p ⊑ p⁻ lands in p's role bucket; the negative
        // inclusion is excluded everywhere.
        assert_eq!(ix.for_concept_atom(b), &[Axiom::concept(a, b)]);
        assert_eq!(
            ix.for_concept_atom(a),
            &[Axiom::qual_exists(b, BasicRole::Direct(p), a)]
        );
        assert_eq!(ix.for_role_atom(p).len(), 2);
        assert_eq!(
            ix.quals_for_role(p),
            &[Axiom::qual_exists(b, BasicRole::Direct(p), a)]
        );
        // Every positive inclusion is reachable through some bucket.
        let total: usize =
            ix.for_concept_atom(a).len() + ix.for_concept_atom(b).len() + ix.for_role_atom(p).len();
        assert!(total >= t.positive_inclusions().count());
    }

    #[test]
    fn axiom_signature_collects_names() {
        let t = sample();
        let sig = Tbox::axiom_signature(&t.axioms()[1]);
        assert_eq!(sig.concepts.len(), 2);
        assert_eq!(sig.roles.len(), 1);
    }
}
