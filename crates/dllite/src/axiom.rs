//! TBox axioms of DL-Lite_R/A.
//!
//! A DL-Lite_R TBox is a finite set of inclusions `B ⊑ C` and `Q ⊑ R`
//! (Section 4 of the paper); DL-Lite_A additionally allows inclusions
//! between attributes. The paper's classification technique partitions
//! axioms into *positive inclusions* (no negation on the right-hand side)
//! and *negative inclusions* (disjointness assertions); this module exposes
//! that partition through [`Axiom::is_positive`].

use crate::expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole};
use crate::signature::AttributeId;

/// A TBox axiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axiom {
    /// Concept inclusion `B ⊑ C`.
    ConceptIncl(BasicConcept, GeneralConcept),
    /// Role inclusion `Q ⊑ R`.
    RoleIncl(BasicRole, GeneralRole),
    /// Attribute inclusion `U₁ ⊑ U₂`.
    AttrIncl(AttributeId, AttributeId),
    /// Attribute disjointness `U₁ ⊑ ¬U₂`.
    AttrNegIncl(AttributeId, AttributeId),
}

impl Axiom {
    /// Whether the axiom is a *positive inclusion* (its right-hand side has
    /// no negation). The digraph of Definition 1 is built from exactly the
    /// positive inclusions; the negative ones drive `computeUnsat`.
    pub fn is_positive(&self) -> bool {
        match self {
            Axiom::ConceptIncl(_, rhs) => rhs.is_positive(),
            Axiom::RoleIncl(_, rhs) => rhs.is_positive(),
            Axiom::AttrIncl(_, _) => true,
            Axiom::AttrNegIncl(_, _) => false,
        }
    }

    /// Convenience constructor for an atomic concept inclusion `B ⊑ B'`.
    pub fn concept(lhs: impl Into<BasicConcept>, rhs: impl Into<BasicConcept>) -> Axiom {
        Axiom::ConceptIncl(lhs.into(), GeneralConcept::Basic(rhs.into()))
    }

    /// Convenience constructor for a concept disjointness `B ⊑ ¬B'`.
    pub fn concept_neg(lhs: impl Into<BasicConcept>, rhs: impl Into<BasicConcept>) -> Axiom {
        Axiom::ConceptIncl(lhs.into(), GeneralConcept::Neg(rhs.into()))
    }

    /// Convenience constructor for a qualified existential inclusion
    /// `B ⊑ ∃Q.A`.
    pub fn qual_exists(
        lhs: impl Into<BasicConcept>,
        q: BasicRole,
        a: crate::signature::ConceptId,
    ) -> Axiom {
        Axiom::ConceptIncl(lhs.into(), GeneralConcept::QualExists(q, a))
    }

    /// Convenience constructor for a role inclusion `Q ⊑ Q'`.
    pub fn role(lhs: BasicRole, rhs: BasicRole) -> Axiom {
        Axiom::RoleIncl(lhs, GeneralRole::Basic(rhs))
    }

    /// Convenience constructor for a role disjointness `Q ⊑ ¬Q'`.
    pub fn role_neg(lhs: BasicRole, rhs: BasicRole) -> Axiom {
        Axiom::RoleIncl(lhs, GeneralRole::Neg(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{ConceptId, RoleId};

    #[test]
    fn polarity_partition() {
        let a = ConceptId(0);
        let b = ConceptId(1);
        let p = BasicRole::Direct(RoleId(0));
        assert!(Axiom::concept(a, b).is_positive());
        assert!(!Axiom::concept_neg(a, b).is_positive());
        assert!(Axiom::qual_exists(a, p, b).is_positive());
        assert!(Axiom::role(p, p.inverse()).is_positive());
        assert!(!Axiom::role_neg(p, p.inverse()).is_positive());
        assert!(Axiom::AttrIncl(AttributeId(0), AttributeId(1)).is_positive());
        assert!(!Axiom::AttrNegIncl(AttributeId(0), AttributeId(1)).is_positive());
    }
}
