//! Interned signatures of atomic predicates.
//!
//! A [`Signature`] maps human-readable names to compact integer ids for the
//! three sorts of atomic predicates of DL-Lite_A: atomic concepts, atomic
//! roles and attributes. All downstream data structures (axioms, graphs,
//! mappings) store only the ids, which keeps them small and hashable; names
//! are resolved through the signature when printing.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an atomic concept (an OWL class) within a [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

/// Identifier of an atomic role (an OWL object property) within a
/// [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u32);

/// Identifier of an attribute (an OWL data property) within a
/// [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeId(pub u32);

impl ConceptId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RoleId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttributeId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner for the atomic predicate names of an ontology.
///
/// Names are unique *per sort*: a concept and a role may share a name
/// (although the concrete syntax of [`crate::parser`] disallows that to
/// avoid ambiguity). Interning the same name twice returns the same id.
///
/// ```
/// use obda_dllite::Signature;
/// let mut sig = Signature::new();
/// let county = sig.concept("County");
/// assert_eq!(sig.concept("County"), county);
/// assert_eq!(sig.concept_name(county), "County");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    concepts: Vec<String>,
    roles: Vec<String>,
    attributes: Vec<String>,
    concept_ids: HashMap<String, ConceptId>,
    role_ids: HashMap<String, RoleId>,
    attribute_ids: HashMap<String, AttributeId>,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` as an atomic concept, returning its id.
    pub fn concept(&mut self, name: &str) -> ConceptId {
        if let Some(&id) = self.concept_ids.get(name) {
            return id;
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(name.to_owned());
        self.concept_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns `name` as an atomic role, returning its id.
    pub fn role(&mut self, name: &str) -> RoleId {
        if let Some(&id) = self.role_ids.get(name) {
            return id;
        }
        let id = RoleId(self.roles.len() as u32);
        self.roles.push(name.to_owned());
        self.role_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns `name` as an attribute, returning its id.
    pub fn attribute(&mut self, name: &str) -> AttributeId {
        if let Some(&id) = self.attribute_ids.get(name) {
            return id;
        }
        let id = AttributeId(self.attributes.len() as u32);
        self.attributes.push(name.to_owned());
        self.attribute_ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up a concept by name without interning.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        self.concept_ids.get(name).copied()
    }

    /// Looks up a role by name without interning.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.role_ids.get(name).copied()
    }

    /// Looks up an attribute by name without interning.
    pub fn find_attribute(&self, name: &str) -> Option<AttributeId> {
        self.attribute_ids.get(name).copied()
    }

    /// Name of an interned concept.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this signature.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        &self.concepts[id.index()]
    }

    /// Name of an interned role.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this signature.
    pub fn role_name(&self, id: RoleId) -> &str {
        &self.roles[id.index()]
    }

    /// Name of an interned attribute.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this signature.
    pub fn attribute_name(&self, id: AttributeId) -> &str {
        &self.attributes[id.index()]
    }

    /// Number of atomic concepts.
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Number of atomic roles.
    pub fn num_roles(&self) -> usize {
        self.roles.len()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Iterates over all concept ids, in interning order.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// Iterates over all role ids, in interning order.
    pub fn roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        (0..self.roles.len() as u32).map(RoleId)
    }

    /// Iterates over all attribute ids, in interning order.
    pub fn attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        (0..self.attributes.len() as u32).map(AttributeId)
    }

    /// Merges `other` into `self`, returning the remapping of `other`'s ids
    /// into `self`'s id space (used when combining independently built
    /// ontology modules).
    pub fn merge(&mut self, other: &Signature) -> SignatureMapping {
        let concepts = other.concepts.iter().map(|n| self.concept(n)).collect();
        let roles = other.roles.iter().map(|n| self.role(n)).collect();
        let attributes = other.attributes.iter().map(|n| self.attribute(n)).collect();
        SignatureMapping {
            concepts,
            roles,
            attributes,
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "signature({} concepts, {} roles, {} attributes)",
            self.num_concepts(),
            self.num_roles(),
            self.num_attributes()
        )
    }
}

/// Result of [`Signature::merge`]: maps the ids of the merged-in signature
/// to ids of the receiving signature.
#[derive(Debug, Clone)]
pub struct SignatureMapping {
    concepts: Vec<ConceptId>,
    roles: Vec<RoleId>,
    attributes: Vec<AttributeId>,
}

impl SignatureMapping {
    /// Remaps a concept id of the source signature.
    pub fn concept(&self, id: ConceptId) -> ConceptId {
        self.concepts[id.index()]
    }

    /// Remaps a role id of the source signature.
    pub fn role(&self, id: RoleId) -> RoleId {
        self.roles[id.index()]
    }

    /// Remaps an attribute id of the source signature.
    pub fn attribute(&self, id: AttributeId) -> AttributeId {
        self.attributes[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut sig = Signature::new();
        let a = sig.concept("A");
        let b = sig.concept("B");
        assert_ne!(a, b);
        assert_eq!(sig.concept("A"), a);
        assert_eq!(sig.num_concepts(), 2);
    }

    #[test]
    fn sorts_are_independent_namespaces() {
        let mut sig = Signature::new();
        let c = sig.concept("part");
        let r = sig.role("part");
        let u = sig.attribute("part");
        assert_eq!(sig.concept_name(c), "part");
        assert_eq!(sig.role_name(r), "part");
        assert_eq!(sig.attribute_name(u), "part");
        assert_eq!(sig.num_concepts(), 1);
        assert_eq!(sig.num_roles(), 1);
        assert_eq!(sig.num_attributes(), 1);
    }

    #[test]
    fn find_does_not_intern() {
        let mut sig = Signature::new();
        assert!(sig.find_concept("A").is_none());
        let a = sig.concept("A");
        assert_eq!(sig.find_concept("A"), Some(a));
        assert_eq!(sig.num_concepts(), 1);
    }

    #[test]
    fn merge_remaps_ids() {
        let mut s1 = Signature::new();
        s1.concept("A");
        let mut s2 = Signature::new();
        let b2 = s2.concept("B");
        let a2 = s2.concept("A");
        let map = s1.merge(&s2);
        assert_eq!(s1.num_concepts(), 2);
        assert_eq!(s1.concept_name(map.concept(b2)), "B");
        assert_eq!(s1.concept_name(map.concept(a2)), "A");
    }

    #[test]
    fn iterators_cover_all_ids() {
        let mut sig = Signature::new();
        sig.concept("A");
        sig.concept("B");
        sig.role("p");
        let cs: Vec<_> = sig.concepts().collect();
        assert_eq!(cs.len(), 2);
        let rs: Vec<_> = sig.roles().collect();
        assert_eq!(rs.len(), 1);
        assert_eq!(sig.attributes().count(), 0);
    }
}
