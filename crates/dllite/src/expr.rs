//! Concept and role expressions of DL-Lite_R (with qualified existentials
//! and DL-Lite_A attributes).
//!
//! The grammar follows Section 4 of the paper:
//!
//! ```text
//! B ::= A | ∃Q | δ(U)          (basic concepts)
//! Q ::= P | P⁻                 (basic roles)
//! C ::= B | ¬B | ∃Q.A          (general concepts)
//! R ::= Q | ¬Q                 (general roles)
//! ```
//!
//! where `A` is an atomic concept, `P` an atomic role and `U` an attribute.
//! `δ(U)` is the *attribute domain* of DL-Lite_A, i.e. the set of objects
//! that have some value for `U`.

use crate::signature::{AttributeId, ConceptId, RoleId};

/// A basic role `Q ::= P | P⁻`: an atomic role or the inverse of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicRole {
    /// The atomic role `P` itself.
    Direct(RoleId),
    /// The inverse `P⁻` of the atomic role `P`.
    Inverse(RoleId),
}

impl BasicRole {
    /// The underlying atomic role.
    #[inline]
    pub fn role(self) -> RoleId {
        match self {
            BasicRole::Direct(p) | BasicRole::Inverse(p) => p,
        }
    }

    /// Whether this is the inverse form `P⁻`.
    #[inline]
    pub fn is_inverse(self) -> bool {
        matches!(self, BasicRole::Inverse(_))
    }

    /// The inverse of this basic role (`P ↦ P⁻`, `P⁻ ↦ P`).
    #[inline]
    pub fn inverse(self) -> BasicRole {
        match self {
            BasicRole::Direct(p) => BasicRole::Inverse(p),
            BasicRole::Inverse(p) => BasicRole::Direct(p),
        }
    }

    /// The unqualified existential restriction `∃Q` over this role.
    #[inline]
    pub fn exists(self) -> BasicConcept {
        BasicConcept::Exists(self)
    }
}

/// A basic concept `B ::= A | ∃Q | δ(U)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicConcept {
    /// An atomic concept `A`.
    Atomic(ConceptId),
    /// The unqualified existential restriction `∃Q` (domain of `Q`).
    Exists(BasicRole),
    /// The attribute domain `δ(U)`.
    AttrDomain(AttributeId),
}

impl BasicConcept {
    /// Convenience constructor for `∃P`.
    pub fn exists(p: RoleId) -> Self {
        BasicConcept::Exists(BasicRole::Direct(p))
    }

    /// Convenience constructor for `∃P⁻`.
    pub fn exists_inv(p: RoleId) -> Self {
        BasicConcept::Exists(BasicRole::Inverse(p))
    }

    /// Whether this is an atomic concept.
    pub fn is_atomic(self) -> bool {
        matches!(self, BasicConcept::Atomic(_))
    }
}

impl From<ConceptId> for BasicConcept {
    fn from(a: ConceptId) -> Self {
        BasicConcept::Atomic(a)
    }
}

impl From<BasicRole> for BasicConcept {
    fn from(q: BasicRole) -> Self {
        BasicConcept::Exists(q)
    }
}

/// A general concept `C ::= B | ¬B | ∃Q.A`, allowed on the right-hand side
/// of concept inclusions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GeneralConcept {
    /// A basic concept.
    Basic(BasicConcept),
    /// Negation of a basic concept (`¬B`), making the inclusion a
    /// *negative inclusion* (disjointness).
    Neg(BasicConcept),
    /// A qualified existential restriction `∃Q.A`: the objects related by
    /// `Q` to some instance of the atomic concept `A`.
    QualExists(BasicRole, ConceptId),
}

impl GeneralConcept {
    /// Whether this right-hand side makes the inclusion positive.
    pub fn is_positive(self) -> bool {
        !matches!(self, GeneralConcept::Neg(_))
    }
}

impl From<BasicConcept> for GeneralConcept {
    fn from(b: BasicConcept) -> Self {
        GeneralConcept::Basic(b)
    }
}

impl From<ConceptId> for GeneralConcept {
    fn from(a: ConceptId) -> Self {
        GeneralConcept::Basic(BasicConcept::Atomic(a))
    }
}

/// A general role `R ::= Q | ¬Q`, allowed on the right-hand side of role
/// inclusions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GeneralRole {
    /// A basic role.
    Basic(BasicRole),
    /// Negation of a basic role (`¬Q`), making the inclusion a role
    /// disjointness.
    Neg(BasicRole),
}

impl GeneralRole {
    /// Whether this right-hand side makes the inclusion positive.
    pub fn is_positive(self) -> bool {
        matches!(self, GeneralRole::Basic(_))
    }
}

impl From<BasicRole> for GeneralRole {
    fn from(q: BasicRole) -> Self {
        GeneralRole::Basic(q)
    }
}

/// A *named* predicate of the signature: the subjects of ontology
/// classification (Section 5 of the paper: "computing all subsumption
/// relationships inferred in an ontology between concept and property
/// (i.e., role and attribute) names").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NamedPredicate {
    /// An atomic concept.
    Concept(ConceptId),
    /// An atomic role.
    Role(RoleId),
    /// An attribute.
    Attribute(AttributeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involutive() {
        let q = BasicRole::Direct(RoleId(3));
        assert_eq!(q.inverse().inverse(), q);
        assert!(q.inverse().is_inverse());
        assert_eq!(q.inverse().role(), RoleId(3));
    }

    #[test]
    fn general_concept_polarity() {
        let b = BasicConcept::Atomic(ConceptId(0));
        assert!(GeneralConcept::Basic(b).is_positive());
        assert!(!GeneralConcept::Neg(b).is_positive());
        assert!(
            GeneralConcept::QualExists(BasicRole::Direct(RoleId(0)), ConceptId(1)).is_positive()
        );
    }

    #[test]
    fn conversions_build_expected_shapes() {
        let a: GeneralConcept = ConceptId(7).into();
        assert_eq!(a, GeneralConcept::Basic(BasicConcept::Atomic(ConceptId(7))));
        let e: BasicConcept = BasicRole::Inverse(RoleId(2)).into();
        assert_eq!(e, BasicConcept::exists_inv(RoleId(2)));
    }
}
