//! Finite interpretations and model checking.
//!
//! DL-Lite has the finite-model property for the reasoning tasks we care
//! about only in restricted senses, so this module is *not* a decision
//! procedure. Its job is narrower and fully sound: given an explicit finite
//! interpretation, decide whether it satisfies concepts, axioms, TBoxes and
//! ABoxes. The reasoning crates use it in property tests: any axiom derived
//! by a reasoner must hold in every (randomly generated) model of the input
//! TBox — a soundness oracle that is independent of all reasoner code.

use std::collections::HashSet;

use crate::abox::{Abox, Assertion};
use crate::axiom::Axiom;
use crate::expr::{BasicConcept, BasicRole, GeneralConcept, GeneralRole};
use crate::signature::{AttributeId, ConceptId, RoleId};
use crate::tbox::Tbox;

/// A finite interpretation over the domain `{0, …, domain_size - 1}`.
///
/// Concept extensions are sets of domain elements; role extensions are sets
/// of ordered pairs; attribute extensions are sets of (element, value-id)
/// pairs where value ids are opaque `usize`s (the concrete values are
/// irrelevant to TBox satisfaction).
#[derive(Debug, Clone)]
pub struct Interpretation {
    domain_size: usize,
    concepts: Vec<HashSet<usize>>,
    roles: Vec<HashSet<(usize, usize)>>,
    attributes: Vec<HashSet<(usize, usize)>>,
}

impl Interpretation {
    /// Creates an interpretation with all extensions empty.
    ///
    /// `num_concepts`, `num_roles` and `num_attributes` must cover the ids
    /// used later (typically the sizes of the TBox signature).
    pub fn new(
        domain_size: usize,
        num_concepts: usize,
        num_roles: usize,
        num_attributes: usize,
    ) -> Self {
        Interpretation {
            domain_size,
            concepts: vec![HashSet::new(); num_concepts],
            roles: vec![HashSet::new(); num_roles],
            attributes: vec![HashSet::new(); num_attributes],
        }
    }

    /// Creates an empty interpretation sized for the signature of `t`.
    pub fn for_tbox(t: &Tbox, domain_size: usize) -> Self {
        Self::new(
            domain_size,
            t.sig.num_concepts(),
            t.sig.num_roles(),
            t.sig.num_attributes(),
        )
    }

    /// The domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Adds `e ∈ Aᴵ`.
    ///
    /// # Panics
    /// Panics if `e` is outside the domain.
    pub fn add_concept(&mut self, a: ConceptId, e: usize) {
        assert!(e < self.domain_size, "element outside domain");
        self.concepts[a.index()].insert(e);
    }

    /// Adds `(s, o) ∈ Pᴵ`.
    ///
    /// # Panics
    /// Panics if `s` or `o` is outside the domain.
    pub fn add_role(&mut self, p: RoleId, s: usize, o: usize) {
        assert!(
            s < self.domain_size && o < self.domain_size,
            "element outside domain"
        );
        self.roles[p.index()].insert((s, o));
    }

    /// Adds `(s, v) ∈ Uᴵ` where `v` is an opaque value id.
    ///
    /// # Panics
    /// Panics if `s` is outside the domain.
    pub fn add_attribute(&mut self, u: AttributeId, s: usize, v: usize) {
        assert!(s < self.domain_size, "element outside domain");
        self.attributes[u.index()].insert((s, v));
    }

    /// Whether `e ∈ Bᴵ`.
    pub fn holds_basic(&self, b: BasicConcept, e: usize) -> bool {
        match b {
            BasicConcept::Atomic(a) => self.concepts[a.index()].contains(&e),
            BasicConcept::Exists(q) => self.role_pairs(q).any(|(s, _)| s == e),
            BasicConcept::AttrDomain(u) => self.attributes[u.index()].iter().any(|&(s, _)| s == e),
        }
    }

    /// Whether `e ∈ Cᴵ` for a general concept.
    pub fn holds_general(&self, c: GeneralConcept, e: usize) -> bool {
        match c {
            GeneralConcept::Basic(b) => self.holds_basic(b, e),
            GeneralConcept::Neg(b) => !self.holds_basic(b, e),
            GeneralConcept::QualExists(q, a) => self
                .role_pairs(q)
                .any(|(s, o)| s == e && self.concepts[a.index()].contains(&o)),
        }
    }

    /// Iterates over `Qᴵ` (with inversion applied for `P⁻`).
    pub fn role_pairs(&self, q: BasicRole) -> impl Iterator<Item = (usize, usize)> + '_ {
        let inv = q.is_inverse();
        self.roles[q.role().index()]
            .iter()
            .map(move |&(s, o)| if inv { (o, s) } else { (s, o) })
    }

    /// Whether the interpretation satisfies a single TBox axiom.
    pub fn satisfies(&self, ax: &Axiom) -> bool {
        match *ax {
            Axiom::ConceptIncl(lhs, rhs) => (0..self.domain_size)
                .all(|e| !self.holds_basic(lhs, e) || self.holds_general(rhs, e)),
            Axiom::RoleIncl(lhs, rhs) => {
                let rhs_holds = |pair: (usize, usize)| match rhs {
                    GeneralRole::Basic(q2) => self.role_pairs(q2).any(|p| p == pair),
                    GeneralRole::Neg(q2) => !self.role_pairs(q2).any(|p| p == pair),
                };
                self.role_pairs(lhs).all(rhs_holds)
            }
            Axiom::AttrIncl(u1, u2) => self.attributes[u1.index()]
                .iter()
                .all(|p| self.attributes[u2.index()].contains(p)),
            Axiom::AttrNegIncl(u1, u2) => self.attributes[u1.index()]
                .iter()
                .all(|p| !self.attributes[u2.index()].contains(p)),
        }
    }

    /// Whether the interpretation is a model of the whole TBox.
    pub fn is_model_of(&self, t: &Tbox) -> bool {
        t.axioms().iter().all(|ax| self.satisfies(ax))
    }

    /// Whether the interpretation satisfies an ABox under the mapping
    /// `ind_map: IndividualId index → domain element` and
    /// `val_map: assertion index → value id` (values are matched purely by
    /// identity of the [`crate::Value`], so equal values must map to equal
    /// ids; the helper [`Interpretation::satisfies_abox_canonical`] handles
    /// the common case).
    pub fn satisfies_abox(&self, abox: &Abox, ind_map: &[usize]) -> bool {
        // Values get ids by first occurrence among the ABox's assertions.
        // Linear scan is fine: test ABoxes are small.
        let mut vals: Vec<&crate::Value> = Vec::new();
        for a in abox.assertions() {
            let ok = match a {
                Assertion::Concept(c, i) => self.concepts[c.index()].contains(&ind_map[i.index()]),
                Assertion::Role(p, s, o) => {
                    self.roles[p.index()].contains(&(ind_map[s.index()], ind_map[o.index()]))
                }
                Assertion::Attribute(u, s, v) => {
                    let vid = match vals.iter().position(|w| *w == v) {
                        Some(i) => i,
                        None => {
                            vals.push(v);
                            vals.len() - 1
                        }
                    };
                    self.attributes[u.index()].contains(&(ind_map[s.index()], vid))
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Satisfies the ABox under the *canonical* embedding: individual `i`
    /// maps to domain element `i`. Requires `domain_size >= num_individuals`.
    pub fn satisfies_abox_canonical(&self, abox: &Abox) -> bool {
        let ind_map: Vec<usize> = (0..abox.num_individuals()).collect();
        self.satisfies_abox(abox, &ind_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::Axiom;

    fn small_tbox() -> (Tbox, ConceptId, ConceptId, RoleId) {
        let mut t = Tbox::new();
        let a = t.sig.concept("A");
        let b = t.sig.concept("B");
        let p = t.sig.role("p");
        t.add(Axiom::concept(a, BasicConcept::exists(p)));
        t.add(Axiom::concept(BasicConcept::exists_inv(p), b));
        (t, a, b, p)
    }

    #[test]
    fn model_checking_positive_chain() {
        let (t, a, b, p) = small_tbox();
        let mut i = Interpretation::for_tbox(&t, 2);
        i.add_concept(a, 0);
        i.add_role(p, 0, 1);
        i.add_concept(b, 1);
        assert!(i.is_model_of(&t));
        // Remove B(1): ∃p⁻ ⊑ B is now violated.
        let mut j = Interpretation::for_tbox(&t, 2);
        j.add_concept(a, 0);
        j.add_role(p, 0, 1);
        assert!(!j.is_model_of(&t));
    }

    #[test]
    fn qualified_existential_needs_witness_of_right_type() {
        let mut t = Tbox::new();
        let a = t.sig.concept("A");
        let b = t.sig.concept("B");
        let p = t.sig.role("p");
        t.add(Axiom::qual_exists(a, BasicRole::Direct(p), b));
        let mut i = Interpretation::for_tbox(&t, 2);
        i.add_concept(a, 0);
        i.add_role(p, 0, 1);
        // Witness 1 is not in B: axiom violated.
        assert!(!i.is_model_of(&t));
        i.add_concept(b, 1);
        assert!(i.is_model_of(&t));
    }

    #[test]
    fn negative_inclusion_checks_disjointness() {
        let mut t = Tbox::new();
        let a = t.sig.concept("A");
        let b = t.sig.concept("B");
        t.add(Axiom::concept_neg(a, b));
        let mut i = Interpretation::for_tbox(&t, 1);
        i.add_concept(a, 0);
        assert!(i.is_model_of(&t));
        i.add_concept(b, 0);
        assert!(!i.is_model_of(&t));
    }

    #[test]
    fn role_inclusion_and_inverse_semantics() {
        let mut t = Tbox::new();
        let p = t.sig.role("p");
        let r = t.sig.role("r");
        t.add(Axiom::role(BasicRole::Direct(p), BasicRole::Inverse(r)));
        let mut i = Interpretation::for_tbox(&t, 2);
        i.add_role(p, 0, 1);
        assert!(!i.is_model_of(&t));
        i.add_role(r, 1, 0); // (0,1) ∈ r⁻
        assert!(i.is_model_of(&t));
    }

    #[test]
    fn abox_canonical_embedding() {
        let mut t = Tbox::new();
        let a = t.sig.concept("A");
        let mut ab = Abox::new();
        ab.assert_concept(a, "x");
        let mut i = Interpretation::for_tbox(&t, 1);
        assert!(!i.satisfies_abox_canonical(&ab));
        i.add_concept(a, 0);
        assert!(i.satisfies_abox_canonical(&ab));
    }

    #[test]
    fn attribute_axioms() {
        let mut t = Tbox::new();
        let u = t.sig.attribute("u");
        let w = t.sig.attribute("w");
        let a = t.sig.concept("A");
        t.add(Axiom::AttrIncl(u, w));
        t.add(Axiom::concept(BasicConcept::AttrDomain(w), a));
        let mut i = Interpretation::for_tbox(&t, 1);
        i.add_attribute(u, 0, 0);
        assert!(!i.satisfies(&t.axioms()[0]));
        i.add_attribute(w, 0, 0);
        assert!(i.satisfies(&t.axioms()[0]));
        assert!(!i.satisfies(&t.axioms()[1]));
        i.add_concept(a, 0);
        assert!(i.is_model_of(&t));
    }
}
