//! ABox assertions: extensional knowledge about individuals.
//!
//! In OBDA the ABox is *virtual* — it is induced by the mappings and the
//! source database (crates `obda-mapping` / `obda-sqlstore`). A concrete
//! [`Abox`] is still needed as the materialization target, as the input of
//! ABox-mode query answering, and for tests.

use std::collections::HashMap;
use std::fmt;

use crate::signature::{AttributeId, ConceptId, RoleId};

/// Identifier of an individual constant within an [`Abox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndividualId(pub u32);

impl IndividualId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data value (the range of attributes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value.
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

/// A membership assertion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Assertion {
    /// `A(c)`: the individual `c` is an instance of the atomic concept `A`.
    Concept(ConceptId, IndividualId),
    /// `P(c, d)`: the pair `(c, d)` is an instance of the atomic role `P`.
    Role(RoleId, IndividualId, IndividualId),
    /// `U(c, v)`: the individual `c` has value `v` for the attribute `U`.
    Attribute(AttributeId, IndividualId, Value),
}

/// A set of membership assertions over interned individuals.
#[derive(Debug, Clone, Default)]
pub struct Abox {
    individuals: Vec<String>,
    individual_ids: HashMap<String, IndividualId>,
    assertions: Vec<Assertion>,
    /// Assertion → its position in `assertions`, for O(1) dedup and
    /// removal (the write path deletes facts one batch at a time and
    /// must not pay a store scan per fact).
    seen: HashMap<Assertion, usize>,
}

impl Abox {
    /// Creates an empty ABox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an individual constant by name.
    pub fn individual(&mut self, name: &str) -> IndividualId {
        if let Some(&id) = self.individual_ids.get(name) {
            return id;
        }
        let id = IndividualId(self.individuals.len() as u32);
        self.individuals.push(name.to_owned());
        self.individual_ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an individual by name without interning.
    pub fn find_individual(&self, name: &str) -> Option<IndividualId> {
        self.individual_ids.get(name).copied()
    }

    /// Name of an interned individual.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this ABox.
    pub fn individual_name(&self, id: IndividualId) -> &str {
        &self.individuals[id.index()]
    }

    /// Number of interned individuals.
    pub fn num_individuals(&self) -> usize {
        self.individuals.len()
    }

    /// Adds an assertion, ignoring duplicates. Returns `true` if new.
    pub fn add(&mut self, a: Assertion) -> bool {
        if self.seen.contains_key(&a) {
            return false;
        }
        self.seen.insert(a.clone(), self.assertions.len());
        self.assertions.push(a);
        true
    }

    /// Removes an assertion in O(1). Returns `true` if it was present.
    ///
    /// The individual stays interned — ids handed out earlier remain
    /// valid, and re-adding the same fact later reuses them. Assertion
    /// *order* is not preserved (`swap_remove`); nothing downstream
    /// depends on it — indexes hash by predicate and every answering
    /// path lands results in sorted sets.
    pub fn remove(&mut self, a: &Assertion) -> bool {
        let Some(pos) = self.seen.remove(a) else {
            return false;
        };
        self.assertions.swap_remove(pos);
        if let Some(moved) = self.assertions.get(pos) {
            *self
                .seen
                .get_mut(moved)
                .expect("moved assertion is interned") = pos;
        }
        true
    }

    /// Removes a batch of assertions, returning the ones that were
    /// actually present (duplicates in `batch` count once).
    pub fn remove_batch(&mut self, batch: &[Assertion]) -> Vec<Assertion> {
        let mut removed = Vec::new();
        for a in batch {
            if self.remove(a) {
                removed.push(a.clone());
            }
        }
        removed
    }

    /// Convenience: add `A(c)` by names... interning both.
    pub fn assert_concept(&mut self, a: ConceptId, ind: &str) {
        let c = self.individual(ind);
        self.add(Assertion::Concept(a, c));
    }

    /// Convenience: add `P(c, d)`, interning both individuals.
    pub fn assert_role(&mut self, p: RoleId, subj: &str, obj: &str) {
        let c = self.individual(subj);
        let d = self.individual(obj);
        self.add(Assertion::Role(p, c, d));
    }

    /// Convenience: add `U(c, v)`, interning the individual.
    pub fn assert_attribute(&mut self, u: AttributeId, subj: &str, v: Value) {
        let c = self.individual(subj);
        self.add(Assertion::Attribute(u, c, v));
    }

    /// All assertions. Insertion order until the first [`Abox::remove`];
    /// unspecified (but deterministic per operation sequence) after.
    pub fn assertions(&self) -> &[Assertion] {
        &self.assertions
    }

    /// Whether the ABox contains exactly this assertion.
    pub fn contains(&self, a: &Assertion) -> bool {
        self.seen.contains_key(a)
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// Whether the ABox has no assertions.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Iterates over the instances of concept `a`.
    pub fn concept_instances(&self, a: ConceptId) -> impl Iterator<Item = IndividualId> + '_ {
        self.assertions.iter().filter_map(move |x| match x {
            Assertion::Concept(c, i) if *c == a => Some(*i),
            _ => None,
        })
    }

    /// Iterates over the instance pairs of role `p`.
    pub fn role_instances(
        &self,
        p: RoleId,
    ) -> impl Iterator<Item = (IndividualId, IndividualId)> + '_ {
        self.assertions.iter().filter_map(move |x| match x {
            Assertion::Role(r, s, o) if *r == p => Some((*s, *o)),
            _ => None,
        })
    }

    /// Iterates over the instance pairs of attribute `u`.
    pub fn attribute_instances(
        &self,
        u: AttributeId,
    ) -> impl Iterator<Item = (IndividualId, &Value)> + '_ {
        self.assertions.iter().filter_map(move |x| match x {
            Assertion::Attribute(a, s, v) if *a == u => Some((*s, v)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_and_duplicates() {
        let mut ab = Abox::new();
        let a = ConceptId(0);
        ab.assert_concept(a, "rome");
        ab.assert_concept(a, "rome");
        assert_eq!(ab.len(), 1);
        assert_eq!(ab.num_individuals(), 1);
        assert_eq!(
            ab.individual_name(ab.find_individual("rome").unwrap()),
            "rome"
        );
    }

    #[test]
    fn remove_and_remove_batch() {
        let mut ab = Abox::new();
        let a = ConceptId(0);
        let p = RoleId(0);
        ab.assert_concept(a, "x");
        ab.assert_role(p, "x", "y");
        ab.assert_concept(a, "y");
        let x = ab.find_individual("x").unwrap();
        let y = ab.find_individual("y").unwrap();

        assert!(ab.remove(&Assertion::Concept(a, x)));
        assert!(!ab.remove(&Assertion::Concept(a, x)), "already gone");
        assert!(!ab.contains(&Assertion::Concept(a, x)));
        assert_eq!(ab.len(), 2);
        // Individuals stay interned after their last assertion goes.
        assert_eq!(ab.find_individual("x"), Some(x));

        let removed = ab.remove_batch(&[
            Assertion::Role(p, x, y),
            Assertion::Role(p, x, y), // duplicate in the batch
            Assertion::Concept(a, x), // not present
        ]);
        assert_eq!(removed, vec![Assertion::Role(p, x, y)]);
        assert_eq!(ab.len(), 1);
        assert!(ab.contains(&Assertion::Concept(a, y)));

        // Re-adding a removed fact works and reuses the interned id.
        assert!(ab.add(Assertion::Concept(a, x)));
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn typed_instance_iterators() {
        let mut ab = Abox::new();
        let a = ConceptId(0);
        let b = ConceptId(1);
        let p = RoleId(0);
        let u = AttributeId(0);
        ab.assert_concept(a, "x");
        ab.assert_concept(b, "y");
        ab.assert_role(p, "x", "y");
        ab.assert_attribute(u, "x", Value::Int(42));
        assert_eq!(ab.concept_instances(a).count(), 1);
        assert_eq!(ab.concept_instances(b).count(), 1);
        let pairs: Vec<_> = ab.role_instances(p).collect();
        assert_eq!(pairs.len(), 1);
        assert_ne!(pairs[0].0, pairs[0].1);
        let attrs: Vec<_> = ab.attribute_instances(u).collect();
        assert_eq!(attrs[0].1, &Value::Int(42));
    }
}
