//! The **university OBDA scenario**: a LUBM-flavoured ontology, a
//! relational schema with a realistic impedance mismatch, a seeded data
//! generator, GAV mappings and a benchmark query mix.
//!
//! This is the stand-in for the paper's industrial OBDA deployments
//! (Ministry of Economy and Finance, Monte dei Paschi, Telecom Italia —
//! all proprietary): it exercises the same code paths — mapping
//! unfolding, virtual-ABox materialization, query rewriting over a
//! mandatory-participation-rich TBox — at a configurable scale.
//!
//! The crate stays dependency-light: tables, mappings and queries are
//! plain data ([`TableData`], [`MappingSpec`], [`QuerySpec`]); the
//! `mastro` facade wires them into its engine (`mastro::demo`).

use obda_dllite::{Axiom, BasicConcept, BasicRole, Tbox};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A literal cell of generated source data.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// SQL INTEGER.
    Int(i64),
    /// SQL TEXT.
    Text(String),
}

/// A generated source table: name, column names, rows.
#[derive(Debug, Clone)]
pub struct TableData {
    /// Table name.
    pub name: String,
    /// Column names, in row order.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

/// IRI template `prefix{var}`: the IRI is the prefix concatenated with
/// the value of the named SQL answer variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Constant prefix, e.g. `person/`.
    pub prefix: String,
    /// SQL answer-column name supplying the suffix.
    pub var: String,
}

/// The head atom of a mapping assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeadAtom {
    /// `Concept(template)`.
    Concept {
        /// Concept name in the ontology signature.
        name: String,
        /// Subject IRI template.
        subject: Template,
    },
    /// `Role(template, template)`.
    Role {
        /// Role name in the ontology signature.
        name: String,
        /// Subject IRI template.
        subject: Template,
        /// Object IRI template.
        object: Template,
    },
    /// `Attribute(template, value)` where the value is taken verbatim
    /// from an SQL answer column.
    Attribute {
        /// Attribute name in the ontology signature.
        name: String,
        /// Subject IRI template.
        subject: Template,
        /// SQL answer-column name supplying the value.
        value_var: String,
    },
}

/// A GAV mapping assertion: an SQL query over the sources and the
/// ontology atoms its answers populate.
#[derive(Debug, Clone)]
pub struct MappingSpec {
    /// Source query in the `obda-sqlstore` SQL subset.
    pub sql: String,
    /// Head atoms instantiated per answer row.
    pub head: Vec<HeadAtom>,
}

/// A named benchmark query in `mastro`'s conjunctive-query syntax.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Short identifier (`q1`…).
    pub name: String,
    /// Query text.
    pub text: String,
}

/// The full scenario bundle.
#[derive(Debug, Clone)]
pub struct UniversityScenario {
    /// The DL-Lite TBox.
    pub tbox: Tbox,
    /// Generated source tables.
    pub tables: Vec<TableData>,
    /// Mapping assertions.
    pub mappings: Vec<MappingSpec>,
    /// Benchmark queries.
    pub queries: Vec<QuerySpec>,
}

/// Builds the university TBox (independent of scale).
pub fn university_tbox() -> Tbox {
    let mut t = Tbox::new();
    let person = t.sig.concept("Person");
    let student = t.sig.concept("Student");
    let grad = t.sig.concept("GradStudent");
    let undergrad = t.sig.concept("UndergradStudent");
    let prof = t.sig.concept("Professor");
    let aprof = t.sig.concept("AssistantProfessor");
    let fprof = t.sig.concept("FullProfessor");
    let course = t.sig.concept("Course");
    let gcourse = t.sig.concept("GradCourse");
    let dept = t.sig.concept("Department");
    let univ = t.sig.concept("University");

    let teacher_of = t.sig.role("teacherOf");
    let takes = t.sig.role("takesCourse");
    let advisor = t.sig.role("advisor"); // student → professor
    let works_for = t.sig.role("worksFor");
    let member_of = t.sig.role("memberOf");
    let sub_org = t.sig.role("subOrganizationOf");

    let name = t.sig.attribute("personName");
    let title = t.sig.attribute("courseTitle");

    use BasicRole::Direct;
    // Taxonomy.
    t.add(Axiom::concept(student, person));
    t.add(Axiom::concept(grad, student));
    t.add(Axiom::concept(undergrad, student));
    t.add(Axiom::concept(prof, person));
    t.add(Axiom::concept(aprof, prof));
    t.add(Axiom::concept(fprof, prof));
    t.add(Axiom::concept(gcourse, course));
    t.add(Axiom::concept_neg(prof, student));
    t.add(Axiom::concept_neg(course, person));
    t.add(Axiom::concept_neg(undergrad, grad));
    // Role typing (domains and ranges).
    t.add(Axiom::concept(BasicConcept::exists(teacher_of), prof));
    t.add(Axiom::concept(BasicConcept::exists_inv(teacher_of), course));
    t.add(Axiom::concept(BasicConcept::exists(takes), student));
    t.add(Axiom::concept(BasicConcept::exists_inv(takes), course));
    t.add(Axiom::concept(BasicConcept::exists(advisor), student));
    t.add(Axiom::concept(BasicConcept::exists_inv(advisor), prof));
    t.add(Axiom::concept(BasicConcept::exists(works_for), person));
    t.add(Axiom::concept(BasicConcept::exists_inv(works_for), dept));
    t.add(Axiom::concept(BasicConcept::exists(member_of), person));
    t.add(Axiom::concept(BasicConcept::exists(sub_org), dept));
    t.add(Axiom::concept(BasicConcept::exists_inv(sub_org), univ));
    // Role hierarchy.
    t.add(Axiom::role(Direct(works_for), Direct(member_of)));
    // Mandatory participation (drives PerfectRef expansion).
    t.add(Axiom::concept(student, BasicConcept::exists(takes)));
    t.add(Axiom::qual_exists(grad, Direct(advisor), prof));
    t.add(Axiom::concept(prof, BasicConcept::exists(works_for)));
    t.add(Axiom::qual_exists(dept, Direct(sub_org), univ));
    t.add(Axiom::concept(prof, BasicConcept::exists(teacher_of)));
    // Attributes.
    t.add(Axiom::concept(BasicConcept::AttrDomain(name), person));
    t.add(Axiom::concept(BasicConcept::AttrDomain(title), course));
    t
}

/// Generates the scenario at the given scale (`scale = 1` ≈ 40 persons,
/// 12 courses, 4 departments; everything grows linearly).
pub fn university_scenario(scale: usize, seed: u64) -> UniversityScenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_person = 40 * scale;
    let n_course = 12 * scale;
    let n_dept = (4 * scale).max(1);

    // TB_PERSON(id, name, ptype): 1 undergrad, 2 grad, 3 assistant, 4 full.
    let mut person_rows = Vec::with_capacity(n_person);
    let mut students = Vec::new();
    let mut profs = Vec::new();
    for id in 0..n_person as i64 {
        let ptype = match rng.gen_range(0..10) {
            0..=4 => 1, // undergrads are half the population
            5..=7 => 2,
            8 => 3,
            _ => 4,
        };
        if ptype <= 2 {
            students.push(id);
        } else {
            profs.push(id);
        }
        person_rows.push(vec![
            Cell::Int(id),
            Cell::Text(format!("person-{id}")),
            Cell::Int(ptype),
        ]);
    }
    // TB_COURSE(cid, title, level): 0 undergrad, 1 grad.
    let course_rows: Vec<Vec<Cell>> = (0..n_course as i64)
        .map(|cid| {
            vec![
                Cell::Int(cid),
                Cell::Text(format!("course-{cid}")),
                Cell::Int(if rng.gen_bool(0.4) { 1 } else { 0 }),
            ]
        })
        .collect();
    // TB_ENROLL(sid, cid): 1–4 courses per student.
    let mut enroll_rows = Vec::new();
    for &sid in &students {
        let k = rng.gen_range(1..=4usize).min(n_course);
        for _ in 0..k {
            enroll_rows.push(vec![
                Cell::Int(sid),
                Cell::Int(rng.gen_range(0..n_course as i64)),
            ]);
        }
    }
    // TB_TEACH(pid, cid): each professor teaches 1–3 courses.
    let mut teach_rows = Vec::new();
    for &pid in &profs {
        let k = rng.gen_range(1..=3usize).min(n_course);
        for _ in 0..k {
            teach_rows.push(vec![
                Cell::Int(pid),
                Cell::Int(rng.gen_range(0..n_course as i64)),
            ]);
        }
    }
    // TB_ADVISE(sid, pid): grad students get an advisor.
    let mut advise_rows = Vec::new();
    if !profs.is_empty() {
        for row in &person_rows {
            if let (Cell::Int(id), Cell::Int(2)) = (&row[0], &row[2]) {
                advise_rows.push(vec![
                    Cell::Int(*id),
                    Cell::Int(profs[rng.gen_range(0..profs.len())]),
                ]);
            }
        }
    }
    // TB_DEPT(did, dname) and TB_EMPLOY(pid, did).
    let dept_rows: Vec<Vec<Cell>> = (0..n_dept as i64)
        .map(|did| vec![Cell::Int(did), Cell::Text(format!("dept-{did}"))])
        .collect();
    let employ_rows: Vec<Vec<Cell>> = profs
        .iter()
        .map(|&pid| vec![Cell::Int(pid), Cell::Int(rng.gen_range(0..n_dept as i64))])
        .collect();

    let tables = vec![
        TableData {
            name: "TB_PERSON".into(),
            columns: vec!["id".into(), "name".into(), "ptype".into()],
            rows: person_rows,
        },
        TableData {
            name: "TB_COURSE".into(),
            columns: vec!["cid".into(), "title".into(), "level".into()],
            rows: course_rows,
        },
        TableData {
            name: "TB_ENROLL".into(),
            columns: vec!["sid".into(), "cid".into()],
            rows: enroll_rows,
        },
        TableData {
            name: "TB_TEACH".into(),
            columns: vec!["pid".into(), "cid".into()],
            rows: teach_rows,
        },
        TableData {
            name: "TB_ADVISE".into(),
            columns: vec!["sid".into(), "pid".into()],
            rows: advise_rows,
        },
        TableData {
            name: "TB_DEPT".into(),
            columns: vec!["did".into(), "dname".into()],
            rows: dept_rows,
        },
        TableData {
            name: "TB_EMPLOY".into(),
            columns: vec!["pid".into(), "did".into()],
            rows: employ_rows,
        },
    ];

    let person_t = |var: &str| Template {
        prefix: "person/".into(),
        var: var.into(),
    };
    let course_t = |var: &str| Template {
        prefix: "course/".into(),
        var: var.into(),
    };
    let dept_t = |var: &str| Template {
        prefix: "dept/".into(),
        var: var.into(),
    };

    let mappings = vec![
        MappingSpec {
            sql: "SELECT id FROM TB_PERSON WHERE ptype = 1".into(),
            head: vec![HeadAtom::Concept {
                name: "UndergradStudent".into(),
                subject: person_t("id"),
            }],
        },
        MappingSpec {
            sql: "SELECT id FROM TB_PERSON WHERE ptype = 2".into(),
            head: vec![HeadAtom::Concept {
                name: "GradStudent".into(),
                subject: person_t("id"),
            }],
        },
        MappingSpec {
            sql: "SELECT id FROM TB_PERSON WHERE ptype = 3".into(),
            head: vec![HeadAtom::Concept {
                name: "AssistantProfessor".into(),
                subject: person_t("id"),
            }],
        },
        MappingSpec {
            sql: "SELECT id FROM TB_PERSON WHERE ptype = 4".into(),
            head: vec![HeadAtom::Concept {
                name: "FullProfessor".into(),
                subject: person_t("id"),
            }],
        },
        MappingSpec {
            sql: "SELECT id, name FROM TB_PERSON".into(),
            head: vec![HeadAtom::Attribute {
                name: "personName".into(),
                subject: person_t("id"),
                value_var: "name".into(),
            }],
        },
        MappingSpec {
            sql: "SELECT cid FROM TB_COURSE WHERE level = 0".into(),
            head: vec![HeadAtom::Concept {
                name: "Course".into(),
                subject: course_t("cid"),
            }],
        },
        MappingSpec {
            sql: "SELECT cid FROM TB_COURSE WHERE level = 1".into(),
            head: vec![HeadAtom::Concept {
                name: "GradCourse".into(),
                subject: course_t("cid"),
            }],
        },
        MappingSpec {
            sql: "SELECT cid, title FROM TB_COURSE".into(),
            head: vec![HeadAtom::Attribute {
                name: "courseTitle".into(),
                subject: course_t("cid"),
                value_var: "title".into(),
            }],
        },
        MappingSpec {
            sql: "SELECT sid, cid FROM TB_ENROLL".into(),
            head: vec![HeadAtom::Role {
                name: "takesCourse".into(),
                subject: person_t("sid"),
                object: course_t("cid"),
            }],
        },
        MappingSpec {
            sql: "SELECT pid, cid FROM TB_TEACH".into(),
            head: vec![HeadAtom::Role {
                name: "teacherOf".into(),
                subject: person_t("pid"),
                object: course_t("cid"),
            }],
        },
        MappingSpec {
            sql: "SELECT sid, pid FROM TB_ADVISE".into(),
            head: vec![HeadAtom::Role {
                name: "advisor".into(),
                subject: person_t("sid"),
                object: person_t("pid"),
            }],
        },
        MappingSpec {
            sql: "SELECT did FROM TB_DEPT".into(),
            head: vec![HeadAtom::Concept {
                name: "Department".into(),
                subject: dept_t("did"),
            }],
        },
        MappingSpec {
            sql: "SELECT pid, did FROM TB_EMPLOY".into(),
            head: vec![HeadAtom::Role {
                name: "worksFor".into(),
                subject: person_t("pid"),
                object: dept_t("did"),
            }],
        },
    ];

    let queries = vec![
        QuerySpec {
            name: "q1".into(),
            text: "q(x) :- Student(x)".into(),
        },
        QuerySpec {
            name: "q2".into(),
            text: "q(x, y) :- Professor(x), teacherOf(x, y), GradCourse(y)".into(),
        },
        QuerySpec {
            name: "q3".into(),
            text: "q(x) :- GradStudent(x), takesCourse(x, y), teacherOf(z, y), FullProfessor(z)"
                .into(),
        },
        QuerySpec {
            name: "q4".into(),
            text: "q(x, y) :- advisor(x, y)".into(),
        },
        QuerySpec {
            name: "q5".into(),
            text: "q(x) :- Person(x), worksFor(x, d), Department(d)".into(),
        },
        QuerySpec {
            name: "q6".into(),
            text: "q(x, n) :- Student(x), personName(x, n)".into(),
        },
    ];

    UniversityScenario {
        tbox: university_tbox(),
        tables,
        mappings,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbox_declares_expected_signature() {
        let t = university_tbox();
        assert_eq!(t.sig.num_concepts(), 11);
        assert_eq!(t.sig.num_roles(), 6);
        assert_eq!(t.sig.num_attributes(), 2);
        assert!(t.len() >= 25);
    }

    #[test]
    fn scenario_scales_linearly() {
        let s1 = university_scenario(1, 42);
        let s2 = university_scenario(2, 42);
        let persons = |s: &UniversityScenario| {
            s.tables
                .iter()
                .find(|t| t.name == "TB_PERSON")
                .unwrap()
                .rows
                .len()
        };
        assert_eq!(persons(&s1), 40);
        assert_eq!(persons(&s2), 80);
        assert_eq!(s1.mappings.len(), 13);
        assert_eq!(s1.queries.len(), 6);
    }

    #[test]
    fn mapping_heads_reference_declared_predicates() {
        let s = university_scenario(1, 1);
        for m in &s.mappings {
            for h in &m.head {
                match h {
                    HeadAtom::Concept { name, .. } => {
                        assert!(s.tbox.sig.find_concept(name).is_some(), "{name}")
                    }
                    HeadAtom::Role { name, .. } => {
                        assert!(s.tbox.sig.find_role(name).is_some(), "{name}")
                    }
                    HeadAtom::Attribute { name, .. } => {
                        assert!(s.tbox.sig.find_attribute(name).is_some(), "{name}")
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = university_scenario(1, 7);
        let b = university_scenario(1, 7);
        assert_eq!(a.tables[2].rows, b.tables[2].rows);
    }
}
