//! Structural analogs of the eleven benchmark ontologies of Figure 1.
//!
//! The real OWL files (Mouse anatomy, Transportation, DOLCE, AEO, the
//! Gene Ontology, EL-Galen, Galen, and four FMA variants) are not
//! available offline, so each preset reproduces the *published scale and
//! shape* of its namesake after OWL 2 QL approximation: class/property
//! counts, hierarchy depth, DAG fan-in, role-hierarchy weight, qualified
//! existential density, disjointness density and (for Galen) cyclic
//! equivalence knots. Classification cost in all competing algorithms is
//! a function of exactly these drivers, so the relative performance
//! picture of Figure 1 is preserved even though the axioms themselves are
//! synthetic. See DESIGN.md ("Reproduction bands & substitutions").

use crate::spec::OntologySpec;

/// All Figure 1 presets, in the paper's row order.
pub fn figure1_presets() -> Vec<OntologySpec> {
    vec![
        mouse(),
        transportation(),
        dolce(),
        aeo(),
        gene(),
        el_galen(),
        galen(),
        fma_1_4(),
        fma_2_0(),
        fma_3_2_1(),
        fma_obo(),
    ]
}

/// Mouse anatomy: ~2.7k classes, a part-of role, moderate existentials.
pub fn mouse() -> OntologySpec {
    OntologySpec {
        name: "Mouse".into(),
        concepts: 2744,
        roles: 3,
        roots: 4,
        max_depth: 11,
        multi_parent: 0.05,
        cycles: 0.0,
        role_inclusions: 2,
        domain_range: 1.0,
        existentials: 800,
        qualified_existentials: 1500,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 101,
    }
}

/// Transportation: small mid-density ontology with disjointness.
pub fn transportation() -> OntologySpec {
    OntologySpec {
        name: "Transportation".into(),
        concepts: 445,
        roles: 89,
        roots: 6,
        max_depth: 9,
        multi_parent: 0.08,
        cycles: 0.0,
        role_inclusions: 40,
        domain_range: 0.6,
        existentials: 150,
        qualified_existentials: 100,
        disjointness: 60,
        unsat_seeds: 0,
        attributes: 4,
        attribute_axioms: 8,
        seed: 102,
    }
}

/// DOLCE: tiny but extremely dense — large role hierarchy relative to its
/// class count, heavy disjointness, deep multi-parent structure.
pub fn dolce() -> OntologySpec {
    OntologySpec {
        name: "DOLCE".into(),
        concepts: 209,
        roles: 317,
        roots: 3,
        max_depth: 12,
        multi_parent: 0.35,
        cycles: 0.02,
        role_inclusions: 500,
        domain_range: 0.9,
        existentials: 150,
        qualified_existentials: 80,
        disjointness: 300,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 103,
    }
}

/// AEO (Athletic Events Ontology): sibling disjointness everywhere.
pub fn aeo() -> OntologySpec {
    OntologySpec {
        name: "AEO".into(),
        concepts: 760,
        roles: 47,
        roots: 8,
        max_depth: 10,
        multi_parent: 0.05,
        cycles: 0.0,
        role_inclusions: 20,
        domain_range: 0.7,
        existentials: 200,
        qualified_existentials: 150,
        disjointness: 1200,
        unsat_seeds: 2,
        attributes: 6,
        attribute_axioms: 12,
        seed: 104,
    }
}

/// Gene Ontology: ~26k classes, very few roles, deep DAG with strong
/// multi-parenthood and massive part-of/regulates existential usage.
pub fn gene() -> OntologySpec {
    OntologySpec {
        name: "Gene".into(),
        concepts: 26225,
        roles: 5,
        roots: 3,
        max_depth: 15,
        multi_parent: 0.25,
        cycles: 0.0,
        role_inclusions: 3,
        domain_range: 1.0,
        existentials: 4000,
        qualified_existentials: 6000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 105,
    }
}

/// EL-Galen: the EL fragment of Galen — ~23k classes, ~950 roles, heavy
/// qualified existentials, acyclic.
pub fn el_galen() -> OntologySpec {
    OntologySpec {
        name: "EL-Galen".into(),
        concepts: 23136,
        roles: 950,
        roots: 10,
        max_depth: 14,
        multi_parent: 0.2,
        cycles: 0.0,
        role_inclusions: 1000,
        domain_range: 0.5,
        existentials: 8000,
        qualified_existentials: 14000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 106,
    }
}

/// Full Galen: EL-Galen plus equivalence knots (subsumption cycles) and a
/// heavier role box — the shape that breaks tableau classifiers.
pub fn galen() -> OntologySpec {
    OntologySpec {
        name: "Galen".into(),
        concepts: 23141,
        roles: 950,
        roots: 10,
        max_depth: 14,
        multi_parent: 0.2,
        cycles: 0.0005,
        role_inclusions: 1600,
        domain_range: 0.6,
        existentials: 9000,
        qualified_existentials: 16000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 107,
    }
}

/// FMA 1.4 (lite): ~72k classes, almost no roles, shallow-ish taxonomy.
pub fn fma_1_4() -> OntologySpec {
    OntologySpec {
        name: "FMA 1.4".into(),
        concepts: 72164,
        roles: 2,
        roots: 12,
        max_depth: 18,
        multi_parent: 0.03,
        cycles: 0.0,
        role_inclusions: 1,
        domain_range: 1.0,
        existentials: 5000,
        qualified_existentials: 3000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 108,
    }
}

/// FMA 2.0: ~41k classes with a real role box and deeper part-whole
/// modelling.
pub fn fma_2_0() -> OntologySpec {
    OntologySpec {
        name: "FMA 2.0".into(),
        concepts: 41648,
        roles: 148,
        roots: 8,
        max_depth: 20,
        multi_parent: 0.12,
        cycles: 0.0,
        role_inclusions: 120,
        domain_range: 0.8,
        existentials: 12000,
        qualified_existentials: 10000,
        disjointness: 0,
        unsat_seeds: 3,
        attributes: 0,
        attribute_axioms: 0,
        seed: 109,
    }
}

/// FMA 3.2.1: the largest variant, ~85k classes.
pub fn fma_3_2_1() -> OntologySpec {
    OntologySpec {
        name: "FMA 3.2.1".into(),
        concepts: 84454,
        roles: 100,
        roots: 10,
        max_depth: 20,
        multi_parent: 0.1,
        cycles: 0.0,
        role_inclusions: 90,
        domain_range: 0.8,
        existentials: 15000,
        qualified_existentials: 12000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 110,
    }
}

/// FMA-OBO: the OBO export, ~75k classes, is-a plus part-of only.
pub fn fma_obo() -> OntologySpec {
    OntologySpec {
        name: "FMA-OBO".into(),
        concepts: 75139,
        roles: 2,
        roots: 10,
        max_depth: 19,
        multi_parent: 0.08,
        cycles: 0.0,
        role_inclusions: 1,
        domain_range: 1.0,
        existentials: 9000,
        qualified_existentials: 7000,
        disjointness: 0,
        unsat_seeds: 0,
        attributes: 0,
        attribute_axioms: 0,
        seed: 111,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_presets_in_paper_order() {
        let p = figure1_presets();
        assert_eq!(p.len(), 11);
        assert_eq!(p[0].name, "Mouse");
        assert_eq!(p[6].name, "Galen");
        assert_eq!(p[10].name, "FMA-OBO");
    }

    #[test]
    fn small_presets_generate_quickly() {
        for preset in [mouse(), transportation(), dolce(), aeo()] {
            let t = preset.generate();
            assert_eq!(t.sig.num_concepts(), preset.concepts);
            assert!(t.len() >= preset.concepts - preset.roots);
        }
    }

    #[test]
    fn galen_has_cycles_el_galen_does_not() {
        assert!(galen().cycles > 0.0);
        assert_eq!(el_galen().cycles, 0.0);
    }
}
