//! Small random knowledge bases for property-based testing.
//!
//! Unlike [`crate::spec`], which aims for realistic large shapes, these
//! generators aim for *adversarial density*: tiny signatures with many
//! interacting axioms of every kind, so cross-validation tests hit the
//! interesting corners (cycles, unsatisfiability cascades, inverse-role
//! interplay, qualified-existential chains).

use obda_dllite::{
    Abox, Axiom, BasicConcept, BasicRole, GeneralConcept, Interpretation, Tbox, Value,
};

use obda_owl::{ClassExpr, Ontology, OwlAxiom};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a dense random DL-Lite_R/A TBox.
pub fn random_tbox(
    seed: u64,
    concepts: usize,
    roles: usize,
    attributes: usize,
    axioms: usize,
) -> Tbox {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Tbox::new();
    let cs: Vec<_> = (0..concepts)
        .map(|i| t.sig.concept(&format!("C{i}")))
        .collect();
    let ps: Vec<_> = (0..roles).map(|i| t.sig.role(&format!("p{i}"))).collect();
    let us: Vec<_> = (0..attributes)
        .map(|i| t.sig.attribute(&format!("u{i}")))
        .collect();

    let basic = |rng: &mut SmallRng| -> BasicConcept {
        match rng.gen_range(0..if us.is_empty() { 2 } else { 3 }) {
            0 if !cs.is_empty() => BasicConcept::Atomic(cs[rng.gen_range(0..cs.len())]),
            1 if !ps.is_empty() => {
                let p = ps[rng.gen_range(0..ps.len())];
                if rng.gen_bool(0.5) {
                    BasicConcept::exists(p)
                } else {
                    BasicConcept::exists_inv(p)
                }
            }
            2 => BasicConcept::AttrDomain(us[rng.gen_range(0..us.len())]),
            _ => BasicConcept::Atomic(cs[rng.gen_range(0..cs.len())]),
        }
    };
    let role = |rng: &mut SmallRng| -> BasicRole {
        let p = ps[rng.gen_range(0..ps.len())];
        if rng.gen_bool(0.5) {
            BasicRole::Direct(p)
        } else {
            BasicRole::Inverse(p)
        }
    };

    for _ in 0..axioms {
        let ax = match rng.gen_range(0..10) {
            0..=3 => Axiom::ConceptIncl(basic(&mut rng), GeneralConcept::Basic(basic(&mut rng))),
            4 => Axiom::ConceptIncl(basic(&mut rng), GeneralConcept::Neg(basic(&mut rng))),
            5 | 6 if !ps.is_empty() && !cs.is_empty() => Axiom::ConceptIncl(
                basic(&mut rng),
                GeneralConcept::QualExists(role(&mut rng), cs[rng.gen_range(0..cs.len())]),
            ),
            7 if !ps.is_empty() => Axiom::role(role(&mut rng), role(&mut rng)),
            8 if !ps.is_empty() => Axiom::role_neg(role(&mut rng), role(&mut rng)),
            9 if us.len() >= 2 => {
                let u = us[rng.gen_range(0..us.len())];
                let w = us[rng.gen_range(0..us.len())];
                if rng.gen_bool(0.7) {
                    Axiom::AttrIncl(u, w)
                } else {
                    Axiom::AttrNegIncl(u, w)
                }
            }
            _ => Axiom::ConceptIncl(basic(&mut rng), GeneralConcept::Basic(basic(&mut rng))),
        };
        t.add(ax);
    }
    t
}

/// Generates a random ABox over the TBox's signature.
pub fn random_abox(seed: u64, t: &Tbox, individuals: usize, assertions: usize) -> Abox {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ab = Abox::new();
    let names: Vec<String> = (0..individuals).map(|i| format!("x{i}")).collect();
    for name in &names {
        ab.individual(name);
    }
    for _ in 0..assertions {
        let subj = &names[rng.gen_range(0..names.len())];
        match rng.gen_range(0..3) {
            0 if t.sig.num_concepts() > 0 => {
                let a = obda_dllite::ConceptId(rng.gen_range(0..t.sig.num_concepts() as u32));
                ab.assert_concept(a, subj);
            }
            1 if t.sig.num_roles() > 0 => {
                let p = obda_dllite::RoleId(rng.gen_range(0..t.sig.num_roles() as u32));
                let obj = &names[rng.gen_range(0..names.len())];
                ab.assert_role(p, subj, obj);
            }
            2 if t.sig.num_attributes() > 0 => {
                let u = obda_dllite::AttributeId(rng.gen_range(0..t.sig.num_attributes() as u32));
                ab.assert_attribute(u, subj, Value::Int(rng.gen_range(0..5)));
            }
            _ => {}
        }
    }
    ab
}

/// Generates a random finite interpretation sized for `t`'s signature.
/// (Not necessarily a model of `t` — use rejection or repair in tests.)
pub fn random_interpretation(seed: u64, t: &Tbox, domain: usize, density: f64) -> Interpretation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut i = Interpretation::for_tbox(t, domain);
    for a in t.sig.concepts() {
        for e in 0..domain {
            if rng.gen_bool(density) {
                i.add_concept(a, e);
            }
        }
    }
    for p in t.sig.roles() {
        for s in 0..domain {
            for o in 0..domain {
                if rng.gen_bool(density / 2.0) {
                    i.add_role(p, s, o);
                }
            }
        }
    }
    for u in t.sig.attributes() {
        for s in 0..domain {
            if rng.gen_bool(density) {
                i.add_attribute(u, s, rng.gen_range(0..3));
            }
        }
    }
    i
}

/// Repairs an interpretation into a model of `t` by *extending*
/// extensions until every positive inclusion is satisfied, then *erasing*
/// offending memberships for negative inclusions. Erasure can break
/// positive axioms again, so the loop alternates until fixpoint; it
/// terminates because extensions grow monotonically in the positive phase
/// and the negative phase only removes what positives re-add a bounded
/// number of times (membership flips are bounded by the finite lattice).
/// Returns `None` if no model materializes within the iteration cap —
/// rare, and tests simply skip those seeds.
pub fn repair_into_model(t: &Tbox, mut interp: Interpretation) -> Option<Interpretation> {
    for _ in 0..64 {
        let mut changed = false;
        // Positive repair: add whatever the RHS demands.
        for ax in t.axioms() {
            match *ax {
                Axiom::ConceptIncl(lhs, GeneralConcept::Basic(rhs)) => {
                    for e in 0..interp.domain_size() {
                        if interp.holds_basic(lhs, e) && !interp.holds_basic(rhs, e) {
                            add_basic(&mut interp, rhs, e);
                            changed = true;
                        }
                    }
                }
                Axiom::ConceptIncl(lhs, GeneralConcept::QualExists(q, a)) => {
                    for e in 0..interp.domain_size() {
                        if interp.holds_basic(lhs, e)
                            && !interp.holds_general(GeneralConcept::QualExists(q, a), e)
                        {
                            // Reuse element e itself as the witness.
                            match q {
                                BasicRole::Direct(p) => interp.add_role(p, e, e),
                                BasicRole::Inverse(p) => interp.add_role(p, e, e),
                            }
                            interp.add_concept(a, e);
                            changed = true;
                        }
                    }
                }
                Axiom::RoleIncl(q1, obda_dllite::GeneralRole::Basic(q2)) => {
                    let pairs: Vec<_> = interp.role_pairs(q1).collect();
                    for (s, o) in pairs {
                        let has = interp.role_pairs(q2).any(|p| p == (s, o));
                        if !has {
                            match q2 {
                                BasicRole::Direct(p) => interp.add_role(p, s, o),
                                BasicRole::Inverse(p) => interp.add_role(p, o, s),
                            }
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed && interp.is_model_of(t) {
            return Some(interp);
        }
        if !changed {
            // Negative inclusions violated and positives stable: give up
            // on this seed (erasure-based repair is not implemented; the
            // caller skips).
            return None;
        }
    }
    None
}

fn add_basic(i: &mut Interpretation, b: BasicConcept, e: usize) {
    match b {
        BasicConcept::Atomic(a) => i.add_concept(a, e),
        BasicConcept::Exists(BasicRole::Direct(p)) => i.add_role(p, e, e),
        BasicConcept::Exists(BasicRole::Inverse(p)) => i.add_role(p, e, e),
        BasicConcept::AttrDomain(u) => i.add_attribute(u, e, 0),
    }
}

/// Generates a random ALCHI ontology (for approximation and tableau
/// tests).
pub fn random_owl(
    seed: u64,
    classes: usize,
    props: usize,
    axioms: usize,
    max_depth: usize,
) -> Ontology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut o = Ontology::new();
    let cs: Vec<_> = (0..classes)
        .map(|i| o.sig.concept(&format!("C{i}")))
        .collect();
    let ps: Vec<_> = (0..props).map(|i| o.sig.role(&format!("p{i}"))).collect();

    fn expr(
        rng: &mut SmallRng,
        cs: &[obda_dllite::ConceptId],
        ps: &[obda_dllite::RoleId],
        depth: usize,
    ) -> ClassExpr {
        if depth == 0 || rng.gen_bool(0.4) {
            return match rng.gen_range(0..8) {
                0 => ClassExpr::Thing,
                1 if rng.gen_bool(0.2) => ClassExpr::Nothing,
                _ => ClassExpr::Class(cs[rng.gen_range(0..cs.len())]),
            };
        }
        let role = |rng: &mut SmallRng| {
            let p = ps[rng.gen_range(0..ps.len())];
            if rng.gen_bool(0.3) {
                BasicRole::Inverse(p)
            } else {
                BasicRole::Direct(p)
            }
        };
        match rng.gen_range(0..5) {
            0 => ClassExpr::not(expr(rng, cs, ps, depth - 1)),
            1 => ClassExpr::and(expr(rng, cs, ps, depth - 1), expr(rng, cs, ps, depth - 1)),
            2 => ClassExpr::or(expr(rng, cs, ps, depth - 1), expr(rng, cs, ps, depth - 1)),
            3 if !ps.is_empty() => ClassExpr::some(role(rng), expr(rng, cs, ps, depth - 1)),
            4 if !ps.is_empty() => ClassExpr::all(role(rng), expr(rng, cs, ps, depth - 1)),
            _ => ClassExpr::Class(cs[rng.gen_range(0..cs.len())]),
        }
    }

    for _ in 0..axioms {
        let ax = match rng.gen_range(0..6) {
            0..=2 => OwlAxiom::SubClassOf(
                // Named or simple LHS keeps most axioms meaningful.
                if rng.gen_bool(0.7) {
                    ClassExpr::Class(cs[rng.gen_range(0..cs.len())])
                } else {
                    expr(&mut rng, &cs, &ps, max_depth.min(2))
                },
                expr(&mut rng, &cs, &ps, max_depth),
            ),
            3 if !ps.is_empty() => {
                let r = BasicRole::Direct(ps[rng.gen_range(0..ps.len())]);
                let s = if rng.gen_bool(0.3) {
                    BasicRole::Inverse(ps[rng.gen_range(0..ps.len())])
                } else {
                    BasicRole::Direct(ps[rng.gen_range(0..ps.len())])
                };
                OwlAxiom::SubObjectPropertyOf(r, s)
            }
            4 if !ps.is_empty() => OwlAxiom::ObjectPropertyDomain(
                BasicRole::Direct(ps[rng.gen_range(0..ps.len())]),
                expr(&mut rng, &cs, &ps, max_depth.min(2)),
            ),
            _ => OwlAxiom::DisjointClasses(vec![
                ClassExpr::Class(cs[rng.gen_range(0..cs.len())]),
                ClassExpr::Class(cs[rng.gen_range(0..cs.len())]),
            ]),
        };
        o.add(ax);
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tbox_is_deterministic_and_sized() {
        let t1 = random_tbox(7, 5, 3, 2, 30);
        let t2 = random_tbox(7, 5, 3, 2, 30);
        assert_eq!(t1.axioms(), t2.axioms());
        assert_eq!(t1.sig.num_concepts(), 5);
        assert!(t1.len() <= 30);
    }

    #[test]
    fn random_abox_respects_signature() {
        let t = random_tbox(1, 4, 2, 1, 20);
        let ab = random_abox(2, &t, 6, 40);
        assert!(ab.num_individuals() >= 6);
        assert!(!ab.is_empty());
    }

    #[test]
    fn repair_produces_models_often() {
        let mut ok = 0;
        for seed in 0..20 {
            let t = random_tbox(seed, 4, 2, 0, 8);
            let i = random_interpretation(seed, &t, 4, 0.3);
            if let Some(m) = repair_into_model(&t, i) {
                assert!(m.is_model_of(&t));
                ok += 1;
            }
        }
        assert!(ok >= 5, "repair succeeded only {ok}/20 times");
    }

    #[test]
    fn random_owl_generates_valid_ontologies() {
        let o = random_owl(3, 6, 3, 25, 3);
        assert!(o.len() <= 25);
        assert_eq!(o.sig.num_concepts(), 6);
    }
}
