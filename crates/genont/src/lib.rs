//! # obda-genont
//!
//! Seeded synthetic generators for every experiment in the workspace:
//!
//! * [`spec`]: parameterized DL-Lite TBox generation
//!   ([`OntologySpec`]) — the shape knobs that drive classification cost;
//! * [`exp_chain`]: qualified-existential chain ontologies whose UCQ
//!   rewritings blow up exponentially — the NDL-vs-UCQ stress preset;
//! * [`presets`]: structural analogs of the eleven Figure 1 benchmark
//!   ontologies (see DESIGN.md for the substitution rationale);
//! * [`random`]: small dense random TBoxes/ABoxes/interpretations/OWL
//!   ontologies for property-based testing;
//! * [`university`]: the LUBM-flavoured OBDA scenario (ontology, source
//!   schema + data, mappings, query mix) standing in for the paper's
//!   proprietary industrial deployments;
//! * [`churn`]: reproducible insert/delete streams over the university
//!   naming space — the write-path workload for the delta-equivalence
//!   suites and benchmark A10.

pub mod churn;
pub mod exp_chain;
pub mod presets;
pub mod random;
pub mod spec;
pub mod university;

pub use churn::{churn_stream, ChurnFact, ChurnOp};
pub use exp_chain::{exp_chain, ExpChain};
pub use presets::figure1_presets;
pub use random::{random_abox, random_interpretation, random_owl, random_tbox, repair_into_model};
pub use spec::OntologySpec;
pub use university::{
    university_scenario, university_tbox, Cell, HeadAtom, MappingSpec, QuerySpec, TableData,
    Template, UniversityScenario,
};
