//! The `exp_chain` preset: qualified-existential chain ontologies whose
//! UCQ rewritings blow up exponentially.
//!
//! The shape is a chain of `depth` levels. Level `i` has an atomic
//! concept `A{i}` with `branch` subsumees `B{i}_{j} ⊑ A{i}` forming
//! disjoint flat hierarchies, and a qualified existential
//! `A{i-1} ⊑ ∃r{i}.A{i}` linking consecutive levels. The star query
//!
//! ```text
//! q(x) :- A1(x), A2(x), …, Ad(x)
//! ```
//!
//! rewrites under PerfectRef into `(branch + 1)^depth` pairwise
//! subsumption-incomparable disjuncts (each atom independently stays
//! `A{i}` or drops to one of its `branch` subsumees, and every disjunct
//! has exactly one atom per level, so no disjunct's atom set contains
//! another's) — past the prune cap this UCQ is evaluated raw. The NDL
//! compilation of the same query is one skeleton over `depth` shared
//! views of `branch + 1` member rules each: `depth·(branch+1) + 1`
//! rules, polynomial where the UCQ is exponential. This is the preset
//! behind the `rewrite_prune_capped` counter test and the A9 table.

use obda_dllite::{Abox, Axiom, BasicConcept, BasicRole, GeneralConcept, Tbox};

/// A generated exp_chain scenario.
#[derive(Debug, Clone)]
pub struct ExpChain {
    /// Chain TBox: `depth` levels of `branch` subsumees plus the
    /// qualified-existential chain axioms.
    pub tbox: Tbox,
    /// Deterministic ABox: every individual is asserted into one
    /// subsumee of every level, so the star query answers all of them.
    pub abox: Abox,
    /// The star query `q(x) :- A1(x), …, Ad(x)` whose raw UCQ
    /// rewriting has `(branch + 1)^depth` disjuncts.
    pub star_query: String,
    /// Levels in the chain.
    pub depth: usize,
    /// Subsumees per level.
    pub branch: usize,
}

impl ExpChain {
    /// Raw PerfectRef disjunct count of [`star_query`](Self::star_query).
    pub fn expected_ucq_disjuncts(&self) -> usize {
        (self.branch + 1).pow(self.depth as u32)
    }

    /// NDL rule count for the same query: one member rule per view
    /// member plus the single skeleton.
    pub fn expected_ndl_rules(&self) -> usize {
        self.depth * (self.branch + 1) + 1
    }
}

/// Generates the exp_chain preset. Fully deterministic — no RNG: the
/// level-`i` assertion for individual `x{k}` picks subsumee
/// `B{i}_{(k·31 + i) mod branch}`, which spreads individuals across the
/// hierarchies without randomness.
pub fn exp_chain(depth: usize, branch: usize, individuals: usize) -> ExpChain {
    assert!(
        depth >= 1 && branch >= 1,
        "exp_chain needs depth, branch >= 1"
    );
    let mut t = Tbox::new();
    let levels: Vec<_> = (1..=depth)
        .map(|i| t.sig.concept(&format!("A{i}")))
        .collect();
    let subs: Vec<Vec<_>> = (1..=depth)
        .map(|i| {
            (0..branch)
                .map(|j| t.sig.concept(&format!("B{i}_{j}")))
                .collect()
        })
        .collect();
    let roles: Vec<_> = (2..=depth).map(|i| t.sig.role(&format!("r{i}"))).collect();

    for (i, &a) in levels.iter().enumerate() {
        for &b in &subs[i] {
            t.add(Axiom::ConceptIncl(
                BasicConcept::Atomic(b),
                GeneralConcept::Basic(BasicConcept::Atomic(a)),
            ));
        }
        // A{i} ⊑ ∃r{i+1}.A{i+1}: the qualified-existential chain.
        if i + 1 < depth {
            t.add(Axiom::ConceptIncl(
                BasicConcept::Atomic(a),
                GeneralConcept::QualExists(BasicRole::Direct(roles[i]), levels[i + 1]),
            ));
        }
    }

    let mut ab = Abox::new();
    for k in 0..individuals {
        let name = format!("x{k}");
        ab.individual(&name);
        for (i, level_subs) in subs.iter().enumerate() {
            ab.assert_concept(level_subs[(k * 31 + i + 1) % branch], &name);
        }
        // A few explicit chain edges so the role signature is populated.
        if k + 1 < individuals {
            if let Some(&r) = roles.first() {
                ab.assert_role(r, &name, &format!("x{}", k + 1));
            }
        }
    }

    let atoms: Vec<String> = (1..=depth).map(|i| format!("A{i}(x)")).collect();
    let star_query = format!("q(x) :- {}", atoms.join(", "));

    ExpChain {
        tbox: t,
        abox: ab,
        star_query,
        depth,
        branch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_chain_is_deterministic_and_sized() {
        let a = exp_chain(5, 3, 10);
        let b = exp_chain(5, 3, 10);
        assert_eq!(a.tbox.axioms(), b.tbox.axioms());
        assert_eq!(a.expected_ucq_disjuncts(), 1024);
        assert_eq!(a.expected_ndl_rules(), 21);
        // depth levels × (branch subsumee axioms) + depth-1 chain axioms.
        assert_eq!(a.tbox.len(), 5 * 3 + 4);
        assert_eq!(a.abox.num_individuals(), 10);
    }

    #[test]
    fn star_query_mentions_every_level() {
        let c = exp_chain(3, 2, 4);
        assert_eq!(c.star_query, "q(x) :- A1(x), A2(x), A3(x)");
    }
}
