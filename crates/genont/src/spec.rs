//! Parameterized synthetic ontology generation.
//!
//! Real benchmark ontologies are unavailable offline, so the Figure 1
//! reproduction generates structurally similar TBoxes from an
//! [`OntologySpec`]: the knobs cover exactly the characteristics that
//! drive classification cost in every competitor — signature sizes,
//! hierarchy depth and fan-in, role hierarchies, existential/qualified
//! axiom density, disjointness density and cyclic (equivalence) knots.
//! Generation is fully deterministic per seed.

use obda_dllite::{Axiom, BasicConcept, BasicRole, ConceptId, RoleId, Tbox};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for a synthetic DL-Lite ontology.
#[derive(Debug, Clone)]
pub struct OntologySpec {
    /// Display name (used in reports).
    pub name: String,
    /// Number of atomic concepts.
    pub concepts: usize,
    /// Number of atomic roles.
    pub roles: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of hierarchy roots (forest width).
    pub roots: usize,
    /// Maximum hierarchy depth.
    pub max_depth: usize,
    /// Fraction of non-root concepts receiving a second parent
    /// (DAG-ness), in `0.0..=1.0`.
    pub multi_parent: f64,
    /// Fraction of concepts participating in an equivalence back-edge
    /// (creates subsumption cycles / SCCs), in `0.0..=1.0`.
    pub cycles: f64,
    /// Number of role-hierarchy inclusion axioms.
    pub role_inclusions: usize,
    /// Fraction of roles with domain and range axioms.
    pub domain_range: f64,
    /// Number of unqualified existential axioms `C ⊑ ∃Q`.
    pub existentials: usize,
    /// Number of qualified existential axioms `C ⊑ ∃Q.D`.
    pub qualified_existentials: usize,
    /// Number of concept disjointness axioms (sampled between concepts in
    /// different root subtrees, so they rarely create unsatisfiability).
    pub disjointness: usize,
    /// Number of *conflicting* axiom pairs deliberately creating
    /// unsatisfiable predicates ("ontologies under construction",
    /// Section 5).
    pub unsat_seeds: usize,
    /// Number of attribute inclusion + domain axioms.
    pub attribute_axioms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OntologySpec {
    fn default() -> Self {
        OntologySpec {
            name: "synthetic".into(),
            concepts: 1000,
            roles: 20,
            attributes: 0,
            roots: 10,
            max_depth: 12,
            multi_parent: 0.1,
            cycles: 0.0,
            role_inclusions: 10,
            domain_range: 0.5,
            existentials: 200,
            qualified_existentials: 100,
            disjointness: 50,
            unsat_seeds: 0,
            attribute_axioms: 0,
            seed: 0xD11_1173,
        }
    }
}

impl OntologySpec {
    /// Returns a copy with every size knob multiplied by `factor`
    /// (signature and axiom counts; shape fractions unchanged). Used by
    /// the benchmark harness to run scaled-down smoke suites.
    pub fn scaled(&self, factor: f64) -> OntologySpec {
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        OntologySpec {
            name: self.name.clone(),
            concepts: scale(self.concepts),
            roles: scale(self.roles),
            attributes: if self.attributes == 0 {
                0
            } else {
                scale(self.attributes)
            },
            roots: scale(self.roots),
            role_inclusions: (self.role_inclusions as f64 * factor).round() as usize,
            existentials: (self.existentials as f64 * factor).round() as usize,
            qualified_existentials: (self.qualified_existentials as f64 * factor).round() as usize,
            disjointness: (self.disjointness as f64 * factor).round() as usize,
            unsat_seeds: self.unsat_seeds,
            attribute_axioms: (self.attribute_axioms as f64 * factor).round() as usize,
            ..*self
        }
    }

    /// Generates the TBox.
    pub fn generate(&self) -> Tbox {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut t = Tbox::new();
        let concepts: Vec<ConceptId> = (0..self.concepts)
            .map(|i| t.sig.concept(&format!("{}_C{i}", self.name)))
            .collect();
        let roles: Vec<RoleId> = (0..self.roles)
            .map(|i| t.sig.role(&format!("{}_p{i}", self.name)))
            .collect();
        let attrs: Vec<_> = (0..self.attributes)
            .map(|i| t.sig.attribute(&format!("{}_u{i}", self.name)))
            .collect();

        let roots = self.roots.clamp(1, self.concepts.max(1));
        // Concept hierarchy: each non-root picks a parent among earlier
        // concepts whose depth is below the cap; preferring recent
        // concepts yields realistic deep, narrow trees.
        let mut depth = vec![0usize; self.concepts];
        let mut subtree = vec![0usize; self.concepts]; // root id per concept
        for (i, s) in subtree.iter_mut().enumerate().take(roots) {
            *s = i;
        }
        for i in roots..self.concepts {
            let mut parent = None;
            for _ in 0..8 {
                // Bias towards recent nodes: sample from the last half,
                // falling back to anywhere.
                let lo = if rng.gen_bool(0.7) { i / 2 } else { 0 };
                let cand = rng.gen_range(lo..i);
                if depth[cand] < self.max_depth {
                    parent = Some(cand);
                    break;
                }
            }
            let parent = parent.unwrap_or_else(|| rng.gen_range(0..roots));
            depth[i] = depth[parent] + 1;
            subtree[i] = subtree[parent];
            t.add(Axiom::concept(concepts[i], concepts[parent]));
            if rng.gen_bool(self.multi_parent) {
                // Sample the extra parent *near* the primary one: real
                // multi-parent ontologies (GO, FMA) have heavily
                // overlapping ancestor chains; a global sample would make
                // ancestor sets grow combinatorially (thousands of
                // subsumers per class, far denser than any real ontology).
                let lo = parent.saturating_sub(40);
                let hi = (parent + 40).min(i - 1);
                let extra = rng.gen_range(lo..=hi);
                if extra != parent && extra != i {
                    t.add(Axiom::concept(concepts[i], concepts[extra]));
                }
            }
            if rng.gen_bool(self.cycles) {
                // Equivalence knot: the parent also subsumes-back.
                t.add(Axiom::concept(concepts[parent], concepts[i]));
            }
        }

        // Role hierarchy.
        for _ in 0..self.role_inclusions {
            if roles.len() < 2 {
                break;
            }
            let a = rng.gen_range(0..roles.len());
            let b = rng.gen_range(0..roles.len());
            if a == b {
                continue;
            }
            let lhs = BasicRole::Direct(roles[a]);
            let rhs = if rng.gen_bool(0.2) {
                BasicRole::Inverse(roles[b])
            } else {
                BasicRole::Direct(roles[b])
            };
            t.add(Axiom::role(lhs, rhs));
        }
        // Domain / range.
        for &p in &roles {
            if rng.gen_bool(self.domain_range) && !concepts.is_empty() {
                let d = concepts[rng.gen_range(0..concepts.len())];
                let r = concepts[rng.gen_range(0..concepts.len())];
                t.add(Axiom::concept(BasicConcept::exists(p), d));
                t.add(Axiom::concept(BasicConcept::exists_inv(p), r));
            }
        }
        // Existential axioms.
        for _ in 0..self.existentials {
            if roles.is_empty() || concepts.is_empty() {
                break;
            }
            let c = concepts[rng.gen_range(0..concepts.len())];
            let p = roles[rng.gen_range(0..roles.len())];
            let q = if rng.gen_bool(0.3) {
                BasicRole::Inverse(p)
            } else {
                BasicRole::Direct(p)
            };
            t.add(Axiom::ConceptIncl(
                BasicConcept::Atomic(c),
                obda_dllite::GeneralConcept::Basic(BasicConcept::Exists(q)),
            ));
        }
        for _ in 0..self.qualified_existentials {
            if roles.is_empty() || concepts.is_empty() {
                break;
            }
            let c = concepts[rng.gen_range(0..concepts.len())];
            let d = concepts[rng.gen_range(0..concepts.len())];
            let p = roles[rng.gen_range(0..roles.len())];
            let q = if rng.gen_bool(0.3) {
                BasicRole::Inverse(p)
            } else {
                BasicRole::Direct(p)
            };
            t.add(Axiom::qual_exists(c, q, d));
        }
        // Disjointness between different subtrees (satisfiability-safe
        // except for deliberate unsat seeds below).
        let mut added = 0;
        let mut tries = 0;
        while added < self.disjointness && tries < self.disjointness * 20 {
            tries += 1;
            if concepts.len() < 2 {
                break;
            }
            let a = rng.gen_range(0..concepts.len());
            let b = rng.gen_range(0..concepts.len());
            if a == b || subtree[a] == subtree[b] {
                continue;
            }
            t.add(Axiom::concept_neg(concepts[a], concepts[b]));
            added += 1;
        }
        // Deliberate unsatisfiability: C ⊑ A, C ⊑ B, A ⊑ ¬B.
        for k in 0..self.unsat_seeds {
            if concepts.len() < 3 {
                break;
            }
            let c = concepts[rng.gen_range(0..concepts.len())];
            let a = concepts[(k * 7 + 1) % concepts.len()];
            let b = concepts[(k * 13 + 2) % concepts.len()];
            if c == a || c == b || a == b {
                continue;
            }
            t.add(Axiom::concept(c, a));
            t.add(Axiom::concept(c, b));
            t.add(Axiom::concept_neg(a, b));
        }
        // Attributes.
        for k in 0..self.attribute_axioms {
            if attrs.is_empty() {
                break;
            }
            let u = attrs[rng.gen_range(0..attrs.len())];
            if rng.gen_bool(0.5) && attrs.len() > 1 {
                let w = attrs[rng.gen_range(0..attrs.len())];
                if u != w {
                    t.add(Axiom::AttrIncl(u, w));
                }
            } else if !concepts.is_empty() {
                let c = concepts[(k * 3) % concepts.len()];
                t.add(Axiom::concept(BasicConcept::AttrDomain(u), c));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = OntologySpec::default();
        let t1 = spec.generate();
        let t2 = spec.generate();
        assert_eq!(t1.axioms(), t2.axioms());
        assert_eq!(t1.sig, t2.sig);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = OntologySpec::default();
        let s2 = OntologySpec {
            seed: 999,
            ..OntologySpec::default()
        };
        assert_ne!(s1.generate().axioms(), s2.generate().axioms());
    }

    #[test]
    fn respects_signature_sizes() {
        let spec = OntologySpec {
            concepts: 50,
            roles: 5,
            attributes: 3,
            attribute_axioms: 6,
            ..OntologySpec::default()
        };
        let t = spec.generate();
        assert_eq!(t.sig.num_concepts(), 50);
        assert_eq!(t.sig.num_roles(), 5);
        assert_eq!(t.sig.num_attributes(), 3);
        assert!(t.len() > 50, "hierarchy plus extras expected");
    }

    #[test]
    fn depth_cap_holds() {
        let spec = OntologySpec {
            concepts: 500,
            max_depth: 4,
            existentials: 0,
            qualified_existentials: 0,
            disjointness: 0,
            role_inclusions: 0,
            domain_range: 0.0,
            ..OntologySpec::default()
        };
        let t = spec.generate();
        // Walk told-parent chains; none may exceed the cap.
        use std::collections::HashMap;
        let mut parents: HashMap<u32, Vec<u32>> = HashMap::new();
        for ax in t.axioms() {
            if let Axiom::ConceptIncl(
                BasicConcept::Atomic(a),
                obda_dllite::GeneralConcept::Basic(BasicConcept::Atomic(b)),
            ) = ax
            {
                parents.entry(a.0).or_default().push(b.0);
            }
        }
        fn depth_of(c: u32, parents: &HashMap<u32, Vec<u32>>, fuel: usize) -> usize {
            if fuel == 0 {
                return usize::MAX; // cycle guard; cycles disabled here
            }
            parents
                .get(&c)
                .map(|ps| {
                    1 + ps
                        .iter()
                        .map(|&p| depth_of(p, parents, fuel - 1))
                        .min()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        }
        for c in 0..500u32 {
            assert!(depth_of(c, &parents, 64) <= 6, "depth blew past the cap");
        }
    }

    #[test]
    fn unsat_seeds_create_unsatisfiable_concepts() {
        let spec = OntologySpec {
            concepts: 30,
            unsat_seeds: 3,
            disjointness: 0,
            ..OntologySpec::default()
        };
        let t = spec.generate();
        let neg = t.negative_inclusions().count();
        assert!(neg >= 1);
    }

    #[test]
    fn scaled_shrinks_sizes() {
        let spec = OntologySpec::default().scaled(0.1);
        assert_eq!(spec.concepts, 100);
        assert_eq!(spec.roles, 2);
    }
}
