//! Sanity of the Figure 1 preset analogs: deliberate unsatisfiability
//! only where the spec seeds it, published-scale signatures, and stable
//! generation.

use obda_genont::{figure1_presets, presets};
use quonto::Classification;

#[test]
fn unsatisfiability_appears_only_where_seeded() {
    for preset in figure1_presets() {
        // Scale down for test speed, keeping the unsat seeds untouched.
        let spec = preset.scaled(0.02);
        let tbox = spec.generate();
        let cls = Classification::classify(&tbox);
        let unsat = cls.unsat_concepts().len();
        if spec.unsat_seeds == 0 && spec.disjointness == 0 {
            assert_eq!(unsat, 0, "{}: clean ontology got {unsat} unsat", spec.name);
        }
        if spec.unsat_seeds > 0 {
            assert!(
                unsat > 0,
                "{}: {} unsat seeds produced no unsatisfiable concept",
                spec.name,
                spec.unsat_seeds
            );
        }
    }
}

#[test]
fn signature_scales_match_published_sizes() {
    // Published class counts of the originals (±0 — the analogs match
    // exactly by construction).
    let expected = [
        ("Mouse", 2744),
        ("Transportation", 445),
        ("DOLCE", 209),
        ("AEO", 760),
        ("Gene", 26225),
        ("EL-Galen", 23136),
        ("Galen", 23141),
        ("FMA 1.4", 72164),
        ("FMA 2.0", 41648),
        ("FMA 3.2.1", 84454),
        ("FMA-OBO", 75139),
    ];
    for (preset, (name, classes)) in figure1_presets().iter().zip(expected) {
        assert_eq!(preset.name, name);
        assert_eq!(preset.concepts, classes, "{name}");
    }
}

#[test]
fn galen_analog_has_equivalence_knots_el_galen_does_not() {
    let galen = presets::galen().scaled(0.2).generate();
    let el = presets::el_galen().scaled(0.2).generate();
    let g_classes = Classification::classify(&galen).concept_equivalence_classes();
    let e_classes = Classification::classify(&el).concept_equivalence_classes();
    assert!(
        !g_classes.is_empty(),
        "Galen analog lost its cyclic structure"
    );
    // EL-Galen may pick up *incidental* small cycles (domain/range axioms
    // meeting existentials), but Galen's seeded equivalence knots must
    // dominate: strictly more equivalent concepts overall.
    let knot_size =
        |classes: &[Vec<obda_dllite::ConceptId>]| -> usize { classes.iter().map(Vec::len).sum() };
    assert!(
        knot_size(&g_classes) > knot_size(&e_classes),
        "galen {} vs el-galen {}",
        knot_size(&g_classes),
        knot_size(&e_classes)
    );
}

#[test]
fn taxonomy_of_the_university_ontology() {
    let tbox = obda_genont::university_tbox();
    let cls = Classification::classify(&tbox);
    let tax = quonto::Taxonomy::build(&cls);
    let sig = &tbox.sig;
    let class = |n: &str| tax.class_of(sig.find_concept(n).unwrap()).unwrap();
    // Person is a root; Student sits under it; GradStudent under Student.
    assert!(tax.roots().contains(&class("Person")));
    assert!(tax.parents(class("Student")).contains(&class("Person")));
    assert!(tax
        .parents(class("GradStudent"))
        .contains(&class("Student")));
    assert_eq!(tax.depth(class("GradStudent")), 2);
    assert!(tax.unsatisfiable().is_empty());
    let rendered = tax.render(sig);
    assert!(rendered.contains("Person"));
    assert!(rendered.contains("  Student"));
}
