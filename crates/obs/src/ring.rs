//! A bounded ring of the most recent completed query traces.
//!
//! The server `TRACE` verb reads the [`global`] ring; anything that
//! finishes a trace may push here. Traces are shared (`Arc`) so a push
//! and a concurrent `TRACE` response never copy span vectors.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use quonto::sync::lock_or_recover;

use crate::trace::QueryTrace;

/// Fallback capacity when `QUONTO_TRACE_RING` is unset.
pub const DEFAULT_CAPACITY: usize = 128;

/// Bounded FIFO of completed traces; pushing past capacity drops the
/// oldest. Capacity 0 disables capture entirely.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    inner: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl TraceRing {
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap,
            inner: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether pushes are retained at all.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    pub fn push(&self, trace: Arc<QueryTrace>) {
        if self.cap == 0 {
            return;
        }
        let mut q = lock_or_recover(&self.inner);
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(trace);
    }

    /// Up to `n` most recent traces, newest first.
    pub fn last(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        let q = lock_or_recover(&self.inner);
        q.iter().rev().take(n).cloned().collect()
    }

    pub fn len(&self) -> usize {
        lock_or_recover(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        lock_or_recover(&self.inner).clear();
    }
}

/// The process-wide ring; capacity comes from `QUONTO_TRACE_RING`
/// (default [`DEFAULT_CAPACITY`], `0` disables) read once at first use.
pub fn global() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(quonto::env::trace_ring().unwrap_or(DEFAULT_CAPACITY)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    fn mk(query: &str) -> Arc<QueryTrace> {
        let ctx = TraceCtx::new();
        ctx.set_query(query);
        Arc::new(ctx.finish("ok", 0).expect("trace"))
    }

    #[test]
    fn ring_keeps_the_newest_traces() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(mk(&format!("q{i}")));
        }
        assert_eq!(ring.len(), 3);
        let last = ring.last(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].query, "q4");
        assert_eq!(last[1].query, "q3");
        assert_eq!(ring.last(10).len(), 3);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let ring = TraceRing::new(0);
        assert!(!ring.is_enabled());
        ring.push(mk("q"));
        assert!(ring.is_empty());
    }
}
