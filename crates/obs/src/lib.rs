//! Observability for the OBDA stack: per-query traces and a
//! process-wide metrics registry.
//!
//! The answering pipeline (parse → rewrite → prune → unfold → evaluate →
//! serialize) has query-dependent cost that is dominated by rewriting
//! blow-up, so a slow answer is only diagnosable if every phase is
//! attributed. This crate provides:
//!
//! - [`TraceCtx`] — a query-scoped trace context. Phases open nested
//!   [`span!`] guards that record wall time and named counters
//!   (disjuncts before/after pruning, cache hit/miss, SQL rows
//!   scanned). A *disabled* context is a single `Option` check per
//!   span, so untraced paths stay at production speed.
//! - [`TraceRing`] — a bounded ring of the last N completed
//!   [`QueryTrace`]s, served by the server `TRACE` verb
//!   (`QUONTO_TRACE_RING` sizes the [`ring::global`] instance).
//! - [`registry()`] — process-wide named [`Counter`]s and log₂
//!   [`Histogram`]s, superseding per-component ad-hoc counters.
//! - [`TraceSink`]s — where finished traces go: the legacy
//!   `mastro-timings` stderr line ([`StderrSink`]), JSON-lines
//!   ([`JsonSink`]), an in-memory buffer for tests ([`MemorySink`]),
//!   or nowhere ([`NullSink`]). `QUONTO_TIMINGS` selects the process
//!   default ([`sink::from_env`]).
//!
//! Everything is std-only and panic-free on the hot path; interior
//! locks go through `quonto::sync::lock_or_recover`.

pub mod registry;
pub mod ring;
pub mod sink;
pub mod trace;

pub use registry::{registry, Counter, Histogram, HistogramSummary, Registry};
pub use ring::TraceRing;
pub use sink::{JsonSink, MemorySink, NullSink, SinkKind, StderrSink, TraceSink};
pub use trace::{QueryTrace, SpanGuard, SpanRecord, TraceCtx};

/// Opens a named phase span on a [`TraceCtx`]; the returned RAII guard
/// records the phase's wall time when dropped:
///
/// ```
/// use obda_obs::{span, TraceCtx};
/// let ctx = TraceCtx::new();
/// {
///     let g = span!(ctx, "rewrite");
///     g.count("disjuncts", 12);
/// } // "rewrite" span closed here
/// ```
#[macro_export]
macro_rules! span {
    ($ctx:expr, $name:literal) => {
        $ctx.span($name)
    };
}

/// Defines an accessor for a process-wide registry counter, resolved
/// once so the steady-state cost of bumping it is one relaxed atomic
/// add — the hand-rolled `OnceLock` + `registry().counter("…")` pattern
/// as a one-liner (keep the invocation on one line so `xtask analyze`
/// sees the name literal):
///
/// ```
/// obda_obs::counter_handle!(fn rows_scanned_total, "sqlstore.rows_scanned");
/// rows_scanned_total().add(17);
/// ```
#[macro_export]
macro_rules! counter_handle {
    ($vis:vis fn $name:ident, $metric:literal) => {
        $vis fn $name() -> &'static ::std::sync::Arc<$crate::Counter> {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::registry().counter($metric))
        }
    };
}

/// Publishes a finished trace: pushes it onto the global ring (so the
/// server `TRACE` verb can retrieve it) and emits it through `sink`.
/// Returns the shared trace for callers that also want to inspect it.
pub fn submit(trace: QueryTrace, sink: &dyn TraceSink) -> std::sync::Arc<QueryTrace> {
    let trace = std::sync::Arc::new(trace);
    ring::global().push(std::sync::Arc::clone(&trace));
    sink.emit(&trace);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_roundtrip() {
        let ctx = TraceCtx::new();
        {
            let g = span!(ctx, "rewrite");
            g.count("disjuncts", 12);
            let _inner = span!(ctx, "prune");
        }
        let t = ctx.finish("ok", 0).expect("enabled ctx yields a trace");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "rewrite");
        assert_eq!(t.spans[0].depth, 0);
        assert_eq!(t.spans[1].name, "prune");
        assert_eq!(t.spans[1].depth, 1);
        assert_eq!(t.spans[0].counters, vec![("disjuncts", 12)]);
    }

    #[test]
    fn submit_reaches_ring_and_sink() {
        let sink = MemorySink::new();
        let ctx = TraceCtx::new();
        ctx.set_query("q(x) :- A(x)");
        drop(span!(ctx, "parse"));
        let t = ctx.finish("ok", 3).expect("trace");
        let id = t.id;
        submit(t, &sink);
        assert_eq!(sink.len(), 1);
        assert!(ring::global().last(usize::MAX).iter().any(|t| t.id == id));
    }
}
