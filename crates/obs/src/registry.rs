//! The process-wide metrics registry: named counters and log₂
//! histograms.
//!
//! Components register interest by name (`registry().counter("…")`)
//! and keep the returned `Arc` so the hot path is one relaxed atomic
//! op — the name→slot map is only consulted at setup (or for one-off
//! bumps via [`Registry::add`]). The server `STATS` verb snapshots the
//! whole registry; component-local counters from earlier PRs (e.g. the
//! rewrite-cache stats) remain for their existing APIs, but new
//! cross-cutting metrics live here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use quonto::sync::lock_or_recover;

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// microseconds, so 40 buckets reach ~12 days — effectively unbounded.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Everything here is written on the hot path, so the design rule is
/// "one relaxed atomic op per event". Percentiles are
/// bucket-resolution estimates (each bucket spans a 2× range), which
/// is exactly the fidelity a `STATS` dashboard needs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation (saturating everywhere; a long-lived
    /// server must never wrap or panic here).
    pub fn record(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Estimated `p`-th percentile (0 < p ≤ 100) in microseconds: the
    /// geometric midpoint of the bucket holding the rank, clamped by
    /// the observed maximum.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = 1u64 << i;
                let mid = lo + lo / 2; // ≈ geometric midpoint of [2^i, 2^{i+1})
                return mid.min(self.max_us());
            }
        }
        self.max_us()
    }

    /// Zeroes every bucket and counter.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.percentile_us(50.0),
            p95_us: self.percentile_us(95.0),
            p99_us: self.percentile_us(99.0),
            max_us: self.max_us(),
        }
    }
}

/// Point-in-time digest of one histogram, for `STATS` snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Named counters + histograms behind one lock (setup path only).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Hot paths should call this once and keep the `Arc`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_or_recover(&self.counters);
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_or_recover(&self.histograms);
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// One-off counter bump (setup-path convenience).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// One-off histogram observation.
    pub fn observe(&self, name: &str, us: u64) {
        self.histogram(name).record(us);
    }

    /// Sorted snapshot of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock_or_recover(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted snapshot of every histogram's digest.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        lock_or_recover(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }

    /// Zeroes every metric (names stay registered). Test helper; the
    /// registry is process-global, so concurrent tests should assert
    /// on deltas rather than reset.
    pub fn reset(&self) {
        for c in lock_or_recover(&self.counters).values() {
            c.reset();
        }
        for h in lock_or_recover(&self.histograms).values() {
            h.reset();
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_name() {
        let r = Registry::new();
        r.add("a.hits", 2);
        r.add("a.hits", 3);
        let handle = r.counter("a.hits");
        handle.add(1);
        assert_eq!(r.counters(), vec![("a.hits".to_owned(), 6)]);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 1000, 2000, 4000, 100_000, 200_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_us(50.0);
        assert!((8..=64).contains(&p50), "p50={p50}");
        let p99 = h.percentile_us(99.0);
        assert!(p99 >= 100_000, "p99={p99}");
        assert_eq!(h.max_us(), 200_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(99.0), 0);
    }

    #[test]
    fn zero_latency_records_into_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile_us(50.0) <= 3);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_resettable() {
        let r = Registry::new();
        r.add("z", 1);
        r.add("a", 1);
        r.observe("lat", 100);
        let names: Vec<_> = r.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(r.histograms()[0].1.count, 1);
        r.reset();
        assert_eq!(r.counters(), vec![("a".into(), 0), ("z".into(), 0)]);
        assert_eq!(r.histograms()[0].1.count, 0);
    }
}
