//! Pluggable destinations for finished traces.
//!
//! The sink decides what a completed [`QueryTrace`] turns into:
//! nothing ([`NullSink`]), the legacy `mastro-timings` stderr line
//! ([`StderrSink`]), one JSON object per line on stderr ([`JsonSink`]),
//! or an in-memory buffer a test can inspect ([`MemorySink`]).
//! `QUONTO_TIMINGS` selects the process default via [`from_env`]; a
//! `SystemBuilder` can override it per engine.
//!
//! This module is the *only* place in the query path allowed to print
//! diagnostics (`xtask lint` rule `R6` bans raw `eprintln!` elsewhere
//! in library code).

use std::sync::{Arc, Mutex};

use quonto::sync::lock_or_recover;

use crate::trace::QueryTrace;

/// Where finished traces go. Implementations must be cheap when
/// `enabled()` is false — callers use it to skip trace construction.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether emitting to this sink does anything. Callers may build
    /// a disabled `TraceCtx` when this is false.
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, trace: &QueryTrace);
}

/// Discards everything; `enabled()` is false.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _trace: &QueryTrace) {}
}

/// The pre-obs `QUONTO_TIMINGS=1` behaviour: one `mastro-timings`
/// line per query on stderr, now reconstructed from spans.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&self, trace: &QueryTrace) {
        eprintln!("{}", trace.timings_line());
    }
}

/// One JSON object per query on stderr (`QUONTO_TIMINGS=json`).
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonSink;

impl TraceSink for JsonSink {
    fn emit(&self, trace: &QueryTrace) {
        eprintln!("{}", trace.to_json_line());
    }
}

/// Buffers traces for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    traces: Mutex<Vec<QueryTrace>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything emitted so far, oldest first.
    pub fn traces(&self) -> Vec<QueryTrace> {
        lock_or_recover(&self.traces).clone()
    }

    pub fn len(&self) -> usize {
        lock_or_recover(&self.traces).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        lock_or_recover(&self.traces).clear();
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, trace: &QueryTrace) {
        lock_or_recover(&self.traces).push(trace.clone());
    }
}

/// The built-in sink choices, as selected by `QUONTO_TIMINGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    Off,
    Stderr,
    Json,
}

/// Instantiates a built-in sink.
pub fn named(kind: SinkKind) -> Arc<dyn TraceSink> {
    match kind {
        SinkKind::Off => Arc::new(NullSink),
        SinkKind::Stderr => Arc::new(StderrSink),
        SinkKind::Json => Arc::new(JsonSink),
    }
}

/// The sink selected by `QUONTO_TIMINGS`: unset/`0` → off, `1` →
/// legacy stderr lines, `json` → JSON-lines.
pub fn from_env() -> Arc<dyn TraceSink> {
    named(match quonto::env::timings_mode() {
        quonto::env::TimingsMode::Off => SinkKind::Off,
        quonto::env::TimingsMode::Stderr => SinkKind::Stderr,
        quonto::env::TimingsMode::Json => SinkKind::Json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    #[test]
    fn memory_sink_buffers_clones() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        let ctx = TraceCtx::new();
        ctx.set_query("q(x) :- A(x)");
        sink.emit(&ctx.finish("ok", 2).expect("trace"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.traces()[0].rows, 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(StderrSink.enabled());
        assert!(JsonSink.enabled());
    }
}
