//! The query-scoped trace context: nested phase spans with counters.
//!
//! A [`TraceCtx`] is either *enabled* (backed by shared state behind a
//! mutex — spans, counters, tags accumulate until [`TraceCtx::finish`])
//! or *disabled* (`inner == None`), in which case every operation is a
//! branch on an `Option` and no allocation or locking happens. The
//! answering pipeline threads `&TraceCtx` unconditionally and pays for
//! tracing only when someone asked for it.
//!
//! Span nesting is positional: opening a span records the current open
//! stack depth, so the flat `spans` vector plus each record's `depth`
//! reconstructs the tree. Guards are meant to drop LIFO (lexical
//! scopes); a non-LIFO drop closes the right span anyway because the
//! guard remembers its own index.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use quonto::sync::lock_or_recover;

/// Process-wide trace id source; ids are unique per process run.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One completed (or still-open, while `dur_us == 0`) phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`"parse"`, `"rewrite"`, `"perfectref"`, …).
    pub name: &'static str,
    /// Nesting depth at open time: 0 = top-level phase.
    pub depth: u16,
    /// Microseconds from trace start to span open.
    pub start_us: u64,
    /// Span wall time in microseconds.
    pub dur_us: u64,
    /// Named counters attributed to this span.
    pub counters: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct CtxState {
    spans: Vec<SpanRecord>,
    /// Indices (into `spans`) of currently open spans, innermost last.
    open: Vec<usize>,
    /// Trace-level counters (same name accumulates).
    counters: Vec<(&'static str, u64)>,
    /// Trace-level string tags (same name overwrites).
    tags: Vec<(&'static str, String)>,
    query: Option<String>,
}

#[derive(Debug)]
struct CtxInner {
    id: u64,
    start: Instant,
    state: Mutex<CtxState>,
}

impl CtxInner {
    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A query-scoped trace context. Cheap to clone (an `Arc` bump) and
/// safe to share across the eval worker threads of one query.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<CtxInner>>,
}

impl TraceCtx {
    /// An enabled context with a fresh process-unique trace id.
    pub fn new() -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(CtxInner {
                id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                state: Mutex::new(CtxState::default()),
            })),
        }
    }

    /// A no-op context: spans, counters, and tags all cost one branch.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// Enabled iff [`finish`](Self::finish) will yield a trace.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id (0 for a disabled context).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Opens a nested phase span; prefer the [`crate::span!`] macro.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                idx: 0,
            };
        };
        let start_us = inner.now_us();
        let mut st = lock_or_recover(&inner.state);
        let depth = u16::try_from(st.open.len()).unwrap_or(u16::MAX);
        let idx = st.spans.len();
        st.spans.push(SpanRecord {
            name,
            depth,
            start_us,
            dur_us: 0,
            counters: Vec::new(),
        });
        st.open.push(idx);
        SpanGuard {
            inner: Some(Arc::clone(inner)),
            idx,
        }
    }

    /// Adds `n` to a trace-level counter.
    pub fn count(&self, name: &'static str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock_or_recover(&inner.state);
        match st.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = v.saturating_add(n),
            None => st.counters.push((name, n)),
        }
    }

    /// Sets a trace-level string tag (overwrites an existing name).
    pub fn tag(&self, name: &'static str, value: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let value = value.into();
        let mut st = lock_or_recover(&inner.state);
        match st.tags.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = value,
            None => st.tags.push((name, value)),
        }
    }

    /// Attaches the query text shown in `TRACE` output.
    pub fn set_query(&self, text: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        lock_or_recover(&inner.state).query = Some(text.into());
    }

    /// Microseconds since trace start (0 for a disabled context). Pair
    /// with [`record_span`](Self::record_span) to time work on a thread
    /// that must not take the context lock per event.
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_us())
    }

    /// Records an already-closed span post-hoc, at the current nesting
    /// depth plus one (a child of whatever span is open at record
    /// time). Scatter/gather evaluation uses this: shard threads
    /// bracket their work with [`now_us`](Self::now_us) and the
    /// coordinator records one span per shard after the merge, so the
    /// trace stays deterministic in shard order instead of reflecting
    /// thread-scheduling races.
    pub fn record_span(
        &self,
        name: &'static str,
        start_us: u64,
        dur_us: u64,
        counters: Vec<(&'static str, u64)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock_or_recover(&inner.state);
        let depth = u16::try_from(st.open.len()).unwrap_or(u16::MAX);
        st.spans.push(SpanRecord {
            name,
            depth,
            start_us,
            dur_us: dur_us.max(1),
            counters,
        });
    }

    /// Seals the context into a [`QueryTrace`] (`None` when disabled).
    /// Still-open spans are closed at the finish instant.
    pub fn finish(&self, status: &str, rows: u64) -> Option<QueryTrace> {
        let inner = self.inner.as_ref()?;
        let total_us = inner.now_us();
        let mut st = lock_or_recover(&inner.state);
        let open = std::mem::take(&mut st.open);
        for idx in open {
            if let Some(s) = st.spans.get_mut(idx) {
                s.dur_us = total_us.saturating_sub(s.start_us);
            }
        }
        Some(QueryTrace {
            id: inner.id,
            query: st.query.take().unwrap_or_default(),
            status: status.to_owned(),
            rows,
            total_us,
            spans: std::mem::take(&mut st.spans),
            counters: std::mem::take(&mut st.counters),
            tags: std::mem::take(&mut st.tags),
        })
    }
}

/// RAII guard for one phase span; records wall time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<CtxInner>>,
    idx: usize,
}

impl SpanGuard {
    /// Adds `n` to a counter attributed to this span.
    pub fn count(&self, name: &'static str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock_or_recover(&inner.state);
        let Some(span) = st.spans.get_mut(self.idx) else {
            return;
        };
        match span.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = v.saturating_add(n),
            None => span.counters.push((name, n)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let now = inner.now_us();
        let mut st = lock_or_recover(&inner.state);
        if let Some(s) = st.spans.get_mut(self.idx) {
            if s.dur_us == 0 {
                s.dur_us = now.saturating_sub(s.start_us).max(1);
            }
        }
        if let Some(pos) = st.open.iter().rposition(|&i| i == self.idx) {
            st.open.remove(pos);
        }
    }
}

/// One finished per-query trace: the span tree (flattened, with
/// depths), trace-level counters/tags, and the outcome.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub id: u64,
    /// Query text as received (empty if never attached).
    pub query: String,
    /// Outcome: `"ok"`, `"error"`, `"timeout"`, …
    pub status: String,
    /// Answer rows produced.
    pub rows: u64,
    /// End-to-end wall time in microseconds.
    pub total_us: u64,
    pub spans: Vec<SpanRecord>,
    pub counters: Vec<(&'static str, u64)>,
    pub tags: Vec<(&'static str, String)>,
}

impl QueryTrace {
    /// Total microseconds across spans with this name (any depth).
    pub fn span_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum()
    }

    /// Sum of a named counter across the trace level and every span.
    pub fn counter(&self, name: &str) -> u64 {
        let trace_level: u64 = self
            .counters
            .iter()
            .filter(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .sum();
        let span_level: u64 = self
            .spans
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .sum();
        trace_level.saturating_add(span_level)
    }

    pub fn tag(&self, name: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Top-level phases in execution order: `(name, dur_us)`.
    pub fn phases(&self) -> Vec<(&'static str, u64)> {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.name, s.dur_us))
            .collect()
    }

    /// The legacy `mastro-timings` one-liner, reconstructed from spans
    /// so `QUONTO_TIMINGS=1` output keeps its pre-trace shape.
    pub fn timings_line(&self) -> String {
        let ms = |us: u64| us as f64 / 1000.0;
        let eval_us = {
            let eval = self.span_us("eval");
            if eval > 0 {
                eval
            } else {
                self.span_us("unfold").saturating_add(self.span_us("sql"))
            }
        };
        format!(
            "mastro-timings rewriting={} data={} parse_ms={:.2} rewrite_ms={:.2} cache={} ucq={} pruned={} eval_ms={:.2} threads={} answers={}",
            self.tag("rewriting").unwrap_or("-"),
            self.tag("data").unwrap_or("-"),
            ms(self.span_us("parse")),
            ms(self.span_us("rewrite")),
            if self.counter("cache_hit") > 0 { "hit" } else { "miss" },
            self.counter("ucq_raw"),
            self.counter("ucq_pruned"),
            ms(eval_us),
            self.counter("threads").max(1),
            self.rows,
        )
    }

    /// One JSON object per trace (hand-rolled; this crate sits below
    /// the server's JSON module).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"trace\":{},\"status\":\"{}\",\"rows\":{},\"total_us\":{}",
            self.id,
            escape(&self.status),
            self.rows,
            self.total_us
        ));
        if !self.query.is_empty() {
            out.push_str(&format!(",\"query\":\"{}\"", escape(&self.query)));
        }
        for (k, v) in &self.tags {
            out.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
        }
        for (k, v) in &self.counters {
            out.push_str(&format!(",\"{}\":{}", escape(k), v));
        }
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"depth\":{},\"start_us\":{},\"dur_us\":{}",
                escape(s.name),
                s.depth,
                s.start_us,
                s.dur_us
            ));
            for (k, v) in &s.counters {
                out.push_str(&format!(",\"{}\":{}", escape(k), v));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.enabled());
        assert_eq!(ctx.id(), 0);
        let g = ctx.span("parse");
        g.count("x", 1);
        ctx.count("y", 2);
        ctx.tag("mode", "none");
        drop(g);
        assert!(ctx.finish("ok", 0).is_none());
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let ctx = TraceCtx::new();
        {
            let _a = ctx.span("rewrite");
            {
                let _b = ctx.span("perfectref");
            }
            {
                let b = ctx.span("prune");
                b.count("disjuncts_before", 10);
                b.count("disjuncts_after", 4);
            }
        }
        let _c = ctx.span("eval");
        drop(_c);
        let t = ctx.finish("ok", 7).expect("trace");
        let names: Vec<_> = t.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            names,
            vec![("rewrite", 0), ("perfectref", 1), ("prune", 1), ("eval", 0)]
        );
        assert_eq!(t.counter("disjuncts_after"), 4);
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.rows, 7);
    }

    #[test]
    fn child_spans_fit_inside_the_parent() {
        let ctx = TraceCtx::new();
        {
            let _p = ctx.span("rewrite");
            for _ in 0..3 {
                let _c = ctx.span("perfectref");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        let t = ctx.finish("ok", 0).expect("trace");
        let parent = t
            .spans
            .iter()
            .find(|s| s.name == "rewrite")
            .expect("parent");
        let child_sum: u64 = t
            .spans
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.dur_us)
            .sum();
        // Children are timed strictly inside the parent window; allow
        // 1µs rounding per child.
        assert!(
            child_sum <= parent.dur_us + 3,
            "children {child_sum}µs exceed parent {}µs",
            parent.dur_us
        );
        assert!(t.total_us >= parent.dur_us);
    }

    #[test]
    fn post_hoc_spans_nest_under_the_open_span() {
        let ctx = TraceCtx::new();
        {
            let _eval = ctx.span("eval");
            let t0 = ctx.now_us();
            ctx.record_span("shard0", t0, 5, vec![("disjuncts", 3)]);
            ctx.record_span("shard1", t0, 7, vec![("disjuncts", 2)]);
        }
        let t = ctx.finish("ok", 0).expect("trace");
        let names: Vec<_> = t.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(names, vec![("eval", 0), ("shard0", 1), ("shard1", 1)]);
        assert_eq!(t.counter("disjuncts"), 5);
        assert_eq!(t.span_us("shard1"), 7);
        // Disabled contexts stay inert.
        let off = TraceCtx::disabled();
        assert_eq!(off.now_us(), 0);
        off.record_span("shard0", 0, 1, vec![]);
        assert!(off.finish("ok", 0).is_none());
    }

    #[test]
    fn open_spans_are_closed_by_finish() {
        let ctx = TraceCtx::new();
        let guard = ctx.span("eval");
        let t = ctx.finish("timeout", 0).expect("trace");
        drop(guard); // late drop must not panic or corrupt anything
        assert!(t.spans[0].dur_us <= t.total_us);
        assert_eq!(t.status, "timeout");
    }

    #[test]
    fn counters_and_tags_accumulate() {
        let ctx = TraceCtx::new();
        ctx.count("rows_scanned", 10);
        ctx.count("rows_scanned", 5);
        ctx.tag("rewriting", "PerfectRef");
        ctx.tag("rewriting", "Presto");
        let t = ctx.finish("ok", 0).expect("trace");
        assert_eq!(t.counter("rows_scanned"), 15);
        assert_eq!(t.tag("rewriting"), Some("Presto"));
    }

    #[test]
    fn timings_line_has_the_legacy_shape() {
        let ctx = TraceCtx::new();
        ctx.tag("rewriting", "PerfectRef");
        ctx.tag("data", "Materialized");
        {
            let r = ctx.span("rewrite");
            r.count("ucq_raw", 12);
            r.count("ucq_pruned", 4);
        }
        {
            let e = ctx.span("eval");
            e.count("threads", 2);
        }
        let t = ctx.finish("ok", 42).expect("trace");
        let line = t.timings_line();
        assert!(line.starts_with("mastro-timings rewriting=PerfectRef data=Materialized"));
        assert!(line.contains("cache=miss"));
        assert!(line.contains("ucq=12"));
        assert!(line.contains("pruned=4"));
        assert!(line.contains("threads=2"));
        assert!(line.contains("answers=42"));
    }

    #[test]
    fn json_line_is_escaped() {
        let ctx = TraceCtx::new();
        ctx.set_query("q(x) :- \"weird\"\n");
        let t = ctx.finish("ok", 1).expect("trace");
        let line = t.to_json_line();
        assert!(line.contains("\\\"weird\\\"\\n"));
        assert!(line.starts_with("{\"trace\":"));
        assert!(line.ends_with("]}"));
    }
}
