//! **Semantic approximation** into DL-Lite (Section 7).
//!
//! The paper's proposal: "treat each OWL axiom α of the original ontology
//! in isolation, and compute, through the use of an OWL reasoner, all
//! DL-Lite axioms constructible over the signature of α that are inferred
//! by α". The OWL reasoner here is the workspace's ALCHI tableau.
//!
//! Two methods:
//!
//! * [`semantic_approximation`] — the paper's per-axiom method: sound by
//!   construction (each emitted axiom is entailed by one source axiom),
//!   fast (each entailment test sees a one-axiom ontology over a tiny
//!   signature), but possibly incomplete for consequences that need
//!   several source axioms *together*;
//! * [`global_semantic_approximation`] — the reference: every DL-Lite
//!   axiom over the whole signature entailed by the whole ontology.
//!   Complete but quadratic in the signature with a full tableau test per
//!   candidate; used by `eval` and the A3 ablation to measure the
//!   per-axiom method's recall.

use obda_dllite::{Axiom, BasicConcept, BasicRole, ConceptId, GeneralConcept, RoleId, Tbox};
use obda_owl::Ontology;
use obda_owl::{axiom_to_owl, OwlAxiom};
use obda_reasoners::{Budget, Tableau, TableauKb, Timeout};

/// Outcome of a semantic approximation.
#[derive(Debug, Clone)]
pub struct SemanticResult {
    /// The approximated TBox (over the source ontology's signature ids).
    pub tbox: Tbox,
    /// Number of tableau entailment tests performed.
    pub entailment_tests: usize,
}

/// Candidate DL-Lite axioms over a restricted signature slice.
fn candidates(concepts: &[ConceptId], roles: &[RoleId]) -> Vec<Axiom> {
    let mut basics: Vec<BasicConcept> = concepts.iter().map(|&a| BasicConcept::Atomic(a)).collect();
    let mut basic_roles: Vec<BasicRole> = Vec::new();
    for &p in roles {
        basic_roles.push(BasicRole::Direct(p));
        basic_roles.push(BasicRole::Inverse(p));
        basics.push(BasicConcept::exists(p));
        basics.push(BasicConcept::exists_inv(p));
    }
    let mut out = Vec::new();
    for &b1 in &basics {
        for &b2 in &basics {
            if b1 != b2 {
                out.push(Axiom::ConceptIncl(b1, GeneralConcept::Basic(b2)));
            }
            out.push(Axiom::ConceptIncl(b1, GeneralConcept::Neg(b2)));
        }
        for &q in &basic_roles {
            for &a in concepts {
                out.push(Axiom::ConceptIncl(b1, GeneralConcept::QualExists(q, a)));
            }
        }
    }
    for &q1 in &basic_roles {
        for &q2 in &basic_roles {
            if q1 != q2 {
                out.push(Axiom::role(q1, q2));
            }
            out.push(Axiom::role_neg(q1, q2));
        }
    }
    out
}

/// The paper's per-axiom semantic approximation.
///
/// Data-property axioms and already-QL axioms take the fast structural
/// path (converted directly); everything else goes through candidate
/// enumeration over its own signature against the single-axiom tableau.
pub fn semantic_approximation(onto: &Ontology, budget: Budget) -> Result<SemanticResult, Timeout> {
    let mut tbox = Tbox::with_signature(onto.sig.clone());
    let mut tests = 0usize;
    for ax in onto.axioms() {
        // Fast path: the axiom is QL-expressible as-is.
        if let Ok(axs) = obda_owl::axiom_to_dllite(ax) {
            for a in axs {
                tbox.add(a);
            }
            continue;
        }
        // Per-axiom tableau oracle.
        let mut single = Ontology::with_signature(onto.sig.clone());
        single.add(ax.clone());
        let kb = TableauKb::new(&single);
        let mut tab = Tableau::new(&kb);
        let mut concepts = Vec::new();
        let mut roles = Vec::new();
        let mut attrs = Vec::new();
        ax.collect_signature(&mut concepts, &mut roles, &mut attrs);
        concepts.sort_unstable();
        concepts.dedup();
        roles.sort_unstable();
        roles.dedup();
        for cand in candidates(&concepts, &roles) {
            tests += 1;
            let owl_cand = axiom_to_owl(&cand);
            if tab.entails(&owl_cand, budget)? {
                tbox.add(cand);
            }
        }
    }
    Ok(SemanticResult {
        tbox,
        entailment_tests: tests,
    })
}

/// The complete (and expensive) reference: all DL-Lite axioms over the
/// whole signature entailed by the whole ontology.
pub fn global_semantic_approximation(
    onto: &Ontology,
    budget: Budget,
) -> Result<SemanticResult, Timeout> {
    let kb = TableauKb::new(onto);
    let mut tab = Tableau::new(&kb);
    let mut tbox = Tbox::with_signature(onto.sig.clone());
    let concepts: Vec<ConceptId> = onto.sig.concepts().collect();
    let roles: Vec<RoleId> = onto.sig.roles().collect();
    let mut tests = 0usize;
    for cand in candidates(&concepts, &roles) {
        tests += 1;
        if tab.entails(&axiom_to_owl(&cand), budget)? {
            tbox.add(cand);
        }
    }
    // Data-property axioms are structural in this fragment: their QL
    // conversions are entailed iff asserted (no class interaction), so
    // copy them over.
    for ax in onto.axioms() {
        if matches!(
            ax,
            OwlAxiom::SubDataPropertyOf(_, _)
                | OwlAxiom::DisjointDataProperties(_, _)
                | OwlAxiom::DataPropertyDomain(_, _)
        ) {
            if let Ok(axs) = obda_owl::axiom_to_dllite(ax) {
                for a in axs {
                    tbox.add(a);
                }
            }
        }
    }
    Ok(SemanticResult {
        tbox,
        entailment_tests: tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owl::parse_owl;

    fn approx(src: &str) -> (Ontology, Tbox) {
        let o = parse_owl(src).unwrap();
        let r = semantic_approximation(&o, Budget::default()).unwrap();
        (o, r.tbox)
    }

    fn has(t: &Tbox, o: &Ontology, src_axiom: &str) -> bool {
        // Parse a probe axiom in the same signature context.
        let mut probe_src = String::new();
        if o.sig.num_concepts() > 0 {
            probe_src.push_str("concept");
            for c in o.sig.concepts() {
                probe_src.push(' ');
                probe_src.push_str(o.sig.concept_name(c));
            }
            probe_src.push('\n');
        }
        if o.sig.num_roles() > 0 {
            probe_src.push_str("role");
            for r in o.sig.roles() {
                probe_src.push(' ');
                probe_src.push_str(o.sig.role_name(r));
            }
            probe_src.push('\n');
        }
        probe_src.push_str(src_axiom);
        let probe = obda_dllite::parse_tbox(&probe_src).unwrap();
        t.contains(&probe.axioms()[0])
    }

    #[test]
    fn union_equivalence_yields_ql_part() {
        // A ≡ B ⊔ C is not QL; its QL consequences B ⊑ A and C ⊑ A must
        // survive semantic approximation.
        let (o, t) = approx("EquivalentClasses(A ObjectUnionOf(B C))");
        assert!(has(&t, &o, "B [= A"));
        assert!(has(&t, &o, "C [= A"));
        assert!(!has(&t, &o, "A [= B"));
    }

    #[test]
    fn universal_range_yields_nothing_positive() {
        // A ⊑ ∀p.B alone entails no non-trivial DL-Lite inclusion over
        // {A, p, B} (without ∃p on the left it is vacuous).
        let (_, t) = approx("SubClassOf(A ObjectAllValuesFrom(p B))");
        assert!(t.is_empty(), "{:?}", t.axioms());
    }

    #[test]
    fn qualified_existential_consequences() {
        // A ⊑ ∃p.(B ⊓ C): not QL (filler is an intersection), but each
        // weakening A ⊑ ∃p.B, A ⊑ ∃p.C, A ⊑ ∃p is.
        let (o, t) = approx("SubClassOf(A ObjectSomeValuesFrom(p ObjectIntersectionOf(B C)))");
        assert!(has(&t, &o, "A [= exists p"));
        assert!(has(&t, &o, "A [= exists p . B"));
        assert!(has(&t, &o, "A [= exists p . C"));
    }

    #[test]
    fn complement_rhs_yields_disjointness() {
        // A ⊑ ¬(B ⊔ C) is not QL (complement of a union); consequences
        // A ⊑ ¬B, A ⊑ ¬C are.
        let (o, t) = approx("SubClassOf(A ObjectComplementOf(ObjectUnionOf(B C)))");
        assert!(has(&t, &o, "A [= not B"));
        assert!(has(&t, &o, "A [= not C"));
    }

    #[test]
    fn per_axiom_misses_cross_axiom_consequences() {
        // A ⊑ B ⊔ C and B ⊑ D and C ⊑ D jointly entail A ⊑ D, but no
        // single axiom does: the per-axiom method misses it, the global
        // method catches it. (This is the recall gap eval measures.)
        let src = "SubClassOf(A ObjectUnionOf(B C))\nSubClassOf(B D)\nSubClassOf(C D)";
        let o = parse_owl(src).unwrap();
        let per_axiom = semantic_approximation(&o, Budget::default()).unwrap();
        let global = global_semantic_approximation(&o, Budget::default()).unwrap();
        assert!(!has(&per_axiom.tbox, &o, "A [= D"));
        assert!(has(&global.tbox, &o, "A [= D"));
    }

    #[test]
    fn ql_axioms_take_the_fast_path() {
        let o = parse_owl("SubClassOf(A B)\nObjectPropertyDomain(p A)").unwrap();
        let r = semantic_approximation(&o, Budget::default()).unwrap();
        assert_eq!(r.entailment_tests, 0);
        assert_eq!(r.tbox.len(), 2);
    }
}
