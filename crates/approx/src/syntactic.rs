//! **Syntactic approximation**: keep the axioms that already lie in
//! OWL 2 QL, drop the rest.
//!
//! As the paper notes, this is fast and simple but "does not, in general,
//! guarantee soundness … or completeness" as a *semantic* approximation —
//! concretely, it silently loses every consequence of the dropped axioms,
//! including their QL-expressible ones. The `eval` module measures that
//! loss against the semantic method.

use obda_dllite::Tbox;
use obda_owl::{split_ql, Ontology};

/// Result of a syntactic approximation.
#[derive(Debug, Clone)]
pub struct SyntacticResult {
    /// The approximated TBox (converted QL axioms).
    pub tbox: Tbox,
    /// Indices (into the source ontology's axiom list) of dropped,
    /// non-QL axioms.
    pub dropped: Vec<usize>,
}

/// Approximates `onto` by keeping its QL axioms.
pub fn syntactic_approximation(onto: &Ontology) -> SyntacticResult {
    let (tbox, dropped) = split_ql(onto);
    SyntacticResult { tbox, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owl::parse_owl;

    #[test]
    fn keeps_ql_drops_rest() {
        let o = parse_owl(
            "SubClassOf(A B)\n\
             SubClassOf(ObjectUnionOf(A B) C)\n\
             SubClassOf(A ObjectAllValuesFrom(p B))\n\
             ObjectPropertyDomain(p A)",
        )
        .unwrap();
        let r = syntactic_approximation(&o);
        assert_eq!(r.dropped, vec![1, 2]);
        assert_eq!(r.tbox.len(), 2);
    }

    #[test]
    fn loses_ql_consequences_of_dropped_axioms() {
        // A ⊑ B ⊓ C is QL-expressible *in consequence* (A ⊑ B, A ⊑ C)
        // but our grammar keeps it as intersection — it is QL and kept.
        // A genuinely lossy case: A ≡ B ⊔ C entails B ⊑ A (QL!), but the
        // whole axiom is dropped syntactically.
        let o = parse_owl("EquivalentClasses(A ObjectUnionOf(B C))").unwrap();
        let r = syntactic_approximation(&o);
        assert_eq!(r.dropped, vec![0]);
        assert!(r.tbox.is_empty(), "the B ⊑ A consequence was lost");
    }
}
