//! Evaluation harness for approximation quality (feeds the A3 ablation):
//! soundness (every emitted axiom entailed by the source ontology) and
//! recall of each method against the complete global approximation.

use obda_owl::{axiom_to_owl, Ontology};
use obda_reasoners::{Budget, Tableau, TableauKb, Timeout};

use crate::semantic::{global_semantic_approximation, semantic_approximation};
use crate::syntactic::syntactic_approximation;

/// Quality metrics of the three approximation methods on one ontology.
#[derive(Debug, Clone)]
pub struct ApproxReport {
    /// Axioms in the syntactic approximation.
    pub syntactic_axioms: usize,
    /// Axioms in the per-axiom semantic approximation.
    pub semantic_axioms: usize,
    /// Axioms in the global (reference) approximation.
    pub global_axioms: usize,
    /// Fraction of global axioms captured syntactically.
    pub syntactic_recall: f64,
    /// Fraction of global axioms captured by the per-axiom method.
    pub semantic_recall: f64,
    /// Entailment tests burned by the per-axiom method.
    pub semantic_tests: usize,
    /// Entailment tests burned by the global method.
    pub global_tests: usize,
}

/// Computes the report. Recall is measured **modulo DL-Lite
/// entailment**: a global axiom counts as captured when the approximated
/// TBox *entails* it (decided by the graph-based implication service) —
/// membership would unfairly penalize methods that emit a smaller,
/// equivalent axiom set.
pub fn evaluate(onto: &Ontology, budget: Budget) -> Result<ApproxReport, Timeout> {
    let syn = syntactic_approximation(onto);
    let sem = semantic_approximation(onto, budget)?;
    let global = global_semantic_approximation(onto, budget)?;
    let captured = |t: &obda_dllite::Tbox| -> usize {
        let cls = quonto::Classification::classify(t);
        let imp = quonto::Implication::new(&cls);
        global
            .tbox
            .axioms()
            .iter()
            .filter(|a| imp.entails(a))
            .count()
    };
    let denom = global.tbox.len().max(1) as f64;
    Ok(ApproxReport {
        syntactic_axioms: syn.tbox.len(),
        semantic_axioms: sem.tbox.len(),
        global_axioms: global.tbox.len(),
        syntactic_recall: captured(&syn.tbox) as f64 / denom,
        semantic_recall: captured(&sem.tbox) as f64 / denom,
        semantic_tests: sem.entailment_tests,
        global_tests: global.entailment_tests,
    })
}

/// Soundness check: every axiom of the approximated TBox must be entailed
/// by the source ontology. Returns offending axioms (empty = sound).
pub fn unsound_axioms(
    onto: &Ontology,
    approx: &obda_dllite::Tbox,
    budget: Budget,
) -> Result<Vec<obda_dllite::Axiom>, Timeout> {
    let kb = TableauKb::new(onto);
    let mut tab = Tableau::new(&kb);
    let mut out = Vec::new();
    for ax in approx.axioms() {
        if !tab.entails(&axiom_to_owl(ax), budget)? {
            out.push(*ax);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owl::parse_owl;

    #[test]
    fn semantic_beats_syntactic_on_unions() {
        let src = "EquivalentClasses(A ObjectUnionOf(B C))\nSubClassOf(B D)\nSubClassOf(C D)";
        let o = parse_owl(src).unwrap();
        let report = evaluate(&o, Budget::default()).unwrap();
        assert!(report.semantic_recall > report.syntactic_recall);
        assert!(
            report.semantic_recall < 1.0,
            "A ⊑ D needs cross-axiom reasoning"
        );
        assert!(report.semantic_tests < report.global_tests);
    }

    #[test]
    fn both_methods_are_sound() {
        let src = "EquivalentClasses(A ObjectUnionOf(B C))\n\
                   SubClassOf(A ObjectSomeValuesFrom(p ObjectIntersectionOf(B C)))\n\
                   DisjointClasses(B C)";
        let o = parse_owl(src).unwrap();
        let sem = crate::semantic::semantic_approximation(&o, Budget::default()).unwrap();
        assert!(unsound_axioms(&o, &sem.tbox, Budget::default())
            .unwrap()
            .is_empty());
        let syn = crate::syntactic::syntactic_approximation(&o);
        assert!(unsound_axioms(&o, &syn.tbox, Budget::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn pure_ql_ontology_has_full_recall_everywhere() {
        let src = "SubClassOf(A B)\nObjectPropertyDomain(p A)\nSubObjectPropertyOf(p r)";
        let o = parse_owl(src).unwrap();
        let report = evaluate(&o, Budget::default()).unwrap();
        assert_eq!(report.semantic_recall, 1.0);
        assert_eq!(report.syntactic_recall, 1.0);
    }
}
