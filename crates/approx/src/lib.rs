//! # obda-approx
//!
//! Ontology approximation into DL-Lite (Section 7 of the paper):
//! fulfilling "the OBDA requirement of efficiently accessing large data
//! bases" by approximating expressive (ALCHI/OWL) ontologies into the
//! OWL 2 QL fragment.
//!
//! * [`syntactic`]: keep-the-QL-axioms baseline — fast, lossy;
//! * [`semantic`]: the paper's per-axiom semantic approximation driven by
//!   the ALCHI tableau oracle, plus the complete (expensive) global
//!   reference;
//! * [`eval`]: soundness checking and recall measurement (the A3
//!   ablation).

pub mod eval;
pub mod semantic;
pub mod syntactic;

pub use eval::{evaluate, unsound_axioms, ApproxReport};
pub use semantic::{global_semantic_approximation, semantic_approximation, SemanticResult};
pub use syntactic::{syntactic_approximation, SyntacticResult};
