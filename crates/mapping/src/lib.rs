//! # obda-mapping
//!
//! The OBDA mapping layer — "the semantic correspondence between the
//! unified view of the domain and the data stored at the sources"
//! (Section 1 of the paper):
//!
//! * [`assertion`]: GAV mapping assertions (SQL body → ontology-atom
//!   heads with IRI templates), validation against source schemas, and a
//!   design-time lint for unmapped predicates;
//! * [`materialize`]: virtual-ABox materialization ("ABox mode").
//!
//! Query *unfolding* (the "virtual mode" that never materializes) lives
//! in `mastro::rewrite::unfold`, which combines per-atom sources from
//! [`assertion::MappingSet`] into flat SQL joins.

pub mod assertion;
pub mod materialize;

pub use assertion::{IriTemplate, MappingAssertion, MappingHead, MappingSet};
pub use materialize::{materialize, materialize_with_stats, MaterializeStats};
