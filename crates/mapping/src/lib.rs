//! # obda-mapping
//!
//! The OBDA mapping layer — "the semantic correspondence between the
//! unified view of the domain and the data stored at the sources"
//! (Section 1 of the paper):
//!
//! * [`assertion`]: GAV mapping assertions (SQL body → ontology-atom
//!   heads with IRI templates), validation against source schemas, and a
//!   design-time lint for unmapped predicates;
//! * [`materialize`]: virtual-ABox materialization ("ABox mode");
//! * [`ebox`]: extensional constraints (inclusion dependencies, empty
//!   and exact extensions) over the asserted data, used to prune
//!   rewritings and unfoldings (Hovland et al., PAPERS.md).
//!
//! Query *unfolding* (the "virtual mode" that never materializes) lives
//! in `mastro::rewrite::unfold`, which combines per-atom sources from
//! [`assertion::MappingSet`] into flat SQL joins.

pub mod assertion;
pub mod ebox;
pub mod materialize;

pub use assertion::{IriTemplate, MappingAssertion, MappingHead, MappingSet};
pub use ebox::{Ebox, EboxInclusion, EboxPredicate};
pub use materialize::{materialize, materialize_with_stats, MaterializeStats};
