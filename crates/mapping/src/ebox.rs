//! **EBox**: extensional constraints over the asserted data, following
//! Hovland et al. ("OBDA Constraints for Effective Query Answering").
//!
//! A TBox axiom `B ⊑ A` speaks about *all models*; an EBox inclusion
//! `B ⊑ₑ A` speaks about the *current asserted data only*: every tuple
//! asserted for `B` is also asserted for `A`. Such constraints are not
//! part of the ontology — they are observations about one concrete data
//! state (or guarantees of the mapping layer) — but while they hold,
//! rewriting disjuncts, view members and unfolding unions whose
//! extension is provably covered by a kept branch can be dropped
//! without changing any answer, because every evaluation path of the
//! system (index lookups, view evaluation, SQL unions) runs over the
//! asserted data.
//!
//! Three constraint kinds are stored:
//!
//! * **inclusions** `sub ⊑ₑ sup` between [`EboxPredicate`]s of the same
//!   sort (unary ⊑ unary, role ⊑ role, attribute ⊑ attribute), closed
//!   under transitivity;
//! * **empties**: predicates whose asserted extension is empty — the
//!   strongest inclusion (`∅ ⊑ₑ` everything), kept separately because
//!   it prunes without needing a covering partner;
//! * **exact** annotations: named predicates whose asserted extension
//!   already contains every certain member, recorded together with the
//!   *support set* of inclusions that justify them so a retraction of
//!   any supporting inclusion retracts the annotation too.
//!
//! The type is pure data: inference, validation against a live
//! `AboxIndex`/`DataEpoch` and write-path revalidation live in
//! `mastro::ebox` (the `obda` crate), which owns the data structures
//! being scanned.

use std::collections::{BTreeSet, HashMap, HashSet};

use obda_dllite::{AttributeId, BasicConcept, BasicRole, NamedPredicate};

/// A predicate an EBox constraint can mention: a unary set of
/// individuals (any basic concept — atomic, `∃Q`, or `δ(U)`), an
/// orientation-aware role extension, or an attribute extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EboxPredicate {
    /// A set of individuals: `A`, `∃Q`, or `δ(U)` over asserted data.
    Concept(BasicConcept),
    /// The asserted pair set of a basic role (`P` or `P⁻`).
    Role(BasicRole),
    /// The asserted subject/value pair set of an attribute.
    Attribute(AttributeId),
}

impl EboxPredicate {
    /// Sort discriminant: inclusions are only meaningful within a sort.
    fn sort(self) -> u8 {
        match self {
            EboxPredicate::Concept(_) => 0,
            EboxPredicate::Role(_) => 1,
            EboxPredicate::Attribute(_) => 2,
        }
    }

    /// The named predicate whose asserted facts this extension is read
    /// from — the key write-path revalidation uses to find constraints
    /// affected by a delta fact.
    pub fn source_predicate(self) -> NamedPredicate {
        match self {
            EboxPredicate::Concept(BasicConcept::Atomic(a)) => NamedPredicate::Concept(a),
            EboxPredicate::Concept(BasicConcept::Exists(q)) => NamedPredicate::Role(q.role()),
            EboxPredicate::Concept(BasicConcept::AttrDomain(u)) => NamedPredicate::Attribute(u),
            EboxPredicate::Role(q) => NamedPredicate::Role(q.role()),
            EboxPredicate::Attribute(u) => NamedPredicate::Attribute(u),
        }
    }

    /// Whether the extension is determined by facts *keyed on their
    /// subject individual*: concept memberships, direct-role subjects,
    /// attribute subjects. Under subject-hash sharding these extensions
    /// partition by the same key on every shard, so a containment that
    /// holds on each shard holds globally. `∃P⁻` and inverse-oriented
    /// role extensions are keyed on the *object* and are excluded from
    /// per-shard validation.
    pub fn subject_local(self) -> bool {
        !matches!(
            self,
            EboxPredicate::Concept(BasicConcept::Exists(BasicRole::Inverse(_)))
                | EboxPredicate::Role(BasicRole::Inverse(_))
        )
    }
}

/// One inclusion dependency `sub ⊑ₑ sup` over asserted extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EboxInclusion {
    /// The contained extension.
    pub sub: EboxPredicate,
    /// The containing extension.
    pub sup: EboxPredicate,
}

/// Extensional constraints over the current data state. See the module
/// docs for semantics; construction and maintenance protocol:
///
/// * inference adds base inclusions ([`Ebox::add_inclusion`]), empties
///   ([`Ebox::set_empty`]) and exact annotations with their support
///   ([`Ebox::set_exact`]);
/// * lookups go through [`Ebox::contains`] (reflexive-transitive) and
///   [`Ebox::is_empty_pred`];
/// * the write path calls [`Ebox::retract_about`] with the named
///   predicates touched by a violating delta; the transitive closure is
///   rebuilt from the surviving base inclusions and exact annotations
///   whose support lost a member are dropped.
#[derive(Debug, Clone, Default)]
pub struct Ebox {
    base: Vec<EboxInclusion>,
    base_set: HashSet<EboxInclusion>,
    closed: HashSet<(EboxPredicate, EboxPredicate)>,
    empty: BTreeSet<EboxPredicate>,
    exact: HashMap<NamedPredicate, Vec<EboxInclusion>>,
}

impl Ebox {
    /// An EBox with no constraints (prunes nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a base inclusion and updates the transitive closure.
    /// Cross-sort pairs and trivial `x ⊑ₑ x` pairs are ignored. Returns
    /// `true` if the inclusion was new.
    pub fn add_inclusion(&mut self, sub: EboxPredicate, sup: EboxPredicate) -> bool {
        if sub.sort() != sup.sort() || sub == sup {
            return false;
        }
        let incl = EboxInclusion { sub, sup };
        if !self.base_set.insert(incl) {
            return false;
        }
        self.base.push(incl);
        // Incremental transitive closure: everything reaching `sub` now
        // also reaches everything reachable from `sup`.
        let into_sub: Vec<EboxPredicate> = self
            .closed
            .iter()
            .filter(|(_, b)| *b == sub)
            .map(|(a, _)| *a)
            .chain([sub])
            .collect();
        let from_sup: Vec<EboxPredicate> = self
            .closed
            .iter()
            .filter(|(a, _)| *a == sup)
            .map(|(_, b)| *b)
            .chain([sup])
            .collect();
        for &a in &into_sub {
            for &b in &from_sup {
                if a != b {
                    self.closed.insert((a, b));
                }
            }
        }
        true
    }

    /// Records that `pred`'s asserted extension is empty.
    pub fn set_empty(&mut self, pred: EboxPredicate) {
        self.empty.insert(pred);
    }

    /// Records an exact-extension annotation for a named predicate with
    /// the base inclusions that justify it. The annotation survives
    /// only as long as every supporting inclusion does.
    pub fn set_exact(&mut self, pred: NamedPredicate, support: Vec<EboxInclusion>) {
        self.exact.insert(pred, support);
    }

    /// Whether `sub ⊑ₑ sup` holds: reflexivity, an empty `sub`, or a
    /// (transitively closed) stored inclusion.
    pub fn contains(&self, sub: EboxPredicate, sup: EboxPredicate) -> bool {
        if sub.sort() != sup.sort() {
            return false;
        }
        sub == sup || self.empty.contains(&sub) || self.closed.contains(&(sub, sup))
    }

    /// Whether `pred`'s asserted extension is known to be empty.
    pub fn is_empty_pred(&self, pred: EboxPredicate) -> bool {
        self.empty.contains(&pred)
    }

    /// Whether `pred` carries an exact-extension annotation.
    pub fn is_exact(&self, pred: NamedPredicate) -> bool {
        self.exact.contains_key(&pred)
    }

    /// Whether `incl` is one of the *base* inclusions (not merely
    /// derivable through the closure) — exactness inference uses this to
    /// assemble support sets out of inclusions it actually checked
    /// against the data.
    pub fn has_inclusion(&self, incl: EboxInclusion) -> bool {
        self.base_set.contains(&incl)
    }

    /// Base inclusions, in insertion order.
    pub fn inclusions(&self) -> &[EboxInclusion] {
        &self.base
    }

    /// Known-empty predicates, ascending.
    pub fn empties(&self) -> impl Iterator<Item = &EboxPredicate> {
        self.empty.iter()
    }

    /// Exact-annotated predicates (unordered).
    pub fn exact_predicates(&self) -> impl Iterator<Item = &NamedPredicate> {
        self.exact.keys()
    }

    /// Number of base inclusions.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the EBox holds no constraints of any kind.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.empty.is_empty() && self.exact.is_empty()
    }

    /// Total constraint count (inclusions + empties + exacts), the
    /// number reported by engine stats.
    pub fn constraint_count(&self) -> usize {
        self.base.len() + self.empty.len() + self.exact.len()
    }

    /// Retracts every constraint whose validity can depend on the
    /// asserted facts of any predicate in `touched`: inclusions whose
    /// sub or sup reads from a touched predicate, empties over a
    /// touched predicate, and exact annotations that either mention a
    /// touched predicate or lose a supporting inclusion. Returns the
    /// number of constraints removed; the closure is rebuilt from the
    /// survivors.
    pub fn retract_about(&mut self, touched: &HashSet<NamedPredicate>) -> usize {
        if touched.is_empty() {
            return 0;
        }
        let before = self.constraint_count();
        self.base.retain(|i| {
            !touched.contains(&i.sub.source_predicate())
                && !touched.contains(&i.sup.source_predicate())
        });
        self.base_set = self.base.iter().copied().collect();
        self.empty
            .retain(|p| !touched.contains(&p.source_predicate()));
        let base_set = &self.base_set;
        self.exact.retain(|pred, support| {
            !touched.contains(pred) && support.iter().all(|i| base_set.contains(i))
        });
        self.rebuild_closure();
        before - self.constraint_count()
    }

    /// Retracts exactly the given inclusions and empties (the ones a
    /// write-path probe found violated), drops exact annotations whose
    /// support lost a member, and rebuilds the closure. Returns the
    /// number of constraints removed. Finer-grained than
    /// [`Ebox::retract_about`]: constraints over touched predicates that
    /// the probes re-validated survive.
    pub fn retract_specific(
        &mut self,
        incls: &HashSet<EboxInclusion>,
        empties: &HashSet<EboxPredicate>,
    ) -> usize {
        if incls.is_empty() && empties.is_empty() {
            return 0;
        }
        let before = self.constraint_count();
        self.base.retain(|i| !incls.contains(i));
        self.base_set = self.base.iter().copied().collect();
        self.empty.retain(|p| !empties.contains(p));
        let base_set = &self.base_set;
        self.exact
            .retain(|_, support| support.iter().all(|i| base_set.contains(i)));
        self.rebuild_closure();
        before - self.constraint_count()
    }

    /// Restricts the EBox to constraints whose every predicate is
    /// subject-local (see [`EboxPredicate::subject_local`]) — the forms
    /// a sharded deployment can validate per shard. Exact annotations
    /// are kept only if their full support survives.
    pub fn restrict_subject_local(&self) -> Ebox {
        let mut out = Ebox::new();
        for i in &self.base {
            if i.sub.subject_local() && i.sup.subject_local() {
                out.add_inclusion(i.sub, i.sup);
            }
        }
        for p in &self.empty {
            if p.subject_local() {
                out.set_empty(*p);
            }
        }
        for (pred, support) in &self.exact {
            if support.iter().all(|i| out.base_set.contains(i)) {
                out.set_exact(*pred, support.clone());
            }
        }
        out
    }

    /// Intersects with another EBox (constraints valid in both), used
    /// by the sharded coordinator to combine per-shard inferences.
    /// Exact annotations are kept only where their support survives the
    /// intersection.
    pub fn intersect(&self, other: &Ebox) -> Ebox {
        let mut out = Ebox::new();
        for i in &self.base {
            if other.base_set.contains(i) {
                out.add_inclusion(i.sub, i.sup);
            }
        }
        for p in &self.empty {
            if other.empty.contains(p) {
                out.set_empty(*p);
            }
        }
        for (pred, support) in &self.exact {
            if other.exact.contains_key(pred) && support.iter().all(|i| out.base_set.contains(i)) {
                out.set_exact(*pred, support.clone());
            }
        }
        out
    }

    fn rebuild_closure(&mut self) {
        self.closed.clear();
        // Floyd–Warshall-style saturation over the (small) base set.
        for i in &self.base {
            self.closed.insert((i.sub, i.sup));
        }
        loop {
            let mut added = Vec::new();
            for (a, b) in &self.closed {
                for (c, d) in &self.closed {
                    if b == c && a != d && !self.closed.contains(&(*a, *d)) {
                        added.push((*a, *d));
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            for pair in added {
                self.closed.insert(pair);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_dllite::{ConceptId, RoleId};

    fn c(i: u32) -> EboxPredicate {
        EboxPredicate::Concept(BasicConcept::Atomic(ConceptId(i)))
    }

    fn exists(i: u32) -> EboxPredicate {
        EboxPredicate::Concept(BasicConcept::exists(RoleId(i)))
    }

    fn exists_inv(i: u32) -> EboxPredicate {
        EboxPredicate::Concept(BasicConcept::exists_inv(RoleId(i)))
    }

    fn r(i: u32) -> EboxPredicate {
        EboxPredicate::Role(BasicRole::Direct(RoleId(i)))
    }

    #[test]
    fn contains_is_reflexive_and_transitive() {
        let mut e = Ebox::new();
        assert!(e.add_inclusion(c(0), c(1)));
        assert!(e.add_inclusion(c(1), c(2)));
        assert!(!e.add_inclusion(c(0), c(1)), "duplicate ignored");
        assert!(e.contains(c(0), c(0)));
        assert!(e.contains(c(0), c(2)), "transitive through c1");
        assert!(!e.contains(c(2), c(0)));
    }

    #[test]
    fn cross_sort_inclusions_are_rejected() {
        let mut e = Ebox::new();
        assert!(!e.add_inclusion(c(0), r(0)));
        assert!(!e.contains(c(0), r(0)));
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn empty_predicates_are_contained_in_everything() {
        let mut e = Ebox::new();
        e.set_empty(c(3));
        assert!(e.contains(c(3), c(9)));
        assert!(e.is_empty_pred(c(3)));
        assert!(!e.contains(c(9), c(3)));
    }

    #[test]
    fn retraction_removes_dependent_constraints_and_reclosures() {
        let mut e = Ebox::new();
        e.add_inclusion(c(0), c(1));
        e.add_inclusion(c(1), c(2));
        e.add_inclusion(exists(0), c(2));
        e.set_empty(c(1));
        e.set_exact(
            NamedPredicate::Concept(ConceptId(2)),
            vec![EboxInclusion {
                sub: c(1),
                sup: c(2),
            }],
        );
        let touched: HashSet<NamedPredicate> = [NamedPredicate::Concept(ConceptId(1))]
            .into_iter()
            .collect();
        let removed = e.retract_about(&touched);
        // Both inclusions through c1, the empty on c1, and the exact
        // annotation whose support used c1 ⊑ c2 all go.
        assert_eq!(removed, 4);
        assert!(!e.contains(c(0), c(2)), "closure rebuilt without c1 path");
        assert!(e.contains(exists(0), c(2)), "unrelated constraint survives");
        assert!(!e.is_exact(NamedPredicate::Concept(ConceptId(2))));
    }

    #[test]
    fn retraction_by_role_touches_exists_forms() {
        let mut e = Ebox::new();
        e.add_inclusion(exists(0), c(1));
        e.add_inclusion(exists_inv(0), c(2));
        let touched: HashSet<NamedPredicate> =
            [NamedPredicate::Role(RoleId(0))].into_iter().collect();
        assert_eq!(e.retract_about(&touched), 2);
        assert!(e.is_empty());
    }

    #[test]
    fn subject_local_restriction_drops_inverse_forms() {
        let mut e = Ebox::new();
        e.add_inclusion(exists(0), c(1));
        e.add_inclusion(exists_inv(0), c(1));
        e.add_inclusion(r(0), r(1));
        e.add_inclusion(EboxPredicate::Role(BasicRole::Inverse(RoleId(0))), r(1));
        let local = e.restrict_subject_local();
        assert!(local.contains(exists(0), c(1)));
        assert!(!local.contains(exists_inv(0), c(1)));
        assert!(local.contains(r(0), r(1)));
        assert!(!local.contains(EboxPredicate::Role(BasicRole::Inverse(RoleId(0))), r(1)));
    }

    #[test]
    fn intersection_keeps_common_constraints_only() {
        let mut a = Ebox::new();
        a.add_inclusion(c(0), c(1));
        a.add_inclusion(c(1), c(2));
        a.set_empty(c(5));
        a.set_exact(
            NamedPredicate::Concept(ConceptId(1)),
            vec![EboxInclusion {
                sub: c(0),
                sup: c(1),
            }],
        );
        let mut b = Ebox::new();
        b.add_inclusion(c(0), c(1));
        b.set_empty(c(5));
        b.set_empty(c(6));
        b.set_exact(
            NamedPredicate::Concept(ConceptId(1)),
            vec![EboxInclusion {
                sub: c(0),
                sup: c(1),
            }],
        );
        let i = a.intersect(&b);
        assert!(i.contains(c(0), c(1)));
        assert!(!i.contains(c(1), c(2)));
        assert!(i.is_empty_pred(c(5)));
        assert!(!i.is_empty_pred(c(6)));
        assert!(i.is_exact(NamedPredicate::Concept(ConceptId(1))));
    }

    #[test]
    fn exact_support_tracking() {
        let mut e = Ebox::new();
        e.add_inclusion(c(0), c(1));
        e.set_exact(
            NamedPredicate::Concept(ConceptId(1)),
            vec![EboxInclusion {
                sub: c(0),
                sup: c(1),
            }],
        );
        assert!(e.is_exact(NamedPredicate::Concept(ConceptId(1))));
        assert_eq!(e.constraint_count(), 2);
    }
}
