//! Virtual-ABox materialization: evaluating every mapping against the
//! sources and collecting the produced membership assertions.
//!
//! This is "ABox mode" OBDA: useful for moderate data sizes, for tests,
//! and as the baseline against unfolding in the A4 ablation.

use obda_dllite::{Abox, Value};
use obda_sqlstore::{Database, SqlError, SqlValue};

use crate::assertion::{MappingHead, MappingSet};

/// Evaluates all mappings over `db`, producing the virtual ABox.
pub fn materialize(mappings: &MappingSet, db: &Database) -> Result<Abox, SqlError> {
    let mut abox = Abox::new();
    for m in mappings.assertions() {
        let rs = db.query(&m.sql)?;
        let col = |name: &str| -> Result<usize, SqlError> {
            rs.columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| SqlError::new(format!("missing answer column `{name}`")))
        };
        for h in &m.heads {
            match h {
                MappingHead::Concept { concept, subject } => {
                    let s = col(&subject.column)?;
                    for row in &rs.rows {
                        if row[s].is_null() {
                            continue;
                        }
                        abox.assert_concept(*concept, &subject.render(&row[s]));
                    }
                }
                MappingHead::Role {
                    role,
                    subject,
                    object,
                } => {
                    let s = col(&subject.column)?;
                    let o = col(&object.column)?;
                    for row in &rs.rows {
                        if row[s].is_null() || row[o].is_null() {
                            continue;
                        }
                        abox.assert_role(*role, &subject.render(&row[s]), &object.render(&row[o]));
                    }
                }
                MappingHead::Attribute {
                    attribute,
                    subject,
                    value_column,
                } => {
                    let s = col(&subject.column)?;
                    let v = col(value_column)?;
                    for row in &rs.rows {
                        if row[s].is_null() || row[v].is_null() {
                            continue;
                        }
                        let value = match &row[v] {
                            SqlValue::Int(i) => Value::Int(*i),
                            SqlValue::Text(t) => Value::Text(t.clone()),
                            SqlValue::Null => unreachable!("filtered above"),
                        };
                        abox.assert_attribute(*attribute, &subject.render(&row[s]), value);
                    }
                }
            }
        }
    }
    Ok(abox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{IriTemplate, MappingAssertion};
    use obda_dllite::Signature;

    #[test]
    fn materializes_concepts_roles_attributes() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (id INT, boss INT, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, 2, 'ada'), (2, NULL, 'bob')")
            .unwrap();
        let mut sig = Signature::new();
        let person = sig.concept("Person");
        let reports = sig.role("reportsTo");
        let name = sig.attribute("name");
        let tpl = |col: &str| IriTemplate {
            prefix: "p/".into(),
            column: col.into(),
        };
        let mut ms = MappingSet::new();
        ms.add(MappingAssertion {
            sql: "SELECT id, boss, name FROM T".into(),
            heads: vec![
                MappingHead::Concept {
                    concept: person,
                    subject: tpl("id"),
                },
                MappingHead::Role {
                    role: reports,
                    subject: tpl("id"),
                    object: tpl("boss"),
                },
                MappingHead::Attribute {
                    attribute: name,
                    subject: tpl("id"),
                    value_column: "name".into(),
                },
            ],
        });
        let abox = materialize(&ms, &db).unwrap();
        assert_eq!(abox.concept_instances(person).count(), 2);
        // NULL boss row contributes no role assertion.
        assert_eq!(abox.role_instances(reports).count(), 1);
        assert_eq!(abox.attribute_instances(name).count(), 2);
        assert!(abox.find_individual("p/1").is_some());
        assert!(abox.find_individual("p/2").is_some());
    }

    #[test]
    fn shared_templates_unify_individuals() {
        let mut db = Database::new();
        db.execute("CREATE TABLE A (x INT)").unwrap();
        db.execute("CREATE TABLE B (y INT)").unwrap();
        db.execute("INSERT INTO A VALUES (7)").unwrap();
        db.execute("INSERT INTO B VALUES (7)").unwrap();
        let mut sig = Signature::new();
        let c1 = sig.concept("C1");
        let c2 = sig.concept("C2");
        let mut ms = MappingSet::new();
        ms.add(MappingAssertion {
            sql: "SELECT x FROM A".into(),
            heads: vec![MappingHead::Concept {
                concept: c1,
                subject: IriTemplate {
                    prefix: "p/".into(),
                    column: "x".into(),
                },
            }],
        });
        ms.add(MappingAssertion {
            sql: "SELECT y FROM B".into(),
            heads: vec![MappingHead::Concept {
                concept: c2,
                subject: IriTemplate {
                    prefix: "p/".into(),
                    column: "y".into(),
                },
            }],
        });
        let abox = materialize(&ms, &db).unwrap();
        // Same prefix + same value → one individual in both concepts.
        assert_eq!(abox.num_individuals(), 1);
        assert_eq!(abox.concept_instances(c1).count(), 1);
        assert_eq!(abox.concept_instances(c2).count(), 1);
    }
}
