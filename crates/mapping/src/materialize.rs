//! Virtual-ABox materialization: evaluating every mapping against the
//! sources and collecting the produced membership assertions.
//!
//! This is "ABox mode" OBDA: useful for moderate data sizes, for tests,
//! and as the baseline against unfolding in the A4 ablation.

use obda_dllite::{Abox, Value};
use obda_sqlstore::{Database, SqlError, SqlValue};

use crate::assertion::{MappingHead, MappingSet};

/// Per-run materialization counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Per mapping assertion (indexed like `MappingSet::assertions()`):
    /// how many (row, head) derivations were dropped because a
    /// head-referenced column was NULL — a NULL means the source had no
    /// value, so no assertion is derived from that row for that head.
    pub skipped_rows: Vec<u64>,
}

impl MaterializeStats {
    /// Total skipped rows across all mappings.
    pub fn total_skipped(&self) -> u64 {
        self.skipped_rows.iter().sum()
    }
}

// Process-wide skipped-rows counter, resolved once.
obda_obs::counter_handle!(fn skipped_total, "materialize.skipped_rows");

/// Evaluates all mappings over `db`, producing the virtual ABox.
pub fn materialize(mappings: &MappingSet, db: &Database) -> Result<Abox, SqlError> {
    materialize_with_stats(mappings, db).map(|(abox, _)| abox)
}

/// The columns a mapping head derives assertions from; a row is used by
/// that head iff all of them are non-NULL. Centralizing this is what
/// keeps NULL handling uniform across the three head shapes.
fn head_columns(
    h: &MappingHead,
    col: &impl Fn(&str) -> Result<usize, SqlError>,
) -> Result<Vec<usize>, SqlError> {
    match h {
        MappingHead::Concept { subject, .. } => Ok(vec![col(&subject.column)?]),
        MappingHead::Role {
            subject, object, ..
        } => Ok(vec![col(&subject.column)?, col(&object.column)?]),
        MappingHead::Attribute {
            subject,
            value_column,
            ..
        } => Ok(vec![col(&subject.column)?, col(value_column)?]),
    }
}

/// [`materialize`] plus per-mapping skipped-row counters. Skips are also
/// published to the metrics registry (`materialize.skipped_rows` total,
/// `materialize.skipped_rows.m{i}` per mapping with skips).
pub fn materialize_with_stats(
    mappings: &MappingSet,
    db: &Database,
) -> Result<(Abox, MaterializeStats), SqlError> {
    let mut abox = Abox::new();
    let mut stats = MaterializeStats::default();
    for (mi, m) in mappings.assertions().iter().enumerate() {
        let rs = db.query(&m.sql)?;
        let col = |name: &str| -> Result<usize, SqlError> {
            rs.columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| SqlError::new(format!("missing answer column `{name}`")))
        };
        let mut skipped = 0u64;
        for h in &m.heads {
            let required = head_columns(h, &col)?;
            for row in &rs.rows {
                if required.iter().any(|&i| row[i].is_null()) {
                    skipped += 1;
                    continue;
                }
                match h {
                    MappingHead::Concept { concept, subject } => {
                        abox.assert_concept(*concept, &subject.render(&row[required[0]]));
                    }
                    MappingHead::Role {
                        role,
                        subject,
                        object,
                    } => {
                        let (s, o) = (required[0], required[1]);
                        abox.assert_role(*role, &subject.render(&row[s]), &object.render(&row[o]));
                    }
                    MappingHead::Attribute {
                        attribute, subject, ..
                    } => {
                        let (s, v) = (required[0], required[1]);
                        let value = match &row[v] {
                            SqlValue::Int(i) => Value::Int(*i),
                            SqlValue::Text(t) => Value::Text(t.clone()),
                            SqlValue::Null => unreachable!("filtered above"),
                        };
                        abox.assert_attribute(*attribute, &subject.render(&row[s]), value);
                    }
                }
            }
        }
        if skipped > 0 {
            skipped_total().add(skipped);
            obda_obs::registry().add(&format!("materialize.skipped_rows.m{mi}"), skipped);
        }
        stats.skipped_rows.push(skipped);
    }
    Ok((abox, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{IriTemplate, MappingAssertion};
    use obda_dllite::Signature;

    #[test]
    fn materializes_concepts_roles_attributes() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (id INT, boss INT, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, 2, 'ada'), (2, NULL, 'bob')")
            .unwrap();
        let mut sig = Signature::new();
        let person = sig.concept("Person");
        let reports = sig.role("reportsTo");
        let name = sig.attribute("name");
        let tpl = |col: &str| IriTemplate {
            prefix: "p/".into(),
            column: col.into(),
        };
        let mut ms = MappingSet::new();
        ms.add(MappingAssertion {
            sql: "SELECT id, boss, name FROM T".into(),
            heads: vec![
                MappingHead::Concept {
                    concept: person,
                    subject: tpl("id"),
                },
                MappingHead::Role {
                    role: reports,
                    subject: tpl("id"),
                    object: tpl("boss"),
                },
                MappingHead::Attribute {
                    attribute: name,
                    subject: tpl("id"),
                    value_column: "name".into(),
                },
            ],
        });
        let abox = materialize(&ms, &db).unwrap();
        assert_eq!(abox.concept_instances(person).count(), 2);
        // NULL boss row contributes no role assertion.
        assert_eq!(abox.role_instances(reports).count(), 1);
        assert_eq!(abox.attribute_instances(name).count(), 2);
        assert!(abox.find_individual("p/1").is_some());
        assert!(abox.find_individual("p/2").is_some());
    }

    #[test]
    fn null_skips_are_counted_per_mapping_and_published() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (id INT, boss INT, name TEXT)")
            .unwrap();
        db.execute("INSERT INTO T VALUES (1, NULL, 'ada'), (2, NULL, NULL), (3, 1, 'eve')")
            .unwrap();
        let mut sig = Signature::new();
        let person = sig.concept("Person");
        let reports = sig.role("reportsTo");
        let name = sig.attribute("name");
        let tpl = |col: &str| IriTemplate {
            prefix: "p/".into(),
            column: col.into(),
        };
        let mut ms = MappingSet::new();
        // Mapping 0 never sees a NULL subject.
        ms.add(MappingAssertion {
            sql: "SELECT id FROM T".into(),
            heads: vec![MappingHead::Concept {
                concept: person,
                subject: tpl("id"),
            }],
        });
        // Mapping 1: two NULL bosses + one NULL name → 3 skips.
        ms.add(MappingAssertion {
            sql: "SELECT id, boss, name FROM T".into(),
            heads: vec![
                MappingHead::Role {
                    role: reports,
                    subject: tpl("id"),
                    object: tpl("boss"),
                },
                MappingHead::Attribute {
                    attribute: name,
                    subject: tpl("id"),
                    value_column: "name".into(),
                },
            ],
        });
        let before = skipped_total().get();
        let (abox, stats) = materialize_with_stats(&ms, &db).unwrap();
        assert_eq!(stats.skipped_rows, vec![0, 3]);
        assert_eq!(stats.total_skipped(), 3);
        assert_eq!(abox.role_instances(reports).count(), 1);
        assert_eq!(abox.attribute_instances(name).count(), 2);
        // The registry totals move by exactly this run's skips (the
        // registry is process-global, so assert on the delta).
        assert_eq!(skipped_total().get() - before, 3);
    }

    #[test]
    fn shared_templates_unify_individuals() {
        let mut db = Database::new();
        db.execute("CREATE TABLE A (x INT)").unwrap();
        db.execute("CREATE TABLE B (y INT)").unwrap();
        db.execute("INSERT INTO A VALUES (7)").unwrap();
        db.execute("INSERT INTO B VALUES (7)").unwrap();
        let mut sig = Signature::new();
        let c1 = sig.concept("C1");
        let c2 = sig.concept("C2");
        let mut ms = MappingSet::new();
        ms.add(MappingAssertion {
            sql: "SELECT x FROM A".into(),
            heads: vec![MappingHead::Concept {
                concept: c1,
                subject: IriTemplate {
                    prefix: "p/".into(),
                    column: "x".into(),
                },
            }],
        });
        ms.add(MappingAssertion {
            sql: "SELECT y FROM B".into(),
            heads: vec![MappingHead::Concept {
                concept: c2,
                subject: IriTemplate {
                    prefix: "p/".into(),
                    column: "y".into(),
                },
            }],
        });
        let abox = materialize(&ms, &db).unwrap();
        // Same prefix + same value → one individual in both concepts.
        assert_eq!(abox.num_individuals(), 1);
        assert_eq!(abox.concept_instances(c1).count(), 1);
        assert_eq!(abox.concept_instances(c2).count(), 1);
    }
}
