//! GAV mapping assertions: SQL over the sources → ontology atoms.
//!
//! A [`MappingAssertion`] pairs one SQL query (in the `obda-sqlstore`
//! subset) with one or more head atoms whose arguments are built from the
//! query's answer columns through [`IriTemplate`]s — the classic
//! Mastro/Ontop mapping shape. Individuals are identified by the IRI
//! string `prefix + value`, so two mappings produce the same individual
//! exactly when prefix and value agree (this is what makes compile-time
//! template matching during unfolding sound).

use obda_dllite::{AttributeId, ConceptId, RoleId, Signature};
use obda_sqlstore::{Database, SqlError};

/// IRI template `prefix{column}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IriTemplate {
    /// Constant prefix (e.g. `person/`).
    pub prefix: String,
    /// Answer-column name supplying the suffix.
    pub column: String,
}

impl IriTemplate {
    /// Renders the IRI for a concrete value.
    pub fn render(&self, value: &obda_sqlstore::SqlValue) -> String {
        format!("{}{}", self.prefix, value)
    }
}

/// A head atom of a mapping assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingHead {
    /// Populates a concept.
    Concept {
        /// Target concept.
        concept: ConceptId,
        /// Subject IRI template.
        subject: IriTemplate,
    },
    /// Populates a role.
    Role {
        /// Target role.
        role: RoleId,
        /// Subject IRI template.
        subject: IriTemplate,
        /// Object IRI template.
        object: IriTemplate,
    },
    /// Populates an attribute.
    Attribute {
        /// Target attribute.
        attribute: AttributeId,
        /// Subject IRI template.
        subject: IriTemplate,
        /// Answer column supplying the value verbatim.
        value_column: String,
    },
}

impl MappingHead {
    /// Answer columns referenced by this head.
    pub fn referenced_columns(&self) -> Vec<&str> {
        match self {
            MappingHead::Concept { subject, .. } => vec![&subject.column],
            MappingHead::Role {
                subject, object, ..
            } => vec![&subject.column, &object.column],
            MappingHead::Attribute {
                subject,
                value_column,
                ..
            } => vec![&subject.column, value_column],
        }
    }
}

/// One mapping assertion.
#[derive(Debug, Clone)]
pub struct MappingAssertion {
    /// Source query text.
    pub sql: String,
    /// Head atoms.
    pub heads: Vec<MappingHead>,
}

/// A validated collection of mapping assertions.
#[derive(Debug, Clone, Default)]
pub struct MappingSet {
    assertions: Vec<MappingAssertion>,
}

impl MappingSet {
    /// Creates an empty mapping set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an assertion (unvalidated; call [`MappingSet::validate`]).
    pub fn add(&mut self, m: MappingAssertion) {
        self.assertions.push(m);
    }

    /// All assertions.
    pub fn assertions(&self) -> &[MappingAssertion] {
        &self.assertions
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Validates every assertion against the source database: the SQL must
    /// plan, and every referenced answer column must exist in its output.
    pub fn validate(&self, db: &Database) -> Result<(), SqlError> {
        for (i, m) in self.assertions.iter().enumerate() {
            let q = obda_sqlstore::parse_query(&m.sql)
                .map_err(|e| SqlError::new(format!("mapping {i}: {e}")))?;
            let planned = obda_sqlstore::plan_query(db, &q)
                .map_err(|e| SqlError::new(format!("mapping {i}: {e}")))?;
            for h in &m.heads {
                for col in h.referenced_columns() {
                    if !planned.columns.iter().any(|c| c == col) {
                        return Err(SqlError::new(format!(
                            "mapping {i}: head references column `{col}` not in SQL output {:?}",
                            planned.columns
                        )));
                    }
                }
            }
            if m.heads.is_empty() {
                return Err(SqlError::new(format!("mapping {i}: no head atoms")));
            }
        }
        Ok(())
    }

    /// Sources populating a concept: `(assertion, subject template)`.
    pub fn concept_sources(
        &self,
        a: ConceptId,
    ) -> impl Iterator<Item = (&MappingAssertion, &IriTemplate)> {
        self.assertions.iter().flat_map(move |m| {
            m.heads.iter().filter_map(move |h| match h {
                MappingHead::Concept { concept, subject } if *concept == a => Some((m, subject)),
                _ => None,
            })
        })
    }

    /// Sources populating a role: `(assertion, subject, object)`.
    pub fn role_sources(
        &self,
        p: RoleId,
    ) -> impl Iterator<Item = (&MappingAssertion, &IriTemplate, &IriTemplate)> {
        self.assertions.iter().flat_map(move |m| {
            m.heads.iter().filter_map(move |h| match h {
                MappingHead::Role {
                    role,
                    subject,
                    object,
                } if *role == p => Some((m, subject, object)),
                _ => None,
            })
        })
    }

    /// Sources populating an attribute: `(assertion, subject, value col)`.
    pub fn attribute_sources(
        &self,
        u: AttributeId,
    ) -> impl Iterator<Item = (&MappingAssertion, &IriTemplate, &str)> {
        self.assertions.iter().flat_map(move |m| {
            m.heads.iter().filter_map(move |h| match h {
                MappingHead::Attribute {
                    attribute,
                    subject,
                    value_column,
                } if *attribute == u => Some((m, subject, value_column.as_str())),
                _ => None,
            })
        })
    }

    /// Predicates of the signature with no mapping source at all — a
    /// design-time lint (Section 8: design quality control).
    pub fn unmapped_predicates(&self, sig: &Signature) -> Vec<String> {
        let mut out = Vec::new();
        for a in sig.concepts() {
            if self.concept_sources(a).next().is_none() {
                out.push(sig.concept_name(a).to_owned());
            }
        }
        for p in sig.roles() {
            if self.role_sources(p).next().is_none() {
                out.push(sig.role_name(p).to_owned());
            }
        }
        for u in sig.attributes() {
            if self.attribute_sources(u).next().is_none() {
                out.push(sig.attribute_name(u).to_owned());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_sqlstore::Database;

    fn setup() -> (Database, Signature, MappingSet) {
        let mut db = Database::new();
        db.execute("CREATE TABLE TB_P (id INT, kind INT)").unwrap();
        let mut sig = Signature::new();
        let student = sig.concept("Student");
        sig.concept("Unmapped");
        let mut ms = MappingSet::new();
        ms.add(MappingAssertion {
            sql: "SELECT id FROM TB_P WHERE kind = 1".into(),
            heads: vec![MappingHead::Concept {
                concept: student,
                subject: IriTemplate {
                    prefix: "person/".into(),
                    column: "id".into(),
                },
            }],
        });
        (db, sig, ms)
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (db, _, ms) = setup();
        ms.validate(&db).unwrap();
    }

    #[test]
    fn validate_rejects_missing_column() {
        let (db, sig, mut ms) = setup();
        ms.add(MappingAssertion {
            sql: "SELECT id FROM TB_P".into(),
            heads: vec![MappingHead::Concept {
                concept: sig.find_concept("Student").unwrap(),
                subject: IriTemplate {
                    prefix: "x/".into(),
                    column: "nope".into(),
                },
            }],
        });
        let e = ms.validate(&db).unwrap_err();
        assert!(e.message().contains("nope"));
    }

    #[test]
    fn validate_rejects_bad_sql() {
        let (db, sig, mut ms) = setup();
        ms.add(MappingAssertion {
            sql: "SELECT id FROM missing_table".into(),
            heads: vec![MappingHead::Concept {
                concept: sig.find_concept("Student").unwrap(),
                subject: IriTemplate {
                    prefix: "x/".into(),
                    column: "id".into(),
                },
            }],
        });
        assert!(ms.validate(&db).is_err());
    }

    #[test]
    fn unmapped_predicates_lint() {
        let (_, sig, ms) = setup();
        assert_eq!(ms.unmapped_predicates(&sig), vec!["Unmapped"]);
    }

    #[test]
    fn source_lookup_by_predicate() {
        let (_, sig, ms) = setup();
        let student = sig.find_concept("Student").unwrap();
        assert_eq!(ms.concept_sources(student).count(), 1);
        let other = sig.find_concept("Unmapped").unwrap();
        assert_eq!(ms.concept_sources(other).count(), 0);
    }
}
