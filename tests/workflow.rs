//! The paper's Section 3 methodology, end to end, across every crate:
//!
//! (i)  define the ontology through the graphical language;
//! (ii) translate the diagram into logical axioms;
//! (iii) refine for OBDA (here: semantic approximation of an expressive
//!       extension back into DL-Lite);
//! (iv) intensional reasoning for design quality control
//!      (classification, unsatisfiability detection, taxonomy);
//! then deploy: mappings + sources + rewriting + consistency + answering.

use mastro::{DataMode, RewritingMode};
use obda_approx::semantic_approximation;
use obda_graphlang::{diagram_to_tbox, validate, Diagram, Edge, Shape};
use obda_owl::tbox_to_owl;
use obda_reasoners::Budget;
use quonto::{Classification, Taxonomy};

#[test]
fn paper_workflow_end_to_end() {
    // (i) The designer draws the domain: a small publishing world.
    let mut d = Diagram::new("publishing");
    let person = d.terminal(Shape::Rectangle, "Person");
    let author = d.terminal(Shape::Rectangle, "Author");
    let book = d.terminal(Shape::Rectangle, "Book");
    let wrote = d.terminal(Shape::Diamond, "wrote");
    let title = d.terminal(Shape::Circle, "title");
    d.add_edge(Edge::Inclusion {
        from: author,
        to: person,
    });
    let some_book = d.existential(false, wrote, Some(book));
    d.add_edge(Edge::Inclusion {
        from: author,
        to: some_book,
    });
    let wrote_dom = d.existential(false, wrote, None);
    d.add_edge(Edge::Inclusion {
        from: wrote_dom,
        to: author,
    });
    let wrote_rng = d.existential(true, wrote, None);
    d.add_edge(Edge::Inclusion {
        from: wrote_rng,
        to: book,
    });
    let titled = d.attr_domain(title);
    d.add_edge(Edge::Inclusion {
        from: titled,
        to: book,
    });
    d.add_edge(Edge::Disjointness {
        from: book,
        to: person,
    });
    assert!(validate(&d).is_empty());

    // (ii) Automated translation into processable logical axioms.
    let tbox = diagram_to_tbox(&d).expect("diagram is well-formed");
    assert_eq!(tbox.len(), 6);

    // (iii) A domain expert supplies an expressive (non-QL) refinement;
    // semantic approximation brings its QL consequences back into
    // DL-Lite. The refinement is authored over the merged signature so
    // ids line up.
    let owl = tbox_to_owl(&tbox);
    let mut merged_sig = tbox.sig.clone();
    merged_sig.concept("Contributor");
    merged_sig.concept("Editor");
    let mut merged = obda_owl::Ontology::with_signature(merged_sig);
    for ax in owl.axioms() {
        merged.add(ax.clone());
    }
    let contributor = merged.sig.find_concept("Contributor").unwrap();
    let editor = merged.sig.find_concept("Editor").unwrap();
    let author_id = merged.sig.find_concept("Author").unwrap();
    let person_id = merged.sig.find_concept("Person").unwrap();
    merged.add(obda_owl::OwlAxiom::EquivalentClasses(vec![
        obda_owl::ClassExpr::Class(contributor),
        obda_owl::ClassExpr::or(
            obda_owl::ClassExpr::Class(author_id),
            obda_owl::ClassExpr::Class(editor),
        ),
    ]));
    merged.add(obda_owl::OwlAxiom::SubClassOf(
        obda_owl::ClassExpr::Class(editor),
        obda_owl::ClassExpr::Class(person_id),
    ));
    let approx = semantic_approximation(&merged, Budget::seconds(60)).expect("in budget");
    let final_tbox = approx.tbox;
    // Author ⊑ Contributor must have been recovered from the union.
    let cls = Classification::classify(&final_tbox);
    assert!(cls.subsumed_concept(author_id.into(), contributor.into()));

    // (iv) Design quality control: no unsatisfiable predicates; the
    // taxonomy has the intended shape.
    assert!(cls.unsat_concepts().is_empty());
    let tax = Taxonomy::build(&cls);
    let c_author = tax.class_of(author_id).unwrap();
    let c_person = tax.class_of(person_id).unwrap();
    assert!(tax
        .parents(c_author)
        .iter()
        .any(|&p| p == tax.class_of(contributor).unwrap() || p == c_person));

    // Deployment: sources + mappings + the OBDA system.
    let mut db = obda_sqlstore::Database::new();
    db.execute("CREATE TABLE TB_AUTHOR (aid INT)").unwrap();
    db.execute("CREATE TABLE TB_BOOK (bid INT, title TEXT, aid INT)")
        .unwrap();
    db.execute("INSERT INTO TB_AUTHOR VALUES (1), (2)").unwrap();
    db.execute(
        "INSERT INTO TB_BOOK VALUES (10, 'dl-lite in practice', 1), (11, 'obda at scale', 1)",
    )
    .unwrap();
    let mut ms = obda_mapping::MappingSet::new();
    let tpl = |prefix: &str, col: &str| obda_mapping::IriTemplate {
        prefix: prefix.into(),
        column: col.into(),
    };
    ms.add(obda_mapping::MappingAssertion {
        sql: "SELECT aid FROM TB_AUTHOR".into(),
        heads: vec![obda_mapping::MappingHead::Concept {
            concept: final_tbox.sig.find_concept("Author").unwrap(),
            subject: tpl("person/", "aid"),
        }],
    });
    ms.add(obda_mapping::MappingAssertion {
        sql: "SELECT bid, title, aid FROM TB_BOOK".into(),
        heads: vec![
            obda_mapping::MappingHead::Concept {
                concept: final_tbox.sig.find_concept("Book").unwrap(),
                subject: tpl("book/", "bid"),
            },
            obda_mapping::MappingHead::Attribute {
                attribute: final_tbox.sig.find_attribute("title").unwrap(),
                subject: tpl("book/", "bid"),
                value_column: "title".into(),
            },
            obda_mapping::MappingHead::Role {
                role: final_tbox.sig.find_role("wrote").unwrap(),
                subject: tpl("person/", "aid"),
                object: tpl("book/", "bid"),
            },
        ],
    });
    let mut sys = mastro::ObdaSystem::new(final_tbox, ms, db).unwrap();
    assert!(sys.check_consistency().unwrap().is_empty());

    // Querying through the ontology: Contributor has no mapping, but
    // authors flow in through Author ⊑ Contributor (recovered by the
    // semantic approximation!), and Person through Author ⊑ Person.
    for (query, expected) in [
        ("q(x) :- Contributor(x)", 2),
        ("q(x) :- Person(x)", 2),
        ("q(x) :- Book(x)", 2),
        ("q(x, t) :- wrote(x, y), title(y, t)", 2),
        ("q(x) :- Author(x), wrote(x, y)", 2),
    ] {
        let answers = sys.answer(query).unwrap();
        assert_eq!(answers.len(), expected, "{query}");
    }
    // All four mode combinations agree.
    let reference = sys.answer("q(x) :- Person(x)").unwrap();
    for (rw, dm) in [
        (RewritingMode::PerfectRef, DataMode::Virtual),
        (RewritingMode::PerfectRef, DataMode::Materialized),
        (RewritingMode::Presto, DataMode::Materialized),
    ] {
        sys = sys.with_rewriting(rw).with_data_mode(dm);
        assert_eq!(sys.answer("q(x) :- Person(x)").unwrap(), reference);
    }
}
