//! The full OBDA pipeline on the university scenario: relational sources
//! → GAV mappings → ontology → rewriting → SQL → certain answers.
//!
//! ```text
//! cargo run -p mastro --example university_obda
//! ```

use mastro::{DataMode, RewritingMode};
use obda_genont::university_scenario;

fn main() {
    let scenario = university_scenario(1, 42);
    println!("== sources ==");
    for t in &scenario.tables {
        println!("  {} ({} rows)", t.name, t.rows.len());
    }
    println!("\n== mappings == ({} assertions)", scenario.mappings.len());
    for m in scenario.mappings.iter().take(3) {
        println!("  {}  ⇝  {} head atom(s)", m.sql, m.head.len());
    }
    println!("  …");

    let sys = mastro::demo::build_system(&scenario).expect("system assembles");
    println!(
        "\n== ontology == {} axioms; classification: {} concept-subsumption arcs",
        sys.tbox.len(),
        sys.classification.closure().num_arcs()
    );

    // Consistency check (Section 5: NI violations + unsat emptiness).
    let violations = sys.check_consistency().expect("check runs");
    println!(
        "consistency: {}",
        if violations.is_empty() {
            "consistent".to_owned()
        } else {
            format!("{violations:?}")
        }
    );

    // Answer the benchmark mix in virtual mode (unfolding to SQL).
    println!("\n== queries (Presto rewriting, virtual mode) ==");
    for qs in &scenario.queries {
        let answers = sys.answer(&qs.text).expect("answers");
        println!("{}: {}  → {} answers", qs.name, qs.text, answers.len());
        for tuple in answers.iter().take(3) {
            let rendered: Vec<String> = tuple.iter().map(ToString::to_string).collect();
            println!("    ({})", rendered.join(", "));
        }
        if answers.len() > 3 {
            println!("    …");
        }
    }

    // The ontology at work: Student has no direct mapping, yet answers
    // flow from GradStudent/UndergradStudent through the TBox.
    let students = sys.answer("q(x) :- Student(x)").expect("answers");
    let grads = sys.answer("q(x) :- GradStudent(x)").expect("answers");
    println!(
        "\nontology reasoning: {} students = {} grads + {} undergrads (no direct Student mapping exists)",
        students.len(),
        grads.len(),
        students.len() - grads.len()
    );

    // Same answers in all four mode combinations.
    let reference = students.len();
    for (rw, dm) in [
        (RewritingMode::PerfectRef, DataMode::Virtual),
        (RewritingMode::PerfectRef, DataMode::Materialized),
        (RewritingMode::Presto, DataMode::Materialized),
    ] {
        let alt = mastro::demo::build_system(&scenario)
            .expect("builds")
            .with_rewriting(rw)
            .with_data_mode(dm);
        let n = alt.answer("q(x) :- Student(x)").expect("answers").len();
        assert_eq!(n, reference);
        println!("  {rw:?} / {dm:?}: {n} answers ✓");
    }
}
