//! Quickstart: parse a small DL-Lite ontology, classify it with the
//! graph-based classifier, check a few entailments, and answer a
//! conjunctive query over an ABox.
//!
//! ```text
//! cargo run -p mastro --example quickstart
//! ```

use mastro::AboxSystem;
use obda_dllite::{parse_abox, parse_tbox, printer};
use quonto::{deductive_closure, Classification, ClosureOptions, Implication};

fn main() {
    // 1. An ontology in the concrete DL-Lite syntax.
    let tbox = parse_tbox(
        "# A fragment of the paper's geographic example, plus a taxonomy.
         concept County State Region Municipality
         role isPartOf
         attribute population

         County [= exists isPartOf . State
         State  [= exists inv(isPartOf) . County
         Municipality [= exists isPartOf . County
         County [= Region
         State  [= Region
         Municipality [= Region
         County [= not State
         domain(population) [= Region",
    )
    .expect("tbox parses");
    println!("ontology: {} axioms over {}", tbox.len(), tbox.sig);

    // 2. Classify (Definition 1 digraph → transitive closure → unsat).
    let cls = Classification::classify(&tbox);
    let county = tbox.sig.find_concept("County").unwrap();
    let region = tbox.sig.find_concept("Region").unwrap();
    println!("\nnamed subsumers of County:");
    for b in cls.concept_subsumers(county) {
        println!("  County ⊑ {}", tbox.sig.concept_name(b));
    }
    assert!(cls.subsumed_concept(county.into(), region.into()));
    assert!(cls.unsat_concepts().is_empty());

    // 3. Logical implication without materializing the closure.
    let imp = Implication::new(&cls);
    let probe = parse_tbox(
        "concept County State Region Municipality\nrole isPartOf\nattribute population\n\
         Municipality [= exists isPartOf",
    )
    .unwrap();
    println!(
        "\nT ⊨ Municipality ⊑ ∃isPartOf?  {}",
        imp.entails(&probe.axioms()[0])
    );

    // 4. The finite deductive closure (Section 5's extension).
    let closure = deductive_closure(&cls, ClosureOptions::default());
    println!("deductive closure: {} axioms, e.g.:", closure.len());
    for ax in closure.iter().take(5) {
        println!(
            "  {}",
            printer::axiom(ax, &tbox.sig, printer::Style::Display)
        );
    }

    // 5. Incremental evolution: a new axiom updates the closure without
    // reclassifying from scratch.
    let mut evolving = cls.clone();
    let patch = parse_tbox(
        "concept County State Region Municipality\nrole isPartOf\nattribute population\n\
         Region [= exists isPartOf",
    )
    .unwrap();
    evolving.add_axioms(patch.axioms());
    let is_part_of_dom = obda_dllite::BasicConcept::exists(tbox.sig.find_role("isPartOf").unwrap());
    println!(
        "\nafter incremental update: Municipality ⊑ ∃isPartOf? {}",
        evolving.subsumed_concept(
            tbox.sig.find_concept("Municipality").unwrap().into(),
            is_part_of_dom,
        )
    );

    // 6. The taxonomy (Hasse) view designers navigate.
    let tax = quonto::Taxonomy::build(&cls);
    println!("\ntaxonomy:\n{}", tax.render(&tbox.sig));

    // 7. Certain-answer query answering over an ABox (PerfectRef).
    let abox = parse_abox(
        "Municipality(trastevere_is_not_one_but_ok)\n\
         County(rome)\nisPartOf(rome, lazio)\nState(lazio)\npopulation(rome, 2761632)",
        &tbox.sig,
    )
    .expect("abox parses");
    let system = AboxSystem::new(tbox, abox);
    for q in [
        "q(x) :- Region(x)",
        "q(x) :- isPartOf(x, y), State(y)",
        "q(x, n) :- Region(x), population(x, n)",
    ] {
        let answers = system.answer(q).expect("query answers");
        println!("\n{q}");
        for tuple in &answers {
            let rendered: Vec<String> = tuple.iter().map(ToString::to_string).collect();
            println!("  ({})", rendered.join(", "));
        }
    }
}
