//! Serving quickstart: boot `obda-server` in-process on an ephemeral
//! port, talk the newline-delimited JSON protocol over a real TCP
//! socket, read the `STATS` snapshot, and shut down gracefully.
//!
//! ```text
//! cargo run -p obda-server --example obda_server
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use obda_server::{Json, Server, ServerConfig};

fn main() {
    // 1. One endpoint named `uni`: the generated university scenario,
    //    PerfectRef rewriting over the materialized ABox. `:0` picks an
    //    ephemeral port.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).expect("server starts");
    println!("serving on {}", server.addr());

    // 2. A client connection: one JSON request per line, one JSON
    //    response per line.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();

    let mut ask = |req: &str| -> Json {
        writer.write_all(req.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("recv");
        Json::parse(line.trim()).expect("valid response json")
    };

    // A conjunctive query, twice (the second hits the rewrite cache) …
    for round in ["cold", "warm"] {
        let resp = ask(r#"{"id":"q1","endpoint":"uni","query":"q(x) :- Student(x)"}"#);
        println!(
            "q1 ({round}): status={} rows={} exec_us={}",
            resp.get("status").and_then(Json::as_str).unwrap_or("?"),
            resp.get("rows").and_then(Json::as_u64).unwrap_or(0),
            resp.get("exec_us").and_then(Json::as_u64).unwrap_or(0),
        );
    }

    // … the same query through the SPARQL front-end …
    let resp = ask(
        r#"{"id":"q2","endpoint":"uni","lang":"sparql","query":"SELECT ?x WHERE { ?x a :Student }"}"#,
    );
    println!(
        "q2 (sparql): rows={}",
        resp.get("rows").and_then(Json::as_u64).unwrap_or(0)
    );

    // … a malformed frame (the server answers, the connection lives) …
    let resp = ask("this is not json");
    println!(
        "garbage frame: status={}",
        resp.get("status").and_then(Json::as_str).unwrap_or("?")
    );

    // … and the STATS verb.
    let stats = ask("STATS");
    let server_stats = stats.get("server").expect("server section");
    let uni = stats
        .get("endpoints")
        .and_then(|e| e.get("uni"))
        .expect("uni section");
    println!(
        "stats: ok={} errors={} p95_us={} cache_hit_rate={:.2}",
        server_stats.get("ok").and_then(Json::as_u64).unwrap_or(0),
        server_stats
            .get("errors")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        server_stats
            .get("p95_us")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        uni.get("cache_hit_rate")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
    );

    // 3. Graceful shutdown: drains in-flight work, then joins.
    server.shutdown();
    server.join();
    println!("server drained and stopped");
}
