//! The graphical language end to end (Section 6): build a diagram
//! programmatically (including the paper's Figure 2), validate it,
//! translate to DL-Lite, export DOT, and slice a large ontology with the
//! modularization and relevant-context tools.
//!
//! ```text
//! cargo run -p mastro --example diagram_to_dllite
//! ```

use obda_dllite::printer::{self, Style};
use obda_graphlang::{
    diagram_to_tbox, figure2, horizontal_modules, relevant_context, tbox_to_diagram, to_dot,
    validate, vertical_view, DetailLevel, Diagram, Edge, Shape,
};

fn main() {
    // 1. The paper's Figure 2, verbatim.
    let fig2 = figure2();
    assert!(validate(&fig2).is_empty());
    let tbox = diagram_to_tbox(&fig2).expect("well-formed");
    println!("Figure 2 translates to:");
    for ax in tbox.axioms() {
        println!("  {}", printer::axiom(ax, &tbox.sig, Style::Display));
    }

    // 2. A richer hand-built diagram with every element kind.
    let mut d = Diagram::new("library");
    let book = d.terminal(Shape::Rectangle, "Book");
    let person = d.terminal(Shape::Rectangle, "Person");
    let author = d.terminal(Shape::Rectangle, "Author");
    let wrote = d.terminal(Shape::Diamond, "wrote");
    let title = d.terminal(Shape::Circle, "title");
    // Author ⊑ Person; Author ⊑ ∃wrote.Book; ∃wrote⁻ ⊑ Book;
    // δ(title) ⊑ Book; Book ⊑ ¬Person.
    d.add_edge(Edge::Inclusion {
        from: author,
        to: person,
    });
    let wrote_some_book = d.existential(false, wrote, Some(book));
    d.add_edge(Edge::Inclusion {
        from: author,
        to: wrote_some_book,
    });
    let wrote_inv = d.existential(true, wrote, None);
    d.add_edge(Edge::Inclusion {
        from: wrote_inv,
        to: book,
    });
    let has_title = d.attr_domain(title);
    d.add_edge(Edge::Inclusion {
        from: has_title,
        to: book,
    });
    d.add_edge(Edge::Disjointness {
        from: book,
        to: person,
    });
    let library = diagram_to_tbox(&d).expect("well-formed");
    println!("\nlibrary diagram ({} nodes) translates to:", d.len());
    for ax in library.axioms() {
        println!("  {}", printer::axiom(ax, &library.sig, Style::Display));
    }
    println!("\nDOT export:\n{}", to_dot(&d));

    // 3. Round trip: a textual ontology becomes a diagram.
    let (round, unsupported) = tbox_to_diagram(&library, "roundtrip");
    assert!(unsupported.is_empty());
    let back = diagram_to_tbox(&round).expect("well-formed");
    assert_eq!(back.len(), library.len());
    println!("roundtrip: {} axioms preserved ✓", back.len());

    // 4. Modularization (Section 6): horizontal domains + vertical views.
    let big = obda_dllite::parse_tbox(
        "concept Book Person Author Invoice Payment\nrole wrote pays\n\
         Author [= Person\nAuthor [= exists wrote . Book\n\
         Invoice [= exists pays\nexists inv(pays) [= Payment",
    )
    .unwrap();
    let modules = horizontal_modules(&big);
    println!("\nhorizontal modules of the mixed ontology:");
    for m in &modules {
        println!("  {} — {} axioms, {}", m.name, m.tbox.len(), m.tbox.sig);
    }
    for level in [
        DetailLevel::Taxonomy,
        DetailLevel::Typing,
        DetailLevel::Full,
    ] {
        println!(
            "vertical view {level:?}: {} axioms",
            vertical_view(&big, level).len()
        );
    }

    // 5. Relevant context for focused visualization.
    let ctx = relevant_context(&big, &["Author"], 1);
    println!(
        "\nrelevant context of Author (radius 1): ring1 = {:?}, {} axioms",
        ctx.ring(&big, 1),
        ctx.tbox.len()
    );
}
