//! Ontology approximation (Section 7): take an expressive (ALCHI)
//! ontology, approximate it syntactically and semantically into DL-Lite,
//! compare the two, and then *use* the approximation for query answering.
//!
//! ```text
//! cargo run -p mastro --example approximate_owl
//! ```

use mastro::AboxSystem;
use obda_approx::{evaluate, semantic_approximation, syntactic_approximation};
use obda_dllite::printer::{self, Style};
use obda_owl::parse_owl;
use obda_reasoners::Budget;

fn main() {
    // An OWL ontology that is *not* in OWL 2 QL: unions, intersection
    // fillers, complements of unions.
    let src = r#"
        # People and publications, with non-QL axioms.
        EquivalentClasses(Creator ObjectUnionOf(Author Editor))
        SubClassOf(Author ObjectSomeValuesFrom(wrote ObjectIntersectionOf(Book Published)))
        SubClassOf(Book ObjectComplementOf(ObjectUnionOf(Author Editor)))
        SubClassOf(Author Person)
        SubClassOf(Editor Person)
        ObjectPropertyDomain(wrote Person)
        ObjectPropertyRange(wrote Book)
    "#;
    let onto = parse_owl(src).expect("parses");
    println!("source OWL ontology: {} axioms", onto.len());

    let syn = syntactic_approximation(&onto);
    println!(
        "\nsyntactic approximation: kept {} DL-Lite axioms, dropped {} source axioms",
        syn.tbox.len(),
        syn.dropped.len()
    );

    let sem = semantic_approximation(&onto, Budget::seconds(60)).expect("in budget");
    println!(
        "semantic approximation: {} DL-Lite axioms ({} tableau entailment tests)",
        sem.tbox.len(),
        sem.entailment_tests
    );
    println!("semantic-only findings (QL consequences of non-QL axioms):");
    for ax in sem.tbox.axioms() {
        if !syn.tbox.contains(ax) {
            println!("  {}", printer::axiom(ax, &sem.tbox.sig, Style::Display));
        }
    }

    let report = evaluate(&onto, Budget::seconds(120)).expect("in budget");
    println!(
        "\nrecall vs the complete global approximation: syntactic {:.2}, semantic {:.2}",
        report.syntactic_recall, report.semantic_recall
    );

    // Use the approximation: certain answers through the DL-Lite TBox.
    let mut abox = obda_dllite::Abox::new();
    let author = sem.tbox.sig.find_concept("Author").unwrap();
    let editor = sem.tbox.sig.find_concept("Editor").unwrap();
    abox.assert_concept(author, "eco");
    abox.assert_concept(editor, "gaiman");
    let system = AboxSystem::new(sem.tbox.clone(), abox);
    let creators = system.answer("q(x) :- Creator(x)").expect("answers");
    println!(
        "\nquery over the semantic approximation: Creator(x) → {} answers (Author ⊑ Creator and Editor ⊑ Creator were recovered from the union equivalence)",
        creators.len()
    );
    assert_eq!(creators.len(), 2);
    let syn_system = AboxSystem::new(syn.tbox.clone(), {
        let mut ab = obda_dllite::Abox::new();
        ab.assert_concept(author, "eco");
        ab.assert_concept(editor, "gaiman");
        ab
    });
    let syn_creators = syn_system.answer("q(x) :- Creator(x)").expect("answers");
    println!(
        "same query over the syntactic approximation: {} answers (the union axiom was dropped wholesale)",
        syn_creators.len()
    );
    assert!(syn_creators.is_empty());
}
