//! Classifying a large synthetic ontology (a Galen-scale analog) with the
//! graph-based classifier, and inspecting the result.
//!
//! ```text
//! cargo run -p mastro --release --example classify_large -- [scale]
//! ```
//!
//! Defaults to scale 1.0 — the full ~23k-class Galen analog — which the
//! graph method classifies in well under a second in release mode.

use std::time::Instant;

use quonto::Classification;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let spec = obda_genont::presets::galen().scaled(scale);
    println!("generating the {} analog at scale {scale}…", spec.name);
    let t0 = Instant::now();
    let tbox = spec.generate();
    println!("  generated in {:.2?}: {:?}", t0.elapsed(), tbox.stats());

    let t1 = Instant::now();
    let cls = Classification::classify(&tbox);
    let classify_time = t1.elapsed();
    println!("\nclassified in {classify_time:.2?}");
    println!(
        "  digraph: {} nodes, {} edges; closure: {} arcs",
        cls.graph().num_nodes(),
        cls.graph().num_edges(),
        cls.closure().num_arcs()
    );
    println!(
        "  unsatisfiable: {} concepts, {} roles",
        cls.unsat_concepts().len(),
        cls.unsat_roles().len()
    );
    let classes = cls.concept_equivalence_classes();
    println!(
        "  equivalence classes (>1 member): {} (largest: {})",
        classes.len(),
        classes.iter().map(Vec::len).max().unwrap_or(0)
    );

    // Subsumer-set statistics, the shape classification consumers see.
    let t2 = Instant::now();
    let mut total = 0usize;
    let mut deepest = (0usize, obda_dllite::ConceptId(0));
    for a in tbox.sig.concepts() {
        if cls.concept_unsat(a) {
            continue;
        }
        let n = cls.concept_subsumers(a).len();
        total += n;
        if n > deepest.0 {
            deepest = (n, a);
        }
    }
    println!(
        "\nnamed subsumption pairs: {total} (materialized in {:.2?})",
        t2.elapsed()
    );
    println!(
        "  deepest concept: {} with {} named subsumers",
        tbox.sig.concept_name(deepest.1),
        deepest.0
    );
}
