//! Offline stand-in for the `proptest` property-testing framework,
//! covering exactly the subset the workspace tests use:
//!
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`] and [`prop_assert_eq!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and
//!   `boxed`, implemented for integer ranges, tuples and [`Just`];
//! * [`arbitrary::any`] for primitives and [`collection::vec`].
//!
//! The container this repository builds in has no network access, so the
//! workspace vendors this minimal implementation. Semantics differ from
//! upstream in one deliberate way: there is **no shrinking** — a failing
//! case panics with the case number and the failure message. Runs are
//! deterministic: case `i` of every test derives its RNG from a fixed
//! base seed (override with `PROPTEST_SEED`), and the number of cases
//! defaults to 64 (override with `PROPTEST_CASES`).

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    ///
    /// Upstream proptest separates value trees from strategies to support
    /// shrinking; this shim collapses the hierarchy to "a function from
    /// RNG to value".
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self.boxed();
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Filters generated values, retrying until `f` accepts one
        /// (bounded retries; falls back to the last candidate).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let inner = self.boxed();
            BoxedStrategy::from_fn(move |rng| {
                for _ in 0..64 {
                    let v = inner.generate(rng);
                    if f(&v) {
                        return v;
                    }
                }
                inner.generate(rng)
            })
        }

        /// Recursive strategies: `f` receives a strategy for "smaller"
        /// values and returns the composite one level up. Each of the
        /// `depth` levels terminates with the leaf strategy with
        /// probability 30%, and generation depth is hard-bounded by
        /// `depth`, so generation always terminates.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                let leaf = leaf.clone();
                cur = BoxedStrategy::from_fn(move |rng| {
                    if rng.gen_f64() < 0.3 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.generate(rng))
        }
    }

    /// A type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.gen_below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// Uniform choice among the given strategies (backs [`prop_oneof!`]).
    pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        BoxedStrategy::from_fn(move |rng| {
            let i = rng.gen_below(options.len() as u64) as usize;
            options[i].generate(rng)
        })
    }
}

pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            (b' ' + rng.gen_below(95) as u8) as char
        }
    }

    /// The canonical strategy for an [`Arbitrary`] type.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary + 'static>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// Boxed variant of [`any`] (parity with upstream's `any::<T>()` used
    /// in `prop_oneof!`).
    pub fn any_boxed<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        any::<T>().boxed()
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy + 'static>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let span = (size.hi_inclusive - size.lo) as u64 + 1;
            let len = size.lo + rng.gen_below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 RNG used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            let mut rng = TestRng { state: seed };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n == 0` yields 0.
        pub fn gen_below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn gen_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property check (carried by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Number of cases to run (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Base seed (`PROPTEST_SEED`, default fixed).
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x0BDA_5EED_0BDA_5EED)
    }

    /// Runs `body` for each case with a per-case deterministic RNG,
    /// panicking (with case number and message) on the first failure.
    pub fn run_test<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let n = cases();
        let base = base_seed();
        for case in 0..n {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
            if let Err(e) = body(&mut rng) {
                panic!("proptest `{name}` failed at case {case}/{n}: {e}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run_test(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )+
    };
}

/// Declares a named strategy-building function:
/// `prop_compose! { fn name()(x in strat, …) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    ($vis:vis fn $name:ident($($fnargs:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $vis fn $name($($fnargs)*) -> $crate::strategy::BoxedStrategy<$ret> {
            let __strats = ($($strat,)+);
            $crate::strategy::BoxedStrategy::from_fn(move |__proptest_rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&__strats, __proptest_rng);
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case rather
/// than unwinding).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} vs {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0..10u32, b in any::<bool>()) -> (u32, bool) {
            (a, b)
        }
    }

    fn arb_small() -> impl Strategy<Value = i64> {
        prop_oneof![Just(0i64), (1i64..5).prop_map(|v| v * 10)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, y in -5i64..5, (a, b) in (0..4u32, 0..6u32)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!(a < 4 && b < 6);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0..100u8, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn compose_and_oneof(p in arb_pair(), s in arb_small()) {
            prop_assert!(p.0 < 10);
            prop_assert!(s == 0 || (10..50).contains(&s));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0..100u32)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        crate::test_runner::run_test("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
