//! Offline stand-in for the `rand` crate, covering exactly the subset the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The container this repository builds in has no network access and no
//! crates.io cache, so the workspace vendors a minimal implementation
//! instead of depending on the real crate. The generator is SplitMix64 —
//! not cryptographic, but statistically fine for synthetic-ontology and
//! test-data generation. Streams are deterministic per seed, which is all
//! the callers (seeded generators, property tests) rely on; they do not
//! depend on matching upstream `rand`'s exact output.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64-bit output.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded(rng, span as u64);
                (self.start as i128 + v as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span == 2^64 only for the full u64/i64 range; fall back to
                // raw bits there.
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, n)` via Lemire-style multiply-shift (with the
/// cheap no-rejection variant; bias is < 2^-32 for the small spans used
/// here).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// High-level sampling methods (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG (SplitMix64; deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seed 0 does not emit a low-entropy first
            // value.
            let mut rng = SmallRng { state };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0..=3u32);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
