//! Offline stand-in for the `criterion` benchmark harness, covering the
//! subset the workspace benches use: `Criterion::benchmark_group`, group
//! configuration (`warm_up_time` / `measurement_time` / `sample_size`),
//! `bench_with_input` / `bench_function` with `Bencher::iter`, plus the
//! `criterion_group!` / `criterion_main!` macros and [`black_box`].
//!
//! Measurement model: after a wall-clock warm-up, it takes `sample_size`
//! samples, each a batch of iterations sized so a sample lasts roughly
//! `measurement_time / sample_size`, and reports the min / mean / max
//! per-iteration time in the familiar `time: [low mean high]` shape.
//! Command-line arguments from `cargo bench` are treated as substring
//! filters on the benchmark id (flags are ignored).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a function name alone.
    pub fn from_name(function_name: impl Into<String>) -> Self {
        BenchmarkId {
            id: function_name.into(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId::from_name(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness state.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and test harness flags); anything
        // that does not start with `-` is a name filter.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.matches(&id.id) {
            run_bench(
                &id.id,
                Duration::from_millis(500),
                Duration::from_secs(2),
                10,
                |b| f(b),
            );
        }
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_bench(&full, self.warm_up, self.measurement, self.samples, |b| {
                f(b, input)
            });
        }
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_bench(&full, self.warm_up, self.measurement, self.samples, |b| {
                f(b)
            });
        }
        self
    }

    /// Finishes the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    mode: BencherMode,
    /// Mean per-iteration durations of each sample, filled by `iter`.
    sample_means: Vec<f64>,
    iters_per_sample: u64,
}

enum BencherMode {
    /// Calibration: run the routine once and record its duration.
    Calibrate(Option<Duration>),
    /// Warm-up: repeat until the shared deadline passes.
    WarmUp(Instant),
    /// Measurement: take the configured samples.
    Measure { samples: usize },
}

impl Bencher {
    /// Times repeated executions of `routine` according to the current
    /// phase (calibration, warm-up or measurement).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            BencherMode::Calibrate(slot) => {
                let start = Instant::now();
                black_box(routine());
                *slot = Some(start.elapsed());
            }
            BencherMode::WarmUp(deadline) => {
                while Instant::now() < *deadline {
                    black_box(routine());
                }
            }
            BencherMode::Measure { samples } => {
                let iters = self.iters_per_sample.max(1);
                for _ in 0..*samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    self.sample_means.push(elapsed / iters as f64);
                }
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    full_id: &str,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mut f: F,
) {
    // Calibration pass: how long does one execution take?
    let mut b = Bencher {
        mode: BencherMode::Calibrate(None),
        sample_means: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    let one = match b.mode {
        BencherMode::Calibrate(Some(d)) => d.max(Duration::from_nanos(1)),
        _ => Duration::from_nanos(1),
    };
    // Warm-up pass.
    let mut b = Bencher {
        mode: BencherMode::WarmUp(Instant::now() + warm_up),
        sample_means: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    // Measurement: size batches so all samples fit in `measurement`.
    let per_sample = measurement.as_secs_f64() / samples as f64;
    let iters = (per_sample / one.as_secs_f64()).floor().max(1.0) as u64;
    let mut b = Bencher {
        mode: BencherMode::Measure { samples },
        sample_means: Vec::new(),
        iters_per_sample: iters,
    };
    f(&mut b);
    let means = &b.sample_means;
    if means.is_empty() {
        println!("{full_id:<48} (no samples — closure never called iter)");
        return;
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    println!(
        "{full_id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi),
        means.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filters: vec![] };
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", "small"), &100u64, |b, n| {
            b.iter(|| {
                count += 1;
                (0..*n).sum::<u64>()
            })
        });
        group.finish();
        assert!(count > 0, "routine was never executed");
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            filters: vec!["nomatch".into()],
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
